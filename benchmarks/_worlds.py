"""Shared benchmark plumbing.

The cluster/world-building boilerplate the benchmark suite used to
duplicate now lives in :mod:`repro.bench.worlds`; the builders are
re-exported here so benchmarks keep a single import point. On top of
that this module carries the two helpers every campaign-backed
trajectory bench needs: a fresh throwaway workspace and the
``bench_results/BENCH_*.json`` document writer (one schema —
experiment/columns/rows/note/result — shared by every CI gate).
"""

import json
import pathlib
import tempfile

from repro.bench.worlds import (  # noqa: F401  (benchmark-facing re-export)
    build_hdfs_world,
    build_scidp_world,
)
from repro.campaign import (
    Workspace,
    aggregate_campaign,
    get_campaign,
    run_campaign,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / \
    "bench_results"


def write_bench_json(name, experiment, columns, rows, note,
                     result) -> None:
    """Write ``bench_results/BENCH_<name>.json`` in the gate schema."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(json.dumps({
        "experiment": experiment,
        "columns": columns,
        "rows": [list(row) for row in rows],
        "note": note,
        "result": result,
    }, indent=2) + "\n")


def fresh_workspace(prefix: str = "campaign-bench-") -> Workspace:
    """A workspace in a throwaway temp directory — trajectory benches
    always measure a cold sweep, never a warm cache."""
    return Workspace(tempfile.mkdtemp(prefix=prefix))


def run_campaign_doc(name: str, *, workers: int = 0,
                     quick: bool = False,
                     workspace: Workspace | None = None):
    """Sweep a registered campaign and aggregate it.

    Returns ``(doc, report, workspace)``. Raises if any point failed —
    a trajectory gate must never run over a partial sweep.
    """
    definition = get_campaign(name)
    workspace = workspace or fresh_workspace(f"campaign-{name}-")
    report = run_campaign(definition, workspace, workers=workers,
                          quick=quick)
    assert not report.failed, (
        f"campaign {name!r}: {len(report.failed)} point(s) failed; "
        f"see error.json under {workspace.root}")
    doc = aggregate_campaign(definition, workspace, quick=quick)
    return doc, report, workspace
