"""Ablations of SciDP design choices called out in §III.

- chunk-aligned dummy blocks vs chunk splitting (§III-B: "Unaligned data
  access will have a much higher overhead, due to reading extra
  compressed chunks");
- whole-block single-request reads vs Hadoop's 64 KB streaming
  (§III-A.3);
- variable-level subsetting vs mapping all 23 variables (§IV-B).
"""

from repro.bench.harness import (
    abl_chunk_alignment_rows,
    abl_read_granularity_rows,
    abl_subsetting_rows,
)


def test_ablation_chunk_alignment(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        abl_chunk_alignment_rows, rounds=1, iterations=1,
        kwargs={"n_timesteps": 12, "split_factor": 4})
    record_table("abl_chunk_alignment", columns, rows, note)
    aligned, unaligned = rows
    assert unaligned[1] > aligned[1]                  # slower
    assert 3.0 < unaligned[3] <= 4.5                  # ~4x amplification


def test_ablation_read_granularity(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        abl_read_granularity_rows, rounds=1, iterations=1,
        kwargs={"n_timesteps": 12})
    record_table("abl_read_granularity", columns, rows, note)
    whole, chopped, windowed = rows
    assert chopped[1] > whole[1]      # streaming is slower overall
    assert chopped[2] > whole[2]      # and per-level read time grows
    assert windowed[1] < chopped[1]   # the request window claws back
    assert windowed[2] < chopped[2]   # part of the chopped-read gap


def test_ablation_variable_subsetting(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        abl_subsetting_rows, rounds=1, iterations=1,
        kwargs={"n_timesteps": 6})
    record_table("abl_subsetting", columns, rows, note)
    subset, full = rows
    assert full[2] == 23 * subset[2]          # virtual files: 23x
    assert full[3] > 10 * subset[3]           # mapped bytes shrink >10x
    assert subset[1] <= full[1]               # mapping table builds faster
