"""The campaign engine itself — the BENCH_campaign trajectory.

Sweeps the 8-point ``smoke`` campaign (a real miniature DES run per
point plus a fixed 1s stall modelling external latency) three ways:

1. serially (``workers=0``) into workspace A — the determinism
   baseline;
2. in parallel (``workers=4``) into a fresh workspace B — the
   aggregated document must be *identical* to the serial one, because
   results always round-trip through workspace JSON;
3. workspace B again, warm — every point must be a cache hit
   (0 executed), the skip-if-computed contract.

The stall component makes the parallel-overlap gate independent of
runner core count: 8 points x ~1.1s serial vs ~3s across 4 workers is
>= 1.5x even on a single-core runner, because the pool overlaps the
stalls, not the interpreter. CI gates the speedup, the equivalence and
the warm-cache skip count, and uploads
``bench_results/BENCH_campaign.json``.
"""

from repro.campaign import get_campaign

from benchmarks._worlds import (
    fresh_workspace,
    run_campaign_doc,
    write_bench_json,
)

#: the ISSUE-10 trajectory gates
MIN_PARALLEL_SPEEDUP = 1.5
SMOKE_POINTS = 8
PARALLEL_WORKERS = 4


def _run_campaign_matrix():
    serial_doc, serial_report, _ws_a = run_campaign_doc(
        "smoke", workers=0)
    parallel_ws = fresh_workspace("campaign-smoke-par-")
    parallel_doc, parallel_report, _ = run_campaign_doc(
        "smoke", workers=PARALLEL_WORKERS, workspace=parallel_ws)
    # Warm re-run of the parallel workspace: everything is cached.
    warm_doc, warm_report, _ = run_campaign_doc(
        "smoke", workers=PARALLEL_WORKERS, workspace=parallel_ws)
    return {
        "serial": (serial_doc, serial_report),
        "parallel": (parallel_doc, parallel_report),
        "warm": (warm_doc, warm_report),
    }


def test_campaign_trajectory(benchmark, record_table):
    runs = benchmark.pedantic(
        _run_campaign_matrix, rounds=1, iterations=1)
    serial_doc, serial_report = runs["serial"]
    parallel_doc, parallel_report = runs["parallel"]
    warm_doc, warm_report = runs["warm"]

    # Equivalence: a pool sweep aggregates byte-identically to serial.
    assert parallel_doc == serial_doc, \
        "parallel sweep aggregated differently from the serial baseline"
    assert warm_doc == serial_doc
    assert serial_doc["points"] == SMOKE_POINTS

    # Cold sweeps executed everything; nothing failed anywhere.
    for report in (serial_report, parallel_report):
        assert len(report.executed) == SMOKE_POINTS
        assert not report.failed and not report.skipped

    # Warm re-run: 100% cache hits, zero points executed.
    assert len(warm_report.executed) == 0
    assert warm_report.cache_hits == SMOKE_POINTS

    # Overlap: the pool must beat serial on the stall-dominated sweep.
    speedup = serial_report.wall_seconds / parallel_report.wall_seconds
    assert speedup >= MIN_PARALLEL_SPEEDUP, \
        f"parallel({PARALLEL_WORKERS}) sweep below the " \
        f"{MIN_PARALLEL_SPEEDUP}x gate: {speedup:.2f}x " \
        f"({serial_report.wall_seconds:.2f}s serial vs " \
        f"{parallel_report.wall_seconds:.2f}s parallel)"

    columns = ["sweep", "executed", "cache hits", "wall s",
               "points/s", "speedup"]
    rows = [
        ("serial", len(serial_report.executed),
         serial_report.cache_hits,
         round(serial_report.wall_seconds, 2),
         round(serial_report.points_per_sec, 2), 1.0),
        (f"parallel({PARALLEL_WORKERS})", len(parallel_report.executed),
         parallel_report.cache_hits,
         round(parallel_report.wall_seconds, 2),
         round(parallel_report.points_per_sec, 2),
         round(speedup, 2)),
        ("warm re-run", len(warm_report.executed),
         warm_report.cache_hits,
         round(warm_report.wall_seconds, 2), "-", "-"),
    ]
    note = (f"{SMOKE_POINTS}-point smoke sweep (miniature DES run + 1s "
            f"stall per point); identical aggregated results across all "
            f"three sweeps, order signature {serial_doc['signature']}; "
            f"gate: parallel >= {MIN_PARALLEL_SPEEDUP}x serial, warm "
            f"re-run 100% cached")
    record_table("campaign", columns, rows, note)

    write_bench_json("campaign", "campaign", columns, rows, note, {
        "points": SMOKE_POINTS,
        "workers": PARALLEL_WORKERS,
        "serial_wall_seconds": serial_report.wall_seconds,
        "parallel_wall_seconds": parallel_report.wall_seconds,
        "warm_wall_seconds": warm_report.wall_seconds,
        "points_per_sec": parallel_report.points_per_sec,
        "speedup": speedup,
        "identical_results": parallel_doc == serial_doc,
        "warm_executed": len(warm_report.executed),
        "cache_hits": warm_report.cache_hits,
        "signature": serial_doc["signature"],
        "smoke": serial_doc,
    })


def test_campaign_space_stable():
    # the smoke signature folds seeds + per-point order signatures; a
    # second expansion of the space must be byte-stable across calls
    definition = get_campaign("smoke")
    assert definition.points() == definition.points()
