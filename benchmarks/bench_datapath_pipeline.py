"""Data-path pipelining benches.

Two claims from the pipelined data path land here:

- on the Fig. 5 workload in a slot-saturated configuration, the map
  phase gets shorter with (a) map-side block prefetch + read-ahead
  cache on the whole-block path and (b) the bounded in-flight request
  window on granularity-chopped reads;
- the virtual-time :class:`~repro.sim.SharedBandwidth` produces the
  same simulated completions as the legacy O(n)-rescan implementation
  while doing less work per membership change (wall-clock recorded,
  simulated-time equality asserted).
"""

import random
import time

from repro.bench.harness import datapath_rows
from repro.sim import Environment, SharedBandwidth
from repro.sim._legacy import LegacySharedBandwidth


def test_datapath_pipeline(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        datapath_rows, rounds=1, iterations=1,
        kwargs={"n_timesteps": 24, "slots_per_node": 2})
    record_table("datapath_pipeline", columns, rows, note)
    serial, prefetched, chopped, windowed = rows
    assert prefetched[2] < serial[2]   # prefetch shortens the map phase
    assert prefetched[1] <= serial[1]  # and never the total's expense
    assert prefetched[5] > 0           # the cache was actually filled
    assert windowed[2] < chopped[2]    # window beats serial chopped reads
    assert windowed[1] < chopped[1]


def _run_schedule(pipe_cls, n_transfers: int, seed: int = 20180710):
    """Drive one randomized transfer schedule; return completion times."""
    env = Environment()
    pipe = pipe_cls(env, 1e9, "pipe")
    rng = random.Random(seed)
    completions = []

    def one(delay, nbytes, idx):
        yield env.timeout(delay)
        yield pipe.transfer(nbytes)
        completions.append((idx, env.now))

    for i in range(n_transfers):
        env.process(one(rng.random() * 0.05,
                        rng.randrange(1, 10_000_000), i))
    env.run()
    return completions


def test_shared_bandwidth_microbench(benchmark, record_table):
    n = 2000
    t0 = time.perf_counter()
    legacy = _run_schedule(LegacySharedBandwidth, n)
    legacy_wall = time.perf_counter() - t0

    def new_run():
        return _run_schedule(SharedBandwidth, n)

    current = benchmark.pedantic(new_run, rounds=1, iterations=1)
    new_wall = benchmark.stats.stats.mean

    assert [i for i, _t in current] == [i for i, _t in legacy]
    for (_, t_new), (_, t_old) in zip(current, legacy):
        assert abs(t_new - t_old) < 1e-9

    columns = ["implementation", "wall (s)", "transfers"]
    rows = [
        ("legacy O(n) rescan", legacy_wall, n),
        ("virtual-time finish tags", new_wall, n),
    ]
    record_table(
        "sharedbw_microbench", columns, rows,
        note="same simulated completion order and times (asserted to "
             "1 ns); wall-clock is machine-dependent")
