"""Extension experiments beyond the paper's figures.

- **Scale-up** (§V-E): the paper ran it but omitted the numbers "due to
  the page limit"; this bench supplies them.
- **Second framework** (§VII): the paper names Spark as the next target;
  the Spark-like engine's SciDP source runs the Img-only workload at
  cost comparable to the MapReduce path.
"""

from repro.bench.harness import ext_scaleup_rows, ext_spark_rows


def test_ext_scaleup(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        ext_scaleup_rows, rounds=1, iterations=1,
        kwargs={"slot_counts": (4, 8, 16), "n_timesteps": 48})
    record_table("ext_scaleup", columns, rows, note)

    times = [row[2] for row in rows]
    assert times[0] > times[1] > times[2]
    # Like Fig. 8: near-halving per doubling until devices saturate.
    assert times[0] / times[1] > 1.5
    assert rows[-1][3] > 2.0


def test_ext_sparklike_engine(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        ext_spark_rows, rounds=1, iterations=1,
        kwargs={"n_timesteps": 12})
    record_table("ext_sparklike", columns, rows, note)

    (mr_name, mr_frames, mr_time), (sp_name, sp_frames, sp_time) = rows
    assert mr_frames == sp_frames == 96       # 12 files x 8 levels
    # Same data path, comparable cost: within 2.5x either way.
    assert sp_time < mr_time * 2.5
    assert mr_time < sp_time * 2.5
