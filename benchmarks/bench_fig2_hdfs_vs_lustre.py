"""Fig. 2 — Hadoop workloads on native HDFS vs the Lustre HDFS connector.

Paper: Terasort, Grep, and TestDFSIO on 8 nodes / 8 OSTs, replication 1,
Lustre striped at the HDFS block size. Native HDFS wins by ~221% on
average because the connector turns every local streaming read into
remote RPC-granular PFS traffic.
"""

from repro.bench.harness import fig2_rows


def test_fig2_hdfs_vs_lustre(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        fig2_rows, rounds=1, iterations=1)
    record_table("fig2_hdfs_vs_lustre", columns, rows, note)

    by_name = {row[0]: row for row in rows}
    for workload in ("terasort", "grep", "dfsio-write", "dfsio-read"):
        hdfs_time, connector_time, ratio = by_name[workload][1:]
        assert connector_time > hdfs_time, workload
        assert 1.0 < ratio < 6.0, workload
    geo_mean = by_name["geo-mean"][3]
    # Paper average: 221% (we measure ~2.3x).
    assert 1.7 < geo_mean < 3.2
