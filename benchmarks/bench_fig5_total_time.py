"""Fig. 5 + Table III — total execution time of all solutions vs size.

Paper: Img-only workload at 96/192/384/768 timestamps; Naive is orders of
magnitude slower (shown at 1/8 scale); SciDP beats every baseline by
6.58x-284.63x. We run the same four sizes at the 1:8 file / 1:678
per-level scale documented in DESIGN.md §6, so speedup ratios are
directly comparable.
"""

from repro.bench.harness import SCALED_SIZES, fig5_table3_rows


def test_fig5_and_table3(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        fig5_table3_rows, rounds=1, iterations=1,
        kwargs={"sizes": SCALED_SIZES})
    record_table("fig5_total_time_and_table3_speedups",
                 columns, rows, note)

    totals = {row[0]: row[1:] for row in rows
              if not row[0].startswith(("---", "scidp vs"))}
    speedups = {row[0]: row[1:] for row in rows
                if row[0].startswith("scidp vs")}

    for i in range(len(SCALED_SIZES)):
        # Paper's ordering at every size.
        assert totals["scidp"][i] < totals["scihadoop"][i]
        assert totals["scihadoop"][i] < totals["porthadoop"][i]
        assert totals["porthadoop"][i] < totals["vanilla"][i]
        assert totals["vanilla"][i] < totals["naive"][i]

        # Table III magnitudes: ~6.58x against the best baseline,
        # hundreds against naive.
        assert 4.0 < speedups["scidp vs scihadoop"][i] < 14.0
        assert 150.0 < speedups["scidp vs naive"][i] < 600.0
        assert (speedups["scidp vs vanilla"][i]
                > speedups["scidp vs porthadoop"][i])
