"""Fig. 6 — I/O bandwidth of SciDP vs HPC I/O methods.

Paper: NC Ind / NC Coll read via netCDF APIs; MPI Coll reads the file
flat (the ideal upper bound); SciDP / SciDP Equal divide compressed and
raw sizes by an I/O time that includes decompression. SciDP Equal
approaches MPI Coll as readers increase.
"""

from repro.bench.harness import fig6_rows

READERS = (1, 2, 4, 8, 16)


def test_fig6_io_bandwidth(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        fig6_rows, rounds=1, iterations=1, kwargs={"readers": READERS})
    record_table("fig6_io_bandwidth", columns, rows, note)

    for n, nc_ind, nc_coll, mpi_coll, scidp, scidp_equal in rows:
        # MPI Coll bounds every series measured in bytes moved off the
        # PFS, at every scale.
        assert mpi_coll >= nc_ind
        assert mpi_coll >= nc_coll
        assert mpi_coll >= scidp
        # Equal-credit SciDP sits above its compressed-credit line.
        assert scidp_equal > scidp
        # Independent netCDF I/O never beats collective by much.
        assert nc_ind <= nc_coll * 1.15
        if n <= 8:
            # The paper's regime: the raw-credited SciDP line approaches
            # MPI Coll from below. (Past ~13 readers it legitimately
            # crosses — decompression delivers more bytes than the flat
            # path can move; the paper's figure stops before this.
            # See EXPERIMENTS.md.)
            assert mpi_coll >= scidp_equal

    # SciDP Equal approaches MPI Coll as readers increase (§V-C).
    gap_first = rows[0][3] / rows[0][5]
    gap_last = rows[-1][3] / rows[-1][5]
    assert gap_last < gap_first

    # Every parallel-reader series scales up with reader count.
    for column in (1, 2, 4, 5):
        assert rows[-1][column] > rows[0][column] * 2
