"""Fig. 7 — per-task time decomposition (Read / Convert / Plot).

Paper (384 timestamps): Convert dominates for Naive / Vanilla /
PortHadoop because ``read.table`` sequentially parses text; SciDP reads a
level in 0.035 s and converts binary data "in a very short time"; Plot is
essentially equal across the parallel solutions, slightly lower for the
contention-free naive run.

Phase durations are aggregated from the per-task spans that
``TaskContext.phase`` records (``repro.obs``); the legacy
``IntervalTimer`` totals remain as a cross-check shim.
"""

from repro.bench.harness import fig7_rows


def test_fig7_task_decomposition(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        fig7_rows, rounds=1, iterations=1, kwargs={"n_timesteps": 48})
    record_table("fig7_task_decomposition", columns, rows, note)

    phases = {row[0]: {"read": row[1], "convert": row[2], "plot": row[3],
                       "shuffle": row[4]}
              for row in rows}

    # Every Hadoop-path solution waits on the shuffle; naive has no
    # reduce side at all.
    assert phases["naive"]["shuffle"] == 0.0
    for name in ("vanilla", "porthadoop", "scidp"):
        assert phases[name]["shuffle"] > 0.0

    # Convert dominates every read.table solution.
    for name in ("naive", "vanilla", "porthadoop"):
        assert phases[name]["convert"] > phases[name]["read"]
        assert phases[name]["convert"] > phases[name]["plot"]
        assert phases[name]["convert"] > 10 * phases["scidp"]["convert"]

    # SciDP: ~0.035 s/level read, negligible convert.
    assert 0.01 < phases["scidp"]["read"] < 0.1
    assert phases["scidp"]["convert"] < 0.02

    # Plot: equal across parallel solutions, naive slightly lower.
    parallel_plots = [phases[n]["plot"]
                      for n in ("vanilla", "porthadoop", "scidp")]
    assert max(parallel_plots) / min(parallel_plots) < 1.2
    assert phases["naive"]["plot"] < min(parallel_plots)
