"""Fig. 8 — SciDP scale-out (4/8/16 nodes, 8 task slots each).

Paper: "The image plotting time reduces nearly in half when the number
of nodes doubles which leads to a near-optimal speedup" — tasks are
independent, no inter-task communication.
"""

from repro.bench.harness import fig8_rows


def test_fig8_scaleout(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        fig8_rows, rounds=1, iterations=1,
        kwargs={"node_counts": (4, 8, 16), "n_timesteps": 48})
    record_table("fig8_scaleout", columns, rows, note)

    times = [row[2] for row in rows]
    assert times[0] > times[1] > times[2]
    # Near-halving per doubling: allow the wave-quantization slack a
    # 64->128-slot step sees at finite task counts.
    assert times[0] / times[1] > 1.6
    assert times[1] / times[2] > 1.4
    # Overall speedup from 4 to 16 nodes approaches 4x.
    assert rows[-1][3] > 2.5
