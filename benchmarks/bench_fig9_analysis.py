"""Fig. 9 — parallel data analysis using SQL queries (Anlys workload).

Paper: the `highlight` (top-10) case costs almost the same as plain
plotting — small computation, no extra reads; the `top 1%` case is
costlier because query results proportional to the input are shuffled
and written to HDFS.
"""

from repro.bench.harness import fig9_rows

SIZES = (12, 24, 48)


def test_fig9_sql_analysis(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        fig9_rows, rounds=1, iterations=1, kwargs={"sizes": SIZES})
    record_table("fig9_sql_analysis", columns, rows, note)

    for size, base, highlight, top1pct, shuffle_mb in rows:
        # highlight ~= no analysis (paper: "almost the same time").
        assert highlight < 1.25 * base
        # top 1% costs visibly more than highlight.
        assert top1pct > highlight
        # ... because its result rows ride the shuffle to the reducers.
        assert shuffle_mb > 0
    # And the top-1% overhead grows with input size (result volume is
    # proportional to input, §V-F).
    overheads = [row[3] - row[1] for row in rows]
    assert overheads[-1] > overheads[0]
