"""Observability recording overhead — the BENCH_obs trajectory.

Drives ~1M synthetic events (nested task-phase spans over 8 tracks plus
utilisation counters) through the frozen v1 object tracer and the v2
columnar tracer, and records events/second per mode. The ``replay``
mode — bulk ingest of a precomputed stream — is where the columnar
layout pays off wholesale; CI gates it at >= 5x over the v1 per-event
replay and uploads ``bench_results/BENCH_obs.json`` next to
BENCH_shuffle/BENCH_write.
"""

import json
import pathlib

from repro.bench.obsbench import obs_overhead_rows

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / \
    "bench_results"


def test_obs_recording_trajectory(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        obs_overhead_rows, rounds=1, iterations=1,
        kwargs={"n_events": 1_000_000, "repeats": 3})
    record_table("obs_overhead", columns, rows, note)

    by_mode = {row[0]: row for row in rows}
    span, counter, replay = \
        by_mode["span"], by_mode["counter"], by_mode["replay"]
    mem = by_mode["span mem MB"]

    # The columnar span path beats the object tracer (no per-event Span
    # allocation); the counter path trades a bounded slice of the bare
    # tuple-append throughput for interned keys and ~5x less residency;
    # the batch-ingest path is the CI-gated 5x (in practice >100x: one
    # numpy interleave instead of a million Span objects).
    assert span[4] >= 1.0, f"span path regressed: {span[4]:.2f}x"
    assert counter[4] >= 0.5, f"counter path regressed: {counter[4]:.2f}x"
    assert replay[4] >= 5.0, \
        f"columnar replay ingest below the 5x gate: {replay[4]:.2f}x"
    assert mem[4] >= 2.0, \
        f"columnar residency advantage eroded: {mem[4]:.2f}x"

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(json.dumps({
        "experiment": "obs",
        "columns": list(columns),
        "rows": [list(row) for row in rows],
        "note": note,
    }, indent=2) + "\n")
