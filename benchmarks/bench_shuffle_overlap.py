"""Overlapped shuffle data path — the BENCH_shuffle trajectory.

Four configurations of the Fig. 9-style SQL aggregation job isolate the
three shuffle mechanisms: the event-driven copy phase (reducers launch
at the first committed map output instead of the map barrier), the
map-side combiner (folds (count, sum) partial aggregates before they
cross the network), and the bounded streaming merge (spills keep reduce
memory flat at the cost of extra passes).

The winning numbers are persisted to ``bench_results/BENCH_shuffle.json``
so the perf trajectory is comparable across commits; CI uploads the same
document produced by ``python -m repro.bench shuffle --json``.
"""

import json
import pathlib
import random
import time

from repro.bench.harness import shuffle_overlap_rows
from repro.mapreduce._legacy import legacy_hash_partition
from repro.mapreduce.shuffle import hash_partition

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / \
    "bench_results"


def test_shuffle_overlap_trajectory(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        shuffle_overlap_rows, rounds=1, iterations=1,
        kwargs={"n_timesteps": 12})
    record_table("shuffle_overlap", columns, rows, note)

    by_label = {row[0]: row for row in rows}
    legacy = by_label["legacy barrier"]
    overlap = by_label["overlapped copy"]
    combined = by_label["overlap + combiner"]
    bounded = by_label["overlap + combiner + merge x4"]

    # The event-driven copy phase alone beats the map barrier.
    assert overlap[1] < legacy[1]
    # The combiner stacks on top: faster still, and the shuffle volume
    # collapses by the fold factor.
    assert combined[1] < overlap[1] < legacy[1]
    assert combined[3] < legacy[3] / 4
    # The bounded merge pays spill passes for flat reduce memory.
    assert bounded[5] > 0
    assert bounded[3] == combined[3]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_shuffle.json").write_text(json.dumps({
        "experiment": "shuffle",
        "columns": list(columns),
        "rows": [list(row) for row in rows],
        "note": note,
    }, indent=2) + "\n")


def test_hash_partition_vectorized_fold(benchmark):
    """The vectorized 31-fold is bit-identical to the scalar reference
    and worth the numpy round trip on shuffle-sized keys."""
    rng = random.Random(20260806)
    keys = [
        bytes(rng.randrange(256)
              for _ in range(rng.randrange(64, 4096)))
        for _ in range(400)
    ]
    for key in keys:
        assert hash_partition(key, 1 << 20) == \
            legacy_hash_partition(key, 1 << 20)

    benchmark.pedantic(
        lambda: [hash_partition(k, 1 << 20) for k in keys],
        rounds=3, iterations=1)

    t0 = time.perf_counter()
    [legacy_hash_partition(k, 1 << 20) for k in keys]
    legacy_ms = (time.perf_counter() - t0) * 1e3
    print(f"\nscalar byte-fold over {len(keys)} keys: {legacy_ms:.1f} ms")
