"""Simulator engine throughput at cluster scale — the BENCH_simscale
trajectory.

Runs the 256-node / 10k-task / 10-job synthetic cluster workload (slot
gates, three-phase tasks, a run-wide speculative-backup reap) on the
frozen legacy engine and the live engine, asserts the two worlds popped
events identically, and records events/second for both. The sweep runs
through the campaign engine (``workers=0``: in-process, so the timed
event loops share nothing with a pool) and the document is folded from
the per-engine points the workspace recorded. CI gates the live engine
at >= 3x over legacy plus an absolute events/sec floor, and uploads
``bench_results/BENCH_simscale.json`` next to
BENCH_shuffle/BENCH_write/BENCH_obs.
"""

from benchmarks._worlds import run_campaign_doc, write_bench_json

#: absolute floor for the live engine — conservative (shared CI runners
#: are ~2-3x slower than a quiet dev box measuring ~550k events/s)
MIN_EVENTS_PER_SEC = 120_000.0

#: the ISSUE-7 trajectory gate
MIN_SPEEDUP = 3.0


def _run_simscale():
    doc, _report, _ws = run_campaign_doc("simscale", workers=0)
    return doc


def test_simscale_trajectory(benchmark, record_table):
    doc = benchmark.pedantic(_run_simscale, rounds=1, iterations=1)

    # aggregation already raised if the twin worlds diverged on the
    # final clock, event count, completions, or pop-order signature
    assert doc["identical_order"]
    assert doc["n_nodes"] == 256 and doc["n_tasks"] == 10_000

    live = doc["engine"]["events_per_sec"]
    assert live >= MIN_EVENTS_PER_SEC, \
        f"live engine below the events/sec floor: {live:,.0f}"
    assert doc["speedup"] >= MIN_SPEEDUP, \
        f"engine speedup below the {MIN_SPEEDUP}x gate: " \
        f"{doc['speedup']:.2f}x"

    columns = ["engine", "events", "wall s", "events/s", "speedup"]
    rows = [
        ("legacy", doc["events"],
         round(doc["legacy"]["wall_seconds"], 3),
         round(doc["legacy"]["events_per_sec"]), 1.0),
        ("live", doc["events"],
         round(doc["engine"]["wall_seconds"], 3),
         round(doc["engine"]["events_per_sec"]),
         round(doc["speedup"], 2)),
    ]
    note = (f"{doc['n_nodes']}-node / {doc['n_tasks']}-task / "
            f"{doc['n_jobs']}-job run, best of {doc['repeats']} repeats; "
            f"twin-world event order identical "
            f"(sim clock {doc['sim_seconds']:.3f}s)")
    record_table("simscale", columns, rows, note)

    write_bench_json("simscale", "simscale", columns, rows, note, doc)
