"""Lazy DAG engine vs the frozen eager engine — the BENCH_sparklike
trajectory.

Runs the iterative-wordcount comparison across five configurations
(eager legacy, lazy default, fusion, cache, fusion+cache) and gates
fused+cached at >= 1.5x over the eager baseline. The five
configurations sweep as campaign points (one per config, ``workers=0``)
and the comparison document is folded from the workspace records. All
timings are simulated seconds, so the ratio is deterministic on any
runner. CI uploads ``bench_results/BENCH_sparklike.json`` next to
BENCH_shuffle/BENCH_write/BENCH_obs/BENCH_simscale.
"""

from repro.bench.sparkbench import MIN_SPEEDUP

from benchmarks._worlds import run_campaign_doc, write_bench_json


def _run_sparklike():
    doc, _report, _ws = run_campaign_doc("sparklike", workers=0)
    return doc


def test_sparklike_trajectory(benchmark, record_table):
    doc = benchmark.pedantic(_run_sparklike, rounds=1, iterations=1)

    assert doc["identical_results"], \
        "engine configurations disagreed on the workload results"
    # Twin-world sanity: at default knobs the lazy engine IS the eager
    # engine, to the simulated nanosecond.
    legacy = doc["configs"]["legacy-eager"]["sim_seconds"]
    lazy = doc["configs"]["lazy"]["sim_seconds"]
    assert abs(legacy - lazy) < 1e-9

    assert doc["speedup"] >= MIN_SPEEDUP, \
        f"fused+cached below the {MIN_SPEEDUP}x gate: " \
        f"{doc['speedup']:.2f}x"
    # Each lever also helps on its own.
    assert doc["configs"]["lazy+fusion"]["speedup"] > 1.0
    assert doc["configs"]["lazy+cache"]["speedup"] > 1.0

    columns = ["engine config", "sim seconds", "tasks", "cache hits",
               "speedup vs eager"]
    rows = [
        (name, round(entry["sim_seconds"], 4), entry["tasks"],
         entry["cache_hits"], round(entry["speedup"], 2))
        for name, entry in doc["configs"].items()
    ]
    note = (f"iterative wordcount, {doc['iterations']} rounds over "
            f"{doc['n_lines']} lines; simulated time, deterministic; "
            f"gate: fused+cached >= {MIN_SPEEDUP}x eager")
    record_table("sparklike", columns, rows, note)

    write_bench_json("sparklike", "sparklike", columns, rows, note, doc)
