"""SQL planner pushdown vs the frozen eager evaluator — the BENCH_sql
trajectory.

Runs the Fig. 9-style selective-query comparison across three engine
configurations (frozen eager sqldf, planner with pushdown off, planner
with pushdown on) over zone-mapped NU-WRF scinc files on the simulated
PFS. The three configurations sweep as campaign points (``workers=0``)
and the comparison document is folded from the workspace records.
Gates: identical result frames everywhere, the planner-off config is
the eager path's timing twin to 1e-9 simulated seconds, and pushdown
scans >= 10x fewer PFS bytes. All timings are simulated, so every ratio
is deterministic on any runner. CI uploads
``bench_results/BENCH_sql.json`` next to the other BENCH_* artifacts.
"""

from repro.bench.sqlbench import MIN_BYTES_REDUCTION, TWIN_TOLERANCE

from benchmarks._worlds import run_campaign_doc, write_bench_json


def _run_sql():
    doc, _report, _ws = run_campaign_doc("sql", workers=0)
    return doc


def test_sql_pushdown_trajectory(benchmark, record_table):
    doc = benchmark.pedantic(_run_sql, rounds=1, iterations=1)

    assert doc["identical_results"], \
        "engine configurations disagreed on the query results"
    # Twin-world sanity: with pushdown off the planner performs the
    # same reads in the same order as the frozen eager evaluator.
    assert doc["twin_delta"] < TWIN_TOLERANCE, \
        f"planner drifted from the eager twin: {doc['twin_delta']:.2e}s"

    assert doc["bytes_reduction"] >= MIN_BYTES_REDUCTION, \
        f"pushdown below the {MIN_BYTES_REDUCTION}x bytes gate: " \
        f"{doc['bytes_reduction']:.2f}x"
    # Pruning must also translate into simulated wall-clock.
    assert doc["speedup"] > 1.0

    columns = ["engine config", "sim seconds", "MB scanned",
               "chunks read", "chunks pruned", "vars pruned"]
    rows = [
        (name, round(entry["sim_seconds"], 5),
         round(entry["bytes_scanned"] / 1e6, 4),
         entry["chunks_read"], entry["chunks_pruned"],
         entry["variables_pruned"])
        for name, entry in doc["configs"].items()
    ]
    note = (f"Fig. 9-style selective QR scan, {doc['timesteps']} NU-WRF "
            f"timesteps of shape {tuple(doc['shape'])}; bytes reduction "
            f"{doc['bytes_reduction']:.1f}x (gate >= "
            f"{MIN_BYTES_REDUCTION:.0f}x), twin delta "
            f"{doc['twin_delta']:.2e}s; simulated time, deterministic")
    record_table("sql", columns, rows, note)

    write_bench_json("sql", "sql", columns, rows, note, doc)
