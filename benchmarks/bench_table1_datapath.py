"""Table I — data paths of all five solutions.

The static matrix is printed for the record; the live behaviour behind
each cell (who converts, who copies, sequential vs parallel) is asserted
against actual runs in tests/workloads/test_solutions.py.
"""

from repro import costs
from repro.bench.harness import table1_rows
from repro.workloads.solutions import build_world, run_solution


def test_table1_datapath(benchmark, record_table):
    columns, rows, note = benchmark.pedantic(
        table1_rows, rounds=1, iterations=1)
    record_table("table1_datapath", columns, rows, note)
    assert [r[0] for r in rows] == [
        "naive", "vanilla-hadoop", "porthadoop", "scihadoop", "scidp"]
    # SciDP is the only row with no conversion AND no copy.
    assert rows[-1][1:] == ("no", "no", "parallel")


def test_table1_backed_by_live_runs(benchmark, record_table):
    """Cross-check two cells against live runs: SciDP copies nothing,
    SciHadoop copies in parallel."""

    def live():
        world = build_world(n_timesteps=2, shape=(4, 24, 24))
        scidp = run_solution(world, "scidp")
        scihadoop = run_solution(world, "scihadoop")
        costs.reset_scale()
        return scidp, scihadoop

    scidp, scihadoop = benchmark.pedantic(live, rounds=1, iterations=1)
    assert scidp.copy_time == 0.0
    assert scihadoop.copy_time > 0.0
