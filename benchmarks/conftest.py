"""Benchmark support: every experiment table is printed to stdout and
persisted under ``bench_results/`` so results survive pytest capture."""

import pathlib

import pytest

from repro import costs
from repro.bench.reporting import format_table

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / \
    "bench_results"


@pytest.fixture(autouse=True)
def _reset_scale():
    costs.reset_scale()
    yield
    costs.reset_scale()


@pytest.fixture
def record_table():
    """Print a result table and write it to bench_results/<name>.txt."""

    def _record(name, columns, rows, note=""):
        text = format_table(name, columns, rows, note)
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _record
