"""Model intercomparison à la CMIP — the paper's motivating workflow.

§II-A: "Coupled Model Intercomparison Project (CMIP-5/6) is a typical
workload in NCCS. It compares netCDF outputs from different MPI-based
simulation models ... The comparison could be in either mathematical or
visual form."

Two synthetic model runs (slightly different physics) land on the PFS;
the Spark-like engine pairs their levels through SciDP, computes RMS
differences (mathematical form), and an animated GIF of the difference
fields (visual form) is written to ``examples_out/``.

Run:  python examples/cmip_comparison.py
"""

import pathlib

import numpy as np

from repro import costs
from repro.rlang.animation import animate_fields
from repro.sparklike import Context
from repro.workloads.nuwrf import NUWRFConfig, generate_nuwrf
from repro.workloads.solutions import build_world

OUT_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples_out"


def main():
    # Model A comes with the standard world; generate model B with a
    # different seed (a "different physics package").
    world = build_world(n_timesteps=3, with_text=False)
    config_b = NUWRFConfig(shape=world.config.shape, timesteps=3,
                           seed=world.config.seed + 1)
    generate_nuwrf(world.pfs, config_b, directory="/nuwrf_b")

    ctx = Context(world.env, world.nodes, world.hdfs,
                  world.cluster.network, scidp=world.scidp,
                  executor_cores=8)

    def keyed(run_name):
        def tag(kv):
            (source, _variable, start) = kv[0]
            timestep = source.rsplit("/", 1)[-1]
            return ((timestep, start[0]), (run_name, kv[1][0]))
        return tag

    run_a = ctx.scidp_variable("/nuwrf", variables=["T"]).map(
        keyed("A"))
    run_b = ctx.scidp_variable("/nuwrf_b", variables=["T"]).map(
        keyed("B"))

    # Pair levels across runs, then compute per-level RMS difference.
    paired = run_a.collect() + run_b.collect()
    by_key: dict = {}
    for key, tagged in paired:
        by_key.setdefault(key, {})[tagged[0]] = tagged[1]

    print("Per-level RMS difference between model A and model B (T):")
    diffs = {}
    for (timestep, z), runs in sorted(by_key.items()):
        delta = runs["A"].astype(np.float64) - runs["B"].astype(
            np.float64)
        rms = float(np.sqrt((delta ** 2).mean()))
        diffs[(timestep, z)] = delta
        if z == 0:
            print(f"  {timestep} surface level: RMS {rms:.4f}")

    # Visual form: animate the surface difference across time.
    surface = [diffs[key] for key in sorted(diffs) if key[1] == 0]
    gif = animate_fields(surface, resolution=(96, 96),
                         colormap="viridis", delay_cs=40)
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "cmip_surface_difference.gif"
    out.write_bytes(gif)
    print(f"\n  difference animation ({len(surface)} frames) -> {out}")

    # Mathematical form via SQL, as §IV-E.3 supports it ("SQL queries
    # are supported by the sqldf package"): grid-aligned join of the two
    # models' surface fields.
    from repro.rlang import data_frame, sqldf
    first = sorted(by_key)[0]
    a0 = by_key[first]["A"].astype(np.float64)
    b0 = by_key[first]["B"].astype(np.float64)
    ys, xs = np.meshgrid(np.arange(a0.shape[0]), np.arange(a0.shape[1]),
                         indexing="ij")
    tables = {
        "model_a": data_frame(lon=ys.ravel(), lat=xs.ravel(),
                              t_a=a0.ravel()),
        "model_b": data_frame(lon=ys.ravel(), lat=xs.ravel(),
                              t_b=b0.ravel()),
    }
    hot = sqldf(
        "SELECT lon, lat, t_a - t_b AS delta FROM model_a "
        "JOIN model_b USING (lon, lat) "
        "ORDER BY delta DESC LIMIT 3", tables)
    print("  largest A-B disagreements at the first timestep (SQL join):")
    for row in hot.iter_rows():
        print(f"    ({row['lon']:3d}, {row['lat']:3d}) "
              f"delta {row['delta']:+.4f}")

    # The same comparison through the engine's shuffle (distributed):
    rms_rdd = (ctx.scidp_variable("/nuwrf", variables=["T"])
               .map(keyed("A"))
               .map(lambda kv: (kv[0], float(np.square(
                   kv[1][1].astype(np.float64)).sum())))
               .reduce_by_key(lambda a, b: a + b))
    n_levels = rms_rdd.count()
    print(f"  distributed pass touched {n_levels} (timestep, level) "
          f"pairs in {world.env.now:.2f} simulated seconds")
    costs.reset_scale()


if __name__ == "__main__":
    main()
