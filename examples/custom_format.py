"""Extending SciDP with a new scientific file format (§III-B).

"Ultimately, the input file format support is designed to be modular.
Users only need to provide a file structure explorer and a corresponding
reader to add support of arbitrary file formats."

This example exercises that path twice:

1. with SDF5, the built-in HDF5 stand-in (deeply nested groups); and
2. with a brand-new toy format ("GRIB-ish") registered at runtime via
   ``register_format`` — recognised files are classified by the
   Sci-format Head Reader instead of falling back to flat mapping.

Run:  python examples/custom_format.py
"""

import io

import numpy as np

from repro.cluster import Cluster
from repro.core import DataMapper, FileExplorer, SciDP
from repro.formats import Dataset, detect_format, sdf5
from repro.formats.detect import _PROBES, register_format
from repro.hdfs import HDFS
from repro.pfs import PFS
from repro.sim import Environment


def build_world():
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", role="compute") for i in range(2)]
    mds = cluster.add_node("mds", role="storage")
    oss = cluster.add_node("oss", role="storage")
    pfs = PFS(env, cluster.network, mds, [oss])
    hdfs = HDFS(env, cluster.network)
    for node in nodes:
        hdfs.add_datanode(node)
    scidp = SciDP(env, nodes, pfs, hdfs, cluster.network)
    return env, nodes, pfs, hdfs, scidp


def hdf5_style_demo(env, nodes, pfs, hdfs, scidp):
    """SDF5 file with nested groups -> mirrored directory tree on HDFS."""
    ds = Dataset()
    model = ds.create_group("model")
    micro = model.create_group("microphysics")
    micro.create_variable("qc", ("z", "y"),
                          np.random.default_rng(0)
                          .random((4, 8)).astype(np.float32))
    dynamics = model.create_group("dynamics")
    dynamics.create_variable("w", ("z", "y"),
                             np.zeros((4, 8), dtype=np.float32))
    buf = io.BytesIO()
    sdf5.write(buf, ds)
    pfs.store_file("/h5data/run.h5", buf.getvalue())

    explorer = FileExplorer(scidp.pfs_client(nodes[0]))
    proc = env.process(explorer.explore("/h5data"))
    env.run()
    explored = proc.value
    print(f"SDF5 file detected as: {explored[0].format}")

    mapper = DataMapper(hdfs.namenode, mirror_root="/mirror")
    proc = env.process(mapper.map_files(explored))
    env.run()
    print("Virtual HDFS files mirroring the HDF5 group tree:")
    for path in mapper.table.paths():
        blocks = hdfs.namenode.get_block_locations(path)
        print(f"  {path}  ({len(blocks)} dummy blocks)")


# ---------------------------------------------------------------------------
# A brand-new toy format: "GRIB-ish" — magic + raw float32 records.
# ---------------------------------------------------------------------------
GRIBISH_MAGIC = b"GRIBZZ"


def write_gribish(records: dict[str, np.ndarray]) -> bytes:
    out = io.BytesIO()
    out.write(GRIBISH_MAGIC)
    for name, arr in records.items():
        header = f"{name}:{arr.shape[0]}x{arr.shape[1]}\n".encode()
        out.write(len(header).to_bytes(2, "big"))
        out.write(header)
        out.write(arr.astype(np.float32).tobytes())
    return out.getvalue()


def is_gribish(fileobj) -> bool:
    fileobj.seek(0)
    return fileobj.read(len(GRIBISH_MAGIC)) == GRIBISH_MAGIC


def custom_probe_demo(pfs):
    if not any(name == "gribish" for name, _p in _PROBES):
        register_format("gribish", is_gribish)
    payload = write_gribish(
        {"precip": np.ones((4, 4), dtype=np.float32)})
    pfs.store_file("/grib/fcst.grb", payload)
    pfs.store_file("/grib/readme.txt", b"plain text\n")

    print("\nFormat detection after registering the custom probe:")
    for path in ("/grib/fcst.grb", "/grib/readme.txt"):
        fmt = detect_format(pfs.open_sync(path))
        print(f"  {path}: {fmt}")


def main():
    env, nodes, pfs, hdfs, scidp = build_world()
    hdf5_style_demo(env, nodes, pfs, hdfs, scidp)
    custom_probe_demo(pfs)


if __name__ == "__main__":
    main()
