"""The full scientific workflow loop (§II-A): simulate -> analyze.

Phase 1 — *simulation*: MPI ranks on the HPC side write each timestep's
netCDF output to the Lustre-like PFS with a two-phase collective write
(`MPI_File_write_at_all`), exactly how NU-WRF produces its files.

Phase 2 — *analysis*: "Users can launch data analysis on a Hadoop
computing environment immediately after data is generated" (§I). SciDP
maps the fresh files and plots every rainfall level with zero copy and
zero conversion; the SciHadoop baseline must first ship whole files to
HDFS.

Run:  python examples/end_to_end_workflow.py
"""

import io

from repro import costs
from repro.formats import scinc
from repro.pfs import PFSClient
from repro.pfs.mpiio import MPIFile
from repro.workloads.nuwrf import NUWRFConfig, synthesize_timestep
from repro.workloads.solutions import build_world, run_solution

N_SIM_RANKS = 4
N_TIMESTEPS = 3


def simulate(world):
    """Write the run onto the PFS with timed collective I/O.

    Ranks live on the storage-side compute nodes; each timestep's
    serialized container is split across ranks and written with one
    `write_at_all` — the pattern a parallel netCDF writer produces.
    """
    env = world.env
    config = NUWRFConfig(shape=world.config.shape,
                         timesteps=N_TIMESTEPS,
                         seed=world.config.seed)
    clients = [PFSClient(world.pfs, world.nodes[i % len(world.nodes)])
               for i in range(N_SIM_RANKS)]
    written = []

    def run_simulation():
        for step in range(config.timesteps):
            ds = synthesize_timestep(config, step)
            buf = io.BytesIO()
            scinc.write(buf, ds, config.compression_level)
            payload = buf.getvalue()
            path = f"/fresh/{config.file_name(step)}"
            handle = MPIFile.create(clients, path)
            share = -(-len(payload) // N_SIM_RANKS)
            requests = [
                (r * share, payload[r * share:(r + 1) * share])
                for r in range(N_SIM_RANKS)
                if payload[r * share:(r + 1) * share]
            ]
            requests += [None] * (N_SIM_RANKS - len(requests))
            yield env.process(handle.write_at_all(requests))
            written.append((path, env.now))
            print(f"  t={env.now:8.2f}s  simulation wrote {path} "
                  f"({len(payload)} stored bytes)")
        return written

    proc = env.process(run_simulation())
    env.run()
    return proc.value


def main():
    print("Building the two-cluster world (no pre-loaded data)...")
    world = build_world(n_timesteps=1, with_text=False)
    # Discard the pre-generated file; this workflow writes its own.
    for path in world.manifest["files"]:
        world.pfs.unlink(path)
    world.nc_dir = "/fresh"
    world.manifest["files"] = []

    print(f"\nPhase 1: {N_SIM_RANKS}-rank simulation writing "
          f"{N_TIMESTEPS} timesteps via MPI_File_write_at_all")
    written = simulate(world)
    sim_end = world.env.now
    world.manifest["files"] = [p for p, _t in written]
    world.config.timesteps = N_TIMESTEPS

    print(f"\nPhase 2: analysis starts immediately at "
          f"t={sim_end:.2f}s (no copy, no conversion)")
    result = run_solution(world, "scidp")
    print(f"  SciDP plotted {result.frames} levels in "
          f"{result.total_time:.2f}s "
          f"-> insight at t={sim_end + result.total_time:.2f}s")

    baseline = run_solution(world, "scihadoop")
    print(f"  SciHadoop needed {baseline.copy_time:.2f}s of copying "
          f"first: insight at "
          f"t={sim_end + baseline.total_time:.2f}s "
          f"({baseline.total_time / result.total_time:.1f}x later)")
    costs.reset_scale()


if __name__ == "__main__":
    main()
