"""The paper's headline scenario: NU-WRF analysis & visualization.

Generates a synthetic NU-WRF run (23 variables per timestamp, netCDF-4
style chunking + compression) onto the simulated Lustre PFS, then plots
the rainfall variable QR — one image per altitude level per timestamp —
through two data paths:

- **SciDP**: direct processing of the PFS files (no copy, no conversion,
  variable subsetting, whole-block parallel reads);
- **SciHadoop**: the strongest baseline, which must first copy whole
  netCDF files (all 23 variables) to HDFS.

Real PNG frames are written to ``examples_out/``; simulated times show
the paper's ~6-8x speedup (Fig. 5 / Table III).

Run:  python examples/nuwrf_visualization.py
"""

import pathlib

from repro import costs
from repro.rlang.png import decode_png
from repro.workloads.solutions import build_world, run_solution

OUT_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples_out"


def main():
    print("Building the scaled Chameleon-like testbed and generating a "
          "synthetic NU-WRF run (4 timesteps)...")
    world = build_world(n_timesteps=4)
    manifest = world.manifest
    print(f"  {len(manifest['files'])} netCDF files on the PFS, "
          f"compression ratio {manifest['compression_ratio']:.2f}x "
          f"(paper: ~3.27x)")

    print("\nRunning SciDP (Img-only: plot every QR level)...")
    scidp = run_solution(world, "scidp")
    print(f"  copy {scidp.copy_time:.2f}s + processing "
          f"{scidp.process_time:.2f}s = {scidp.total_time:.2f}s "
          f"(simulated, paper-equivalent)")
    print(f"  frames plotted: {scidp.frames}")
    print(f"  per-level read {scidp.phase_means['read'] * 1000:.0f} ms "
          f"(paper: ~35 ms), plot "
          f"{scidp.phase_means['plot'] * 1000:.0f} ms")

    print("\nRunning SciHadoop (copy whole files to HDFS first)...")
    scihadoop = run_solution(world, "scihadoop")
    print(f"  copy {scihadoop.copy_time:.2f}s + processing "
          f"{scihadoop.process_time:.2f}s = {scihadoop.total_time:.2f}s")
    print(f"\n  SciDP speedup over SciHadoop: "
          f"{scihadoop.total_time / scidp.total_time:.2f}x "
          f"(paper: 6-8x)")

    # Pull the rendered frames out of the reducers' persisted output.
    OUT_DIR.mkdir(exist_ok=True)
    import pickle
    saved = 0
    for path in world.hdfs.namenode.listdir("/results/scidp-001"):
        for key, value in pickle.loads(world.hdfs.read_file_sync(path)):
            if isinstance(key, tuple) and key[-1] == "png":
                _n_frames, png = value
                # key = (((source, variable, start), z), "png")
                z = key[0][1]
                img = decode_png(png)  # proves the frames are real PNGs
                name = f"qr_{saved:03d}_z{z}_{img.shape[0]}x" \
                       f"{img.shape[1]}.png"
                (OUT_DIR / name).write_bytes(png)
                saved += 1
    print(f"\n  {saved} PNG frames written to {OUT_DIR}/")
    costs.reset_scale()


if __name__ == "__main__":
    main()
