"""Quickstart: process scientific data on a PFS from MapReduce, directly.

Builds a small simulated world (4 Hadoop nodes, a Lustre-like PFS),
stores one netCDF-style file on the PFS, and runs a MapReduce job over it
through SciDP — no copy to HDFS, no format conversion. The job computes
per-level statistics of one variable.

Run:  python examples/quickstart.py
"""

import io

import numpy as np

from repro.cluster import Cluster
from repro.core import SciDP
from repro.formats import Dataset, scinc
from repro.hdfs import HDFS
from repro.mapreduce import JobConf
from repro.pfs import PFS, StripeLayout
from repro.sim import Environment


def build_world():
    """A miniature two-cluster deployment (Fig. 1(c) of the paper)."""
    env = Environment()
    cluster = Cluster(env)
    hadoop_nodes = [
        cluster.add_node(f"hadoop{i}", role="compute") for i in range(4)
    ]
    mds = cluster.add_node("mds", role="storage")
    oss = cluster.add_node("oss", role="storage")
    pfs = PFS(env, cluster.network, mds, [oss],
              default_layout=StripeLayout(stripe_size=1 << 20,
                                          stripe_count=1))
    hdfs = HDFS(env, cluster.network)
    for node in hadoop_nodes:
        hdfs.add_datanode(node)
    scidp = SciDP(env, hadoop_nodes, pfs, hdfs, cluster.network)
    return env, scidp, pfs


def make_simulation_output(pfs):
    """Pretend an MPI simulation just wrote a netCDF file to the PFS."""
    rng = np.random.default_rng(42)
    ds = Dataset(attrs={"model": "demo"})
    ds.create_variable(
        "temperature", ("z", "y", "x"),
        (280 + 10 * rng.random((6, 32, 32))).astype(np.float32),
        chunk_shape=(1, 32, 32),      # one chunk per vertical level
        attrs={"units": "K"})
    ds.create_variable(
        "pressure", ("z", "y", "x"),
        (1000 - 50 * rng.random((6, 32, 32))).astype(np.float32),
        chunk_shape=(1, 32, 32))
    buf = io.BytesIO()
    scinc.write(buf, ds)
    pfs.store_file("/simulation/step_0001.nc", buf.getvalue())


def level_stats_mapper(ctx, key, level):
    """Map: one dummy block = one chunk = one vertical level (ndarray)."""
    _path, variable, start = key
    ctx.emit((variable, start[0]),
             (float(level.min()), float(level.mean()), float(level.max())))
    ctx.charge(1e-4, "stats")


def first_reducer(ctx, key, values):
    ctx.emit(key, values[0])


def main():
    env, scidp, pfs = build_world()
    make_simulation_output(pfs)

    job = JobConf(
        name="level-stats",
        mapper=level_stats_mapper,
        reducer=first_reducer,
        # The pfs:// prefix routes this input through SciDP's File
        # Explorer + Data Mapper + per-task PFS Readers.
        input_format=scidp.input_format(variables=["temperature"]),
        input_paths=["pfs:///simulation"],
        n_reducers=2,
    )
    proc = env.process(scidp.run_job(job))
    env.run()
    result = proc.value

    print("SciDP quickstart")
    print(f"  job finished in {result.duration:.3f} simulated seconds")
    print(f"  splits (one per chunk): "
          f"{result.counters.value('job', 'splits')}")
    print(f"  bytes fetched from PFS: "
          f"{result.counters.value('scidp', 'bytes_fetched')}")
    print("  per-level temperature stats (min / mean / max):")
    records = sorted(
        kv for records in result.outputs.values() for kv in records)
    for (variable, z), (lo, mean, hi) in records:
        print(f"    {variable} level {z}: "
              f"{lo:7.2f} / {mean:7.2f} / {hi:7.2f}")


if __name__ == "__main__":
    main()
