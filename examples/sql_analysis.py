"""Parallel data analysis in R style: SQL queries inside map tasks.

The paper's Anlys workload (§IV-D, §V-F): while each map task plots its
level, it also runs SQL over the level's data frame — here through the
rmr2-style session and the sqldf engine. Two analyses are shown:

- ``highlight``: mark the top-10 rainfall points on the image
  (nearly free — Fig. 9's `highlight` case);
- ``top 1%``: select the strongest 1% of points and persist them to
  HDFS (costlier — result volume is proportional to the input).

Run:  python examples/sql_analysis.py
"""

import numpy as np

from repro import costs
from repro.rlang import data_frame, sqldf
from repro.rlang.rmr import keyval
from repro.workloads.solutions import build_world, run_solution


def standalone_sql_demo(world):
    """sqldf over a data frame built from real simulation output."""
    from repro.formats import scinc
    path = world.manifest["files"][0]
    reader = scinc.Reader(world.pfs.open_sync(path))
    qr = reader.get_vara("/QR")[0]  # surface level
    ys, xs = np.meshgrid(np.arange(qr.shape[0]), np.arange(qr.shape[1]),
                         indexing="ij")
    frames = {"rain": data_frame(
        longitude=ys.ravel(), latitude=xs.ravel(),
        value=qr.ravel().astype(np.float64))}

    print("Standalone sqldf over the surface rainfall level:")
    top = sqldf("SELECT longitude, latitude, value FROM rain "
                "ORDER BY value DESC LIMIT 5", frames)
    for row in top.iter_rows():
        print(f"  ({row['longitude']:3d}, {row['latitude']:3d}) "
              f"-> {row['value']:.4f}")
    stats = sqldf("SELECT COUNT(*) AS n, AVG(value) AS mean, "
                  "MAX(value) AS peak FROM rain WHERE value > 0", frames)
    print(f"  wet cells: {stats['n'][0]}, mean {stats['mean'][0]:.4f}, "
          f"peak {stats['peak'][0]:.4f}")


def main():
    world = build_world(n_timesteps=2)
    standalone_sql_demo(world)

    print("\nAnlys workload through SciDP (Fig. 9):")
    times = {}
    for analysis in ("none", "highlight", "top1pct"):
        result = run_solution(world, "scidp", analysis=analysis)
        times[analysis] = result.total_time
        label = {"none": "no analysis", "highlight": "highlight top-10",
                 "top1pct": "store top 1%"}[analysis]
        print(f"  {label:18s}: {result.total_time:.3f} s "
              f"({result.frames} levels)")
    print(f"\n  highlight overhead: "
          f"{(times['highlight'] / times['none'] - 1) * 100:+.1f}% "
          f"(paper: 'almost the same time')")
    print(f"  top-1% overhead:    "
          f"{(times['top1pct'] / times['none'] - 1) * 100:+.1f}% "
          f"(paper: visibly larger — results written to HDFS)")

    print("\nThe rmr2-style interface works directly too:")
    session = world.scidp.rmr_session()

    def wettest(key, level):
        return keyval("wettest-level",
                      (float(np.asarray(level).max()), key[2][0]))

    def pick_max(key, values):
        return keyval(key, max(values))

    proc = world.env.process(session.mapreduce(
        input=f"pfs://{world.nc_dir}",
        map=wettest, reduce=pick_max,
        input_format=world.scidp.input_format(variables=["QR"]),
        name="rmr-wettest"))
    world.env.run()
    result = proc.value
    (key, (peak, z)), = [kv for recs in result.outputs.values()
                         for kv in recs]
    print(f"  {key}: QR peak {peak:.4f} at level {z}")
    costs.reset_scale()


if __name__ == "__main__":
    main()
