"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The environment has no `wheel` package and no network, so PEP 517 editable
installs fail; this file keeps `setup.py develop` working. All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
