"""SciDP reproduction package.

Reimplements the full software stack of *SciDP: Support HPC and Big Data
Applications via Integrated Scientific Data Processing* (IEEE CLUSTER 2018)
in Python: a discrete-event simulated cluster, a Lustre-like parallel file
system, an HDFS, a Hadoop-like MapReduce engine, a netCDF-like scientific
data format, an R-like analysis layer, and SciDP itself — the virtual-block
mapping runtime that lets the MapReduce engine process scientific data on
the PFS directly.

Public entry points:

- :class:`repro.core.SciDP` — the SciDP runtime facade.
- :mod:`repro.workloads.solutions` — SciDP and the four baseline data paths.
- :mod:`repro.bench.harness` — experiment runners for every paper table/figure.
"""

__version__ = "1.0.0"

from repro.sim import Environment

__all__ = ["Environment", "__version__"]
