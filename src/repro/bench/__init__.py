"""Experiment harness: one runner per paper table/figure.

Each ``figN_rows()`` / ``tableN_rows()`` function builds the scaled world,
runs the experiment, and returns structured rows;
:mod:`repro.bench.reporting` prints them next to the paper's reference
values. The ``benchmarks/`` directory wires each runner to pytest-benchmark.
"""

from repro.bench.harness import (
    fig2_rows,
    fig5_table3_rows,
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    table1_rows,
)
from repro.bench.reporting import print_table

__all__ = [
    "fig2_rows",
    "fig5_table3_rows",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_rows",
    "print_table",
    "table1_rows",
]
