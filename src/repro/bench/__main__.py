"""Command-line experiment runner.

    python -m repro.bench                 # list experiments
    python -m repro.bench fig5 fig7       # run selected experiments
    python -m repro.bench all             # run everything (several min)

Each experiment prints its paper-vs-measured table; pass ``--quick`` to
run miniature sizes (sanity, not publication shape). ``--json`` emits
one machine-readable JSON document instead of ASCII tables (the CI
perf-smoke job consumes it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import harness
from repro.bench.reporting import print_table
from repro.obs import TraceSession


def _obs_overhead_rows(**kwargs):
    # lazy: the obs bench is pure recording, no simulation harness
    from repro.bench.obsbench import obs_overhead_rows
    return obs_overhead_rows(**kwargs)


def _simscale_rows(**kwargs):
    # lazy: the engine bench drives bare events, no figure harness
    from repro.bench.simscale import simscale_rows
    return simscale_rows(**kwargs)


def _sparklike_rows(**kwargs):
    # lazy: imports the frozen legacy engine alongside the live one
    from repro.bench.sparkbench import sparklike_rows
    return sparklike_rows(**kwargs)


def _sql_rows(**kwargs):
    # lazy: imports the frozen eager evaluator alongside the planner
    from repro.bench.sqlbench import sql_rows
    return sql_rows(**kwargs)

EXPERIMENTS = {
    "fig2": (harness.fig2_rows, {},
             {"n_records": 2000, "n_lines": 2000, "dfsio_files": 2,
              "dfsio_bytes": 256 * 1024}),
    "table1": (harness.table1_rows, {}, {}),
    "fig5": (harness.fig5_table3_rows, {}, {"sizes": (3, 6)}),
    "fig6": (harness.fig6_rows, {}, {"readers": (1, 2, 4)}),
    "fig7": (harness.fig7_rows, {}, {"n_timesteps": 4}),
    "fig8": (harness.fig8_rows, {}, {"node_counts": (4, 8),
                                     "n_timesteps": 8}),
    "fig9": (harness.fig9_rows, {}, {"sizes": (3,)}),
    "shuffle": (harness.shuffle_overlap_rows, {}, {"n_timesteps": 4}),
    "write": (harness.write_path_rows, {},
              {"n_files": 2, "blocks_per_file": 2}),
    "obs": (_obs_overhead_rows, {}, {"n_events": 50_000, "repeats": 1}),
    "simscale": (_simscale_rows, {},
                 {"n_tasks": 1000, "n_jobs": 4, "repeats": 1}),
    "sparklike": (_sparklike_rows, {},
                  {"n_lines": 400, "iterations": 3}),
    "sql": (_sql_rows, {}, {"shape": (8, 32, 32), "timesteps": 1}),
    "abl-align": (harness.abl_chunk_alignment_rows, {},
                  {"n_timesteps": 3}),
    "abl-gran": (harness.abl_read_granularity_rows, {},
                 {"n_timesteps": 3}),
    "abl-subset": (harness.abl_subsetting_rows, {}, {"n_timesteps": 2}),
    "datapath": (harness.datapath_rows, {},
                 {"n_timesteps": 8, "slots_per_node": 2}),
    "ext-scaleup": (harness.ext_scaleup_rows, {},
                    {"slot_counts": (4, 8), "n_timesteps": 8}),
    "ext-spark": (harness.ext_spark_rows, {}, {"n_timesteps": 3}),
}

#: experiments whose runner accepts ``trace=`` (figure benches)
TRACEABLE = {"fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "shuffle",
             "write"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run SciDP reproduction experiments.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names, or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="miniature sizes (fast sanity run)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="export a Chrome trace (.json) or JSONL "
                             "(.jsonl) of the simulated runs")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print one JSON document with every "
                             "experiment's columns/rows instead of "
                             "ASCII tables")
    args = parser.parse_args(argv)

    if not args.experiments:
        print("Available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    session = TraceSession(args.trace) if args.trace else None
    documents = []
    for name in names:
        runner, full_kwargs, quick_kwargs = EXPERIMENTS[name]
        kwargs = dict(quick_kwargs if args.quick else full_kwargs)
        if session is not None and name in TRACEABLE:
            kwargs["trace"] = session
        started = time.time()
        columns, rows, note = runner(**kwargs)
        if args.as_json:
            documents.append({
                "name": name,
                "columns": list(columns),
                "rows": [list(row) for row in rows],
                "note": note,
                "wall_seconds": round(time.time() - started, 3),
            })
        else:
            print_table(name, columns, rows, note)
            print(f"[{name}: {time.time() - started:.1f}s wall]")
    if args.as_json:
        print(json.dumps({"quick": args.quick,
                          "experiments": documents}, indent=2))
    if session is not None:
        if session.runs:
            session.save()
            if not args.as_json:
                print(f"[trace: wrote {args.trace}]")
        elif not args.as_json:
            print(f"[trace: no traceable experiment ran; "
                  f"nothing written to {args.trace}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
