"""Spawn-safe campaign point functions for the benchmark matrices.

Every function here is a *campaign worker*: a top-level function taking
one state-point dict of plain JSON parameters and returning a JSON
result. Workers are addressed by ``"repro.bench.campaigns:<name>"``
references and re-imported by fresh ``spawn`` processes, so this module
keeps its import cost minimal — the simulation stack is imported lazily
inside each function, only by the processes that actually run points.

Spawn-safety rules (enforced by :mod:`repro.campaign.runner`):

- workers are importable module attributes — no lambdas, closures or
  bound methods;
- state points carry only JSON primitives — never an ``Environment``,
  node or client; each worker builds its own simulated world;
- results are JSON data, written to the point's ``result.json``.
"""

from __future__ import annotations

__all__ = ["simscale_point", "smoke_point", "sparklike_point",
           "sql_point"]


def simscale_point(statepoint: dict) -> dict:
    """One engine's cluster-scale throughput measurement.

    State point: ``engine`` ("legacy"/"live"), ``n_nodes``,
    ``n_tasks``, ``n_jobs``, ``seed``, ``repeats``.
    """
    from repro.bench.simscale import run_engine

    return run_engine(
        statepoint["engine"], n_nodes=statepoint["n_nodes"],
        n_tasks=statepoint["n_tasks"], n_jobs=statepoint["n_jobs"],
        seed=statepoint["seed"], repeats=statepoint["repeats"])


def sparklike_point(statepoint: dict) -> dict:
    """One sparklike engine configuration's iterative-wordcount run.

    State point: ``config`` (a :data:`repro.bench.sparkbench.CONFIGS`
    name), ``n_lines``, ``iterations``.
    """
    from repro.bench.sparkbench import run_config

    return run_config(statepoint["config"],
                      n_lines=statepoint["n_lines"],
                      iterations=statepoint["iterations"])


def sql_point(statepoint: dict) -> dict:
    """One SQL engine configuration's Fig. 9-style pushdown run.

    State point: ``config`` (a :data:`repro.bench.sqlbench.SQL_CONFIGS`
    name), ``shape``, ``timesteps``. The selective threshold is
    recomputed deterministically inside the worker, so it never needs
    to cross the process boundary.
    """
    from repro.bench.sqlbench import run_config

    return run_config(statepoint["config"],
                      shape=tuple(statepoint["shape"]),
                      timesteps=statepoint["timesteps"])


def smoke_point(statepoint: dict) -> dict:
    """One point of the CI smoke sweep: a miniature DES run plus a
    fixed stall.

    State point: ``n_nodes``, ``n_tasks``, ``n_jobs``, ``seed``,
    ``stall_s``. The DES run is real (deterministic events, clock and
    completion-order signature, so serial-vs-parallel equivalence is
    checked on real simulator output); ``stall_s`` then parks the
    worker in ``time.sleep`` to model the external-latency component
    (queue submit, result upload) of a real campaign point. The stall
    dominates the point's wall-clock, which makes the CI overlap gate
    measure what it claims to — that the pool overlaps points — rather
    than the core count of whatever runner CI landed on.
    """
    import time

    from repro.bench.simscale import run_world
    from repro.sim.engine import Environment, Interrupt

    measurements = run_world(
        Environment(), Interrupt, n_nodes=statepoint["n_nodes"],
        n_tasks=statepoint["n_tasks"], n_jobs=statepoint["n_jobs"],
        seed=statepoint["seed"])
    stall = float(statepoint.get("stall_s", 0.0))
    if stall > 0.0:
        time.sleep(stall)
    # wall_seconds/events_per_sec are intentionally dropped: results
    # must be identical between serial and parallel sweeps, and only
    # the deterministic simulator outputs are.
    return {
        "seed": statepoint["seed"],
        "events": measurements["events"],
        "sim_seconds": measurements["sim_seconds"],
        "tasks_completed": measurements["tasks_completed"],
        "signature": measurements["signature"],
    }
