"""Experiment runners — one per paper table/figure, plus ablations.

Every function returns ``(columns, rows, note)`` ready for
:func:`repro.bench.reporting.print_table`. Paper reference values are
embedded in the notes; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro import costs
from repro.cluster import Cluster, DiskSpec, LinkSpec, NodeSpec
from repro.core import SciDP
from repro.core.reader import PFSReader
from repro.formats import scinc
from repro.hdfs import HDFS, PFSConnector
from repro.mapreduce import JobConf, JobRunner
from repro.obs import TraceSession
from repro.pfs import PFS, PFSClient, StripeLayout
from repro.pfs.mpiio import MPIFile
from repro.sim import AllOf, Environment
from repro.workloads.dfsio import run_dfsio_read, run_dfsio_write
from repro.workloads.grep import generate_text, run_grep
from repro.workloads.solutions import (
    SOLUTIONS,
    build_world,
    run_solution,
)
from repro.workloads.terasort import run_terasort, teragen

__all__ = [
    "abl_chunk_alignment_rows",
    "abl_read_granularity_rows",
    "abl_subsetting_rows",
    "datapath_rows",
    "fig2_rows",
    "fig5_table3_rows",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_rows",
    "shuffle_overlap_rows",
    "table1_rows",
    "write_path_rows",
]

MB = 1024.0 * 1024.0

#: Paper sizes (timestamps) and the 1:8 scaled counts we run (same number
#: of levels per paper timestamp ratio; see DESIGN.md §6).
PAPER_SIZES = (96, 192, 384, 768)
SCALED_SIZES = (12, 24, 48, 96)


# --------------------------------------------------------------------------
# Fig. 2 — native HDFS vs the Lustre HDFS connector
# --------------------------------------------------------------------------

#: Fig. 2 data scale: real bytes are 1/FIG2_SCALE of the modelled bytes,
#: with devices slowed to match — so these workloads behave as the
#: multi-hundred-MB runs the paper drives while staying laptop-sized.
FIG2_SCALE = 64


def _fig2_world(scale: float = FIG2_SCALE, replication: int = 1,
                packet_bytes: Optional[int] = None,
                write_parallel_blocks: int = 1,
                connector_write_max_inflight: Optional[int] = None,
                connector_write_chunk: Optional[int] = None):
    """8 Hadoop nodes + Lustre with 8 OSTs, replication 1 (§II-B).

    Stripe size is set to the HDFS block size, replication to one, as the
    paper configures to favour the connector. The write-path bench
    reuses this world with ``replication=3`` (where the replication
    pipeline shape matters) and the write knobs threaded through to the
    HDFS facade / connector.
    """
    costs.set_scale(scale)
    block_size = int(64 * MB / scale)
    env = Environment()
    cluster = Cluster(env)
    node_spec = NodeSpec(
        cpus=8, memory=4 * 1024**3,
        disks=(DiskSpec(bandwidth=120 * MB / scale, seek_latency=0.008),),
        nic=LinkSpec(bandwidth=1.125e9 / scale, latency=0.0001))
    nodes = [cluster.add_node(f"n{i}", node_spec, role="compute")
             for i in range(8)]
    oss_spec = NodeSpec(
        cpus=8, memory=4 * 1024**3,
        disks=tuple(DiskSpec(bandwidth=160 * MB / scale,
                             seek_latency=0.008)
                    for _ in range(4)),
        nic=LinkSpec(bandwidth=1.125e9 / scale, latency=0.0001))
    oss_nodes = [cluster.add_node(f"oss{i}", oss_spec, role="storage")
                 for i in range(2)]
    pfs = PFS(env, cluster.network, oss_nodes[0], oss_nodes,
              default_layout=StripeLayout(
                  stripe_size=block_size,  # §II-B: stripe = block size
                  stripe_count=8))
    hdfs = HDFS(env, cluster.network,
                block_size=block_size, replication=replication,
                packet_bytes=packet_bytes,
                write_parallel_blocks=write_parallel_blocks)
    for node in nodes:
        hdfs.add_datanode(node)
    # The connector gateway streams through HDFS-API-sized buffers well
    # below Lustre's native 1 MB RPCs — the "access pattern preference"
    # mismatch §II-B blames. 512 KB-equivalent requests (each paying a
    # lock round trip and an OST seek) land the measured average at the
    # paper's ~221%.
    connector = PFSConnector(
        pfs, block_size=block_size,
        rpc_size=max(256, int(512 * 1024 / scale)),
        write_max_inflight=connector_write_max_inflight,
        write_chunk=connector_write_chunk)
    return env, cluster, nodes, hdfs, connector


def _run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def fig2_rows(n_records: int = 180_000, n_lines: int = 300_000,
              dfsio_files: int = 8,
              dfsio_bytes: int = int(64 * MB / FIG2_SCALE),
              trace: Optional[TraceSession] = None):
    """Terasort / Grep / TestDFSIO on native HDFS vs the PFS connector.

    Defaults model ~8 GB-class runs at 1/64 scale (~8 MB real input per
    workload, 64 MB-equivalent blocks).
    """
    env, cluster, nodes, hdfs, connector = _fig2_world()
    if trace is not None:
        trace.observe(env, "fig2", nodes=nodes, hdfs=hdfs,
                      network=cluster.network)
    rows = []

    def both(name, runner):
        t_hdfs = runner(hdfs, f"{name}-hdfs", False)
        # The connector deployment is diskless (Seagate's "Diskless
        # Hadoop on Lustre"): map spills also cross to the PFS.
        t_conn = runner(connector, f"{name}-conn", True)
        rows.append((name, t_hdfs, t_conn, t_conn / t_hdfs))

    def terasort_runner(storage, tag, diskless):
        teragen(storage, f"/{tag}/in/part-0", n_records)
        _result, elapsed = _run(env, run_terasort(
            env, nodes, storage, cluster.network, f"/{tag}/in",
            output_path=f"/{tag}/out", diskless_spill=diskless))
        return elapsed

    def grep_runner(storage, tag, diskless):
        generate_text(storage, f"/{tag}/in/a.txt", n_lines)
        (_r, _m), elapsed = _run(env, run_grep(
            env, nodes, storage, cluster.network, f"/{tag}/in",
            output_path=f"/{tag}/out", diskless_spill=diskless))
        return elapsed

    def dfsio_w_runner(storage, tag, _diskless):
        _r, elapsed, _bw = _run(env, run_dfsio_write(
            env, nodes, storage, cluster.network, dfsio_files,
            dfsio_bytes, control_path=f"/{tag}/control"))
        return elapsed

    def dfsio_r_runner(storage, tag, _diskless):
        # read back what the matching write phase produced
        _r, elapsed, _bw = _run(env, run_dfsio_read(
            env, nodes, storage, cluster.network, dfsio_files,
            dfsio_bytes, control_path=f"/{tag}/control-r"))
        return elapsed

    both("terasort", terasort_runner)
    both("grep", grep_runner)
    both("dfsio-write", dfsio_w_runner)
    both("dfsio-read", dfsio_r_runner)

    mean_ratio = math.prod(r[3] for r in rows) ** (1 / len(rows))
    rows.append(("geo-mean", "", "", mean_ratio))
    costs.reset_scale()
    columns = ["workload", "hdfs (s)", "lustre-connector (s)",
               "connector/hdfs"]
    note = ("paper Fig. 2: native HDFS outperforms the Lustre connector "
            "by 221% on average (ratio ~2-3x)")
    return columns, rows, note


# --------------------------------------------------------------------------
# Table I — data path matrix
# --------------------------------------------------------------------------

def table1_rows():
    """Static property of the drivers, verified against a live run by
    tests/workloads/test_solutions.py::test_table1_data_paths."""
    columns = ["solution", "conversion", "data copy", "processing"]
    rows = [
        ("naive", "yes", "sequential", "sequential"),
        ("vanilla-hadoop", "yes", "parallel", "parallel"),
        ("porthadoop", "yes", "no", "parallel"),
        ("scihadoop", "no", "parallel", "parallel"),
        ("scidp", "no", "no", "parallel"),
    ]
    note = "matches paper Table I row for row"
    return columns, rows, note


# --------------------------------------------------------------------------
# Fig. 5 + Table III — total execution time and speedups
# --------------------------------------------------------------------------

def fig5_table3_rows(sizes: Sequence[int] = SCALED_SIZES,
                     solutions: Optional[Sequence[str]] = None,
                     trace: Optional[TraceSession] = None):
    """Total time of every solution at every dataset size, plus SciDP's
    speedup over each (Table III)."""
    solutions = list(solutions or SOLUTIONS)
    totals: dict[tuple[str, int], float] = {}
    for size in sizes:
        world = build_world(n_timesteps=size)
        if trace is not None:
            trace.observe_world(world, f"fig5@{size}")
        for solution in solutions:
            result = run_solution(world, solution)
            totals[(solution, size)] = result.total_time
    costs.reset_scale()

    columns = ["solution"] + [
        f"{size}f (~{size * 8} lvls)" for size in sizes]
    rows = []
    for solution in solutions:
        rows.append([solution] + [totals[(solution, s)] for s in sizes])
    speedups = []
    for solution in solutions:
        if solution == "scidp":
            continue
        speedups.append(
            [f"scidp vs {solution}"]
            + [totals[(solution, s)] / totals[("scidp", s)]
               for s in sizes])
    rows.append(["--- Table III ---"] + [""] * len(sizes))
    rows.extend(speedups)
    note = ("paper Fig. 5/Table III: SciDP beats the baselines by "
            "6.58x (SciHadoop-class) up to 284.63x (naive); sizes are "
            "paper timestamps / 8 at 1:678 per-level scale")
    return columns, rows, note


# --------------------------------------------------------------------------
# Fig. 6 — I/O bandwidth vs number of readers
# --------------------------------------------------------------------------

def _fig6_world(n_nodes: int):
    return build_world(n_timesteps=1, shape=(16, 48, 48),
                       n_nodes=n_nodes, with_text=False)


def fig6_rows(readers: Sequence[int] = (1, 2, 4, 8, 16),
              trace: Optional[TraceSession] = None):
    """NC Ind / NC Coll / MPI Coll / SciDP / SciDP Equal bandwidths.

    Bandwidths are reported at paper-equivalent scale (bytes x S / time).
    """
    rows = []
    for n in readers:
        world = _fig6_world(max(readers))
        if trace is not None:
            trace.observe_world(world, f"fig6:r{n}")
        env = world.env
        scale = costs.get_scale()
        path = world.manifest["files"][0]
        reader0 = scinc.Reader(world.pfs.open_sync(path))
        # Use T (temperature): its ~2.8x deflate ratio matches the file
        # average the paper reports (~3.27x). QR's synthetic sparsity
        # compresses ~4.7x, which would let the raw-credited SciDP Equal
        # line exceed the flat-file ceiling at high reader counts — an
        # artifact of crediting, not of the I/O path.
        var = reader0.variable("/T")
        data_start = reader0.header.data_start
        chunks = var.chunks
        raw_bytes = var.nbytes
        stored_bytes = var.stored_nbytes
        file_bytes = world.pfs.mds.lookup(path).size
        clients = [PFSClient(world.pfs, node)
                   for node in world.nodes[:n]]
        # Contiguous chunk groups per rank (how array codes decompose
        # a variable domain).
        share_n = -(-len(chunks) // n)
        groups = [chunks[r * share_n:(r + 1) * share_n] for r in range(n)]

        # NC independent: each rank reads its chunks one request each.
        def nc_ind(rank, my_chunks, client):
            total_raw = 0
            for rec in my_chunks:
                yield env.process(client.read(
                    path, data_start + rec.offset, rec.nbytes))
                total_raw += rec.raw_nbytes
            yield env.timeout(
                total_raw / costs.DECOMPRESS_BYTES_PER_SEC)

        t0 = env.now
        procs = [
            env.process(nc_ind(r, groups[r], clients[r]))
            for r in range(n)
        ]
        _run(env, _wait_all(env, procs))
        t_ind = env.now - t0

        # NC collective: two-phase collective over each rank's chunk span.
        mpifile = MPIFile.open(clients, path)
        spans = []
        for group in groups:
            if not group:
                spans.append(None)
                continue
            lo = min(data_start + c.offset for c in group)
            hi = max(data_start + c.offset + c.nbytes for c in group)
            spans.append((lo, hi - lo))

        def nc_coll():
            yield env.process(mpifile.read_at_all(spans))
            yield env.timeout(raw_bytes / n / costs.DECOMPRESS_BYTES_PER_SEC)

        t0 = env.now
        _run(env, nc_coll())
        t_coll = env.now - t0

        # MPI collective over the flat file (upper bound).
        share = -(-file_bytes // n)
        flat_spans = [
            (r * share, min(share, file_bytes - r * share))
            for r in range(n)
        ]
        flat_spans = [s if s[1] > 0 else None for s in flat_spans]

        def mpi_coll():
            yield env.process(mpifile.read_at_all(flat_spans))

        t0 = env.now
        _run(env, mpi_coll())
        t_mpi = env.now - t0

        # SciDP: per-task whole-chunk reads through dummy blocks.
        entries = _run(env, world.scidp.map_input(
            world.nc_dir, variables=["T"]))
        blocks = [b for vp, bs in entries
                  if vp.endswith("/T") and path.split("/")[-1] in vp
                  for b in bs]

        def scidp_reader(rank):
            reader = PFSReader(world.scidp.pfs_client(world.nodes[rank]))
            for block in blocks[rank::n]:
                yield env.process(reader.read_block(block.virtual))

        t0 = env.now
        procs = [env.process(scidp_reader(r)) for r in range(n)]
        _run(env, _wait_all(env, procs))
        t_scidp = env.now - t0

        def bw(nbytes, seconds):
            return nbytes * scale / seconds / MB if seconds > 0 else 0.0

        # All PFS-bandwidth series are credited with the bytes moved off
        # the PFS (stored/file bytes); only SciDP Equal uses the raw
        # (post-decompression) payload — "calculated by dividing the
        # compressed data size and raw data size over I/O time" (§V-C).
        rows.append((
            n,
            bw(stored_bytes, t_ind),
            bw(stored_bytes, t_coll),
            bw(file_bytes, t_mpi),
            bw(stored_bytes, t_scidp),
            bw(raw_bytes, t_scidp),
        ))
        costs.reset_scale()

    columns = ["readers", "NC Ind (MB/s)", "NC Coll (MB/s)",
               "MPI Coll (MB/s)", "SciDP (MB/s)", "SciDP Equal (MB/s)"]
    note = ("paper Fig. 6: MPI Coll is the upper bound; SciDP Equal "
            "approaches it as readers increase; NC Ind lowest")
    return columns, rows, note


def _wait_all(env, procs):
    yield AllOf(env, procs)


# --------------------------------------------------------------------------
# Fig. 7 — task time decomposition
# --------------------------------------------------------------------------

def fig7_rows(n_timesteps: int = 48,
              trace: Optional[TraceSession] = None):
    """Per-level Read/Convert/Plot decomposition at 384 paper timestamps
    (48 scaled files).

    Phase durations come from the per-task spans recorded by
    ``TaskContext.phase`` (``JobResult.phase_means`` aggregates them);
    the naive driver has no tasks and reports its loop timings directly.
    """
    rows = []
    for solution in ("naive", "vanilla", "porthadoop", "scidp"):
        world = build_world(n_timesteps=n_timesteps)
        if trace is not None:
            trace.observe_world(world, f"fig7:{solution}")
        result = run_solution(world, solution)
        phases = result.phase_means
        reduce_phases = result.reduce_phase_means
        rows.append((
            solution,
            phases.get("read", 0.0),
            phases.get("convert", 0.0),
            phases.get("plot", 0.0),
            # barrier mode records the copy wait as "shuffle"; the
            # overlapped path as "copy" (naive has no reduce side at all)
            reduce_phases.get("shuffle", reduce_phases.get("copy", 0.0)),
        ))
    costs.reset_scale()
    columns = ["solution", "read (s/level)", "convert (s/level)",
               "plot (s/level)", "shuffle (s/reduce)"]
    note = ("paper Fig. 7: Convert dominates the read.table path; SciDP "
            "reads 0.035 s/level and converts in 'a very short time'; "
            "Plot equal across parallel solutions, naive slightly lower")
    return columns, rows, note


# --------------------------------------------------------------------------
# Fig. 8 — scale-out
# --------------------------------------------------------------------------

def fig8_rows(node_counts: Sequence[int] = (4, 8, 16),
              n_timesteps: int = 24,
              trace: Optional[TraceSession] = None):
    """SciDP Img-only time vs Hadoop cluster size (8 slots per node)."""
    rows = []
    base = None
    for n_nodes in node_counts:
        world = build_world(n_timesteps=n_timesteps, n_nodes=n_nodes)
        if trace is not None:
            trace.observe_world(world, f"fig8:n{n_nodes}")
        result = run_solution(world, "scidp")
        if base is None:
            base = result.map_phase_time
        rows.append((
            n_nodes,
            n_nodes * 8,
            result.map_phase_time,
            base / result.map_phase_time,
        ))
    costs.reset_scale()
    columns = ["nodes", "parallel tasks", "img-plot time (s)",
               "speedup vs smallest"]
    note = ("paper Fig. 8: plotting time halves as nodes double "
            "(near-optimal; tasks are independent)")
    return columns, rows, note


# --------------------------------------------------------------------------
# Fig. 9 — parallel data analysis using SQL
# --------------------------------------------------------------------------

def fig9_rows(sizes: Sequence[int] = (12, 24, 48),
              analyses: Sequence[str] = ("none", "highlight", "top1pct"),
              trace: Optional[TraceSession] = None):
    rows = []
    for size in sizes:
        world = build_world(n_timesteps=size)
        if trace is not None:
            trace.observe_world(world, f"fig9@{size}")
        times = []
        shuffle_mb = 0.0
        for analysis in analyses:
            result = run_solution(world, "scidp", analysis=analysis)
            times.append(result.total_time)
            # the last analysis's shuffle volume shows why top-1% costs
            # more: its result rows ride the shuffle to the reducers
            shuffle_mb = result.counters.get("shuffle", {}) \
                .get("bytes", 0.0) / MB
        rows.append((size,) + tuple(times) + (shuffle_mb,))
    costs.reset_scale()
    columns = ["timesteps (scaled)"] + [
        {"none": "no analysis (s)", "highlight": "highlight (s)",
         "top1pct": "top 1% (s)"}[a] for a in analyses] + \
        [f"{analyses[-1]} shuffle (MB)"]
    note = ("paper Fig. 9: highlight ~= no analysis; top 1% costs more "
            "(result rows shuffled + written to HDFS)")
    return columns, rows, note


# --------------------------------------------------------------------------
# Shuffle — overlapped copy phase, map-side combiner, streaming merge
# --------------------------------------------------------------------------

def _sqlagg_mapper(cell: int = 8):
    """Fig. 9-style SQL aggregation: AVG(value) GROUP BY coarse grid
    cell. Emits (cell, (count, sum)) pairs — an associative fold, so the
    map-side combiner collapses each sorted run to one record per cell.
    """
    from repro.workloads.pipeline import sql_seconds

    def mapper(ctx, key, value):
        ctx.charge(value.nbytes / costs.BINARY_CONVERT_BYTES_PER_SEC,
                   "convert")
        levels = value if value.ndim == 3 else value[None, ...]
        for z in range(levels.shape[0]):
            level = levels[z]
            ctx.charge(sql_seconds(level.size), "analysis")
            # one partial aggregate per grid-row segment: ``cell`` rows
            # land on the same key, so a run carries cell x duplicates
            # for the combiner to fold
            for y in range(level.shape[0]):
                for cx in range(0, level.shape[1], cell):
                    seg = level[y, cx:cx + cell]
                    ctx.emit((y // cell, cx // cell),
                             (int(seg.size), float(seg.sum())))

    return mapper


def _sqlagg_fold(ctx, key, values):
    """Combiner: fold (count, sum) pairs — associative and commutative."""
    n = s = 0
    for count, total in values:
        n += count
        s += total
    ctx.emit(key, (n, s))


def _sqlagg_mean(ctx, key, values):
    n = s = 0
    for count, total in values:
        n += count
        s += total
    ctx.emit(key, s / n)


SHUFFLE_CONFIGS = [
    ("legacy barrier", {}),
    ("overlapped copy",
     dict(shuffle_overlap=True, shuffle_parallel_copies=4)),
    ("overlap + combiner",
     dict(shuffle_overlap=True, shuffle_parallel_copies=4,
          combiner=_sqlagg_fold)),
    ("overlap + combiner + merge x4",
     dict(shuffle_overlap=True, shuffle_parallel_copies=4,
          combiner=_sqlagg_fold, shuffle_merge_factor=4)),
]


def shuffle_overlap_rows(n_timesteps: int = 12,
                         slots_per_node: int = 2,
                         trace: Optional[TraceSession] = None):
    """Overlapped shuffle ablation on the Fig. 9 SQL-aggregation job.

    ``slots_per_node`` is deliberately small so the map wave runs in
    several staggered waves — the regime where launching reducers at the
    first committed map output (instead of at the map barrier) pays off.
    """
    rows = []
    base_time = None
    for label, knobs in SHUFFLE_CONFIGS:
        world = build_world(n_timesteps=n_timesteps, with_text=False)
        if trace is not None:
            trace.observe_world(world, f"shuffle:{label}")
        env = world.env
        job = JobConf(
            name=f"sqlagg-{len(rows)}",
            mapper=_sqlagg_mapper(),
            reducer=_sqlagg_mean,
            input_format=world.scidp.input_format(
                variables=[world.variable]),
            n_reducers=4,
            input_paths=[f"pfs://{world.nc_dir}"],
            output_path=f"/results/sqlagg-{len(rows)}",
            map_slots_per_node=slots_per_node,
            **knobs)
        runner = JobRunner(env, world.nodes, world.hdfs,
                           world.cluster.network, job)
        t0 = env.now
        result = _run(env, runner.run())
        elapsed = env.now - t0
        if base_time is None:
            base_time = elapsed
        counters = result.counters
        combine_in = counters.value("shuffle", "combine_input_records")
        combine_out = counters.value("shuffle", "combine_output_records")
        rows.append((
            label,
            elapsed,
            base_time / elapsed,
            counters.value("shuffle", "bytes") / MB,
            f"{combine_in}/{combine_out}" if combine_in else "-",
            counters.value("shuffle", "merge_passes"),
        ))
        costs.reset_scale()
    columns = ["configuration", "total (s)", "speedup vs legacy",
               "shuffle (MB)", "combine in/out", "merge passes"]
    note = ("overlapped copy starts reducers at the first committed map "
            "output; the combiner folds (count, sum) pairs map-side so "
            "shuffle volume drops; the merge factor bounds in-memory "
            "runs at the cost of spill passes")
    return columns, rows, note


# --------------------------------------------------------------------------
# Write path — packet-pipelined replication, parallel blocks, write-behind
# --------------------------------------------------------------------------

#: (label, storage, hdfs write knobs, JobConf knobs) per configuration.
#: The pfs:// window knob is a pacing bound (≈ legacy time by design);
#: write-behind is where the pfs side gains.
WRITE_CONFIGS = [
    ("legacy store-and-forward", "hdfs", {}, {}),
    ("packet pipeline", "hdfs",
     dict(packet=True), {}),
    ("packet + parallel blocks", "hdfs",
     dict(packet=True, parallel=True), {}),
    ("packet + parallel + write-behind", "hdfs",
     dict(packet=True, parallel=True), dict(write_behind=True)),
    ("legacy stripe pushes", "pfs", {}, {}),
    ("windowed stripe pushes", "pfs",
     dict(windowed=True), {}),
    ("windowed + write-behind", "pfs",
     dict(windowed=True), dict(write_behind=True)),
]


def write_path_rows(n_files: int = 4, blocks_per_file: int = 4,
                    trace: Optional[TraceSession] = None):
    """DFSIO-write through the staged write-path optimisations.

    HDFS runs at replication 3 — the regime where the whole-block
    store-and-forward chain serialises 3x (network + disk) per block and
    the packet pipeline overlaps the hops; ``parallel blocks`` then
    overlaps a file's block pipelines; write-behind overlaps the flush
    with task wind-down. The pfs:// rows drive the same job through the
    Lustre connector: the stripe-push window is a fan-out *bound* (same
    bytes, same unbounded-equal timing at these sizes), so only
    write-behind moves its total.
    """
    block_size = int(64 * MB / FIG2_SCALE)
    bytes_per_file = blocks_per_file * block_size
    # Model 64 packets per block (real HDFS: 64 MB / 64 KB = 1024) —
    # enough to fill the pipeline while keeping DES event counts sane.
    packet_bytes = max(1, block_size // 64)
    rows = []
    base: dict[str, float] = {}
    for label, storage_kind, wknobs, job_knobs in WRITE_CONFIGS:
        env, cluster, nodes, hdfs, connector = _fig2_world(
            replication=3,
            packet_bytes=packet_bytes if wknobs.get("packet") else None,
            write_parallel_blocks=0 if wknobs.get("parallel") else 1,
            connector_write_max_inflight=(
                4 if wknobs.get("windowed") else None))
        storage = hdfs if storage_kind == "hdfs" else connector
        if trace is not None:
            trace.observe(env, f"write:{storage_kind}:{label}",
                          nodes=nodes, hdfs=hdfs, network=cluster.network)
        _result, elapsed, _bw = _run(env, run_dfsio_write(
            env, nodes, storage, cluster.network, n_files, bytes_per_file,
            control_path="/write-bench/control", **job_knobs))
        costs.reset_scale()
        baseline = base.setdefault(storage_kind, elapsed)
        rows.append((label, f"{storage_kind}://", elapsed,
                     baseline / elapsed))
    columns = ["configuration", "storage", "write (s)",
               "speedup vs legacy"]
    note = ("DFSIO-write, replication 3, "
            f"{n_files} files x {blocks_per_file} blocks: the packet "
            "pipeline overlaps replication hops, parallel blocks "
            "overlaps a file's block pipelines, write-behind overlaps "
            "the flush with task wind-down (drain barrier at commit)")
    return columns, rows, note


# --------------------------------------------------------------------------
# Ablations (design choices from §III)
# --------------------------------------------------------------------------

def ext_scaleup_rows(slot_counts: Sequence[int] = (4, 8, 16),
                     n_timesteps: int = 48, n_nodes: int = 8):
    """Scale-up: more task slots per node at a fixed node count.

    §V-E: "Scale-up evaluation shows similar performance as scale-out
    results. Due to the page limit, we do not include them here." —
    this bench supplies the omitted experiment.
    """
    rows = []
    base = None
    for slots in slot_counts:
        world = build_world(n_timesteps=n_timesteps, n_nodes=n_nodes)
        result = run_solution(world, "scidp", slots_per_node=slots)
        if base is None:
            base = result.map_phase_time
        rows.append((
            slots,
            n_nodes * slots,
            result.map_phase_time,
            base / result.map_phase_time,
        ))
    costs.reset_scale()
    columns = ["slots/node", "parallel tasks", "img-plot time (s)",
               "speedup vs smallest"]
    note = ("§V-E (omitted in the paper): scale-up behaves like "
            "scale-out while per-node devices are not saturated")
    return columns, rows, note


def ext_spark_rows(n_timesteps: int = 12):
    """SciDP under a second framework (§VII future work).

    Runs the Img-only plotting workload over the Spark-like engine's
    SciDP source and over the MapReduce engine, same world, same data.
    """
    from repro.sparklike import Context
    from repro.workloads.pipeline import plot_seconds

    world = build_world(n_timesteps=n_timesteps, with_text=False)
    env = world.env

    mr = run_solution(world, "scidp")

    ctx = Context(env, world.nodes, world.hdfs, world.cluster.network,
                  scidp=world.scidp, executor_cores=8,
                  task_startup=0.05)

    def plot_partition(task, records):
        from repro.rlang.plot import image2d
        out = []
        for key, value in records:
            levels = value if value.ndim == 3 else value[None, ...]
            for z in range(levels.shape[0]):
                png = image2d(levels[z], resolution=(48, 48))
                task.charge(plot_seconds(levels[z].size), "plot")
                out.append(((key, z), len(png)))
        return out

    t0 = env.now
    frames = (ctx.scidp_variable(world.nc_dir, variables=["QR"])
              .map_partitions(plot_partition)
              .count())
    spark_time = env.now - t0
    costs.reset_scale()

    # Compare like for like: the MapReduce number is its map (read +
    # plot) phase — the Spark job has no shuffle/reduce/HDFS-write tail.
    columns = ["engine", "frames plotted", "read+plot time (s)"]
    rows = [
        ("mapreduce + SciDP", mr.frames, mr.map_phase_time),
        ("spark-like + SciDP", frames, spark_time),
    ]
    note = ("§VII: the SciDP design is framework-agnostic — the same "
            "dummy-block source drives both engines at comparable cost")
    return columns, rows, note


def abl_chunk_alignment_rows(n_timesteps: int = 12,
                             split_factor: int = 4):
    """Chunk-aligned dummy blocks vs splitting each chunk into
    ``split_factor`` blocks (§III-B's unaligned-access overhead)."""
    world = build_world(n_timesteps=n_timesteps)
    aligned = run_solution(world, "scidp")
    aligned_bytes = aligned.counters["scidp"]["bytes_fetched"]

    world = build_world(n_timesteps=n_timesteps)
    chunk_raw = (world.config.shape[1] * world.config.shape[2]
                 * world.config.chunk_levels * 4)
    unaligned_scidp = SciDP(
        world.env, world.nodes, world.pfs, world.hdfs,
        world.cluster.network, mirror_root="/scidp-unaligned",
        block_bytes=chunk_raw // split_factor)
    world.scidp = unaligned_scidp
    unaligned = run_solution(world, "scidp")
    unaligned_bytes = unaligned.counters["scidp"]["bytes_fetched"]
    costs.reset_scale()

    columns = ["mapping", "total (s)", "stored bytes fetched",
               "fetch amplification"]
    rows = [
        ("chunk-aligned", aligned.total_time, aligned_bytes, 1.0),
        (f"split x{split_factor}", unaligned.total_time,
         unaligned_bytes, unaligned_bytes / aligned_bytes),
    ]
    note = ("§III-B: unaligned blocks re-read whole compressed chunks — "
            "expect ~split_factor x fetch amplification")
    return columns, rows, note


def abl_read_granularity_rows(n_timesteps: int = 12):
    """Whole-block single request vs Hadoop's 64 KB streaming reads.

    The streaming rows pin ``max_inflight=1``: stock Hadoop's
    DFSInputStream issues its 64 KB reads strictly serially, so the
    ablation must not quietly benefit from the pipelined request
    window. A third row re-enables the window over the same chopped
    requests to show how much of the gap it recovers.
    """
    world = build_world(n_timesteps=n_timesteps)
    whole = run_solution(world, "scidp", max_inflight=1)

    granularity = max(1, int(costs.HADOOP_STREAM_READ_BYTES
                             / costs.get_scale()))
    world = build_world(n_timesteps=n_timesteps)
    chopped = run_solution(world, "scidp", granularity=granularity,
                           max_inflight=1)

    world = build_world(n_timesteps=n_timesteps)
    windowed = run_solution(world, "scidp", granularity=granularity,
                            max_inflight=costs.PFS_MAX_INFLIGHT)
    costs.reset_scale()

    columns = ["read strategy", "total (s)", "read (s/level)"]
    rows = [
        ("whole-block single request", whole.total_time,
         whole.phase_means.get("read", 0.0)),
        ("64 KB streaming (Hadoop default)", chopped.total_time,
         chopped.phase_means.get("read", 0.0)),
        (f"64 KB streaming, window x{costs.PFS_MAX_INFLIGHT}",
         windowed.total_time, windowed.phase_means.get("read", 0.0)),
    ]
    note = "§III-A.3: single whole-block I/O maximizes bandwidth"
    return columns, rows, note


def datapath_rows(n_timesteps: int = 24, slots_per_node: int = 2):
    """Data-path pipelining ablation on the Fig. 5 workload.

    ``slots_per_node`` is deliberately small so splits outnumber map
    slots: the double-buffering prefetcher only stages ahead in that
    saturated regime (staging with idle slots around would starve
    them). Four configurations isolate the two overlap mechanisms:
    the bounded in-flight request window (visible on granularity-
    chopped reads, where per-request overheads used to serialise) and
    the map-side block prefetch + read-ahead cache (visible on the
    whole-block path, where the next split's fetch overlaps the
    current task's compute).
    """
    configs = [
        ("whole-block, serial", {"max_inflight": 1}),
        ("whole-block + prefetch + cache",
         {"max_inflight": costs.PFS_MAX_INFLIGHT, "prefetch": True}),
        ("64 KB chopped, serial", {"max_inflight": 1, "chopped": True}),
        (f"64 KB chopped, window x{costs.PFS_MAX_INFLIGHT}",
         {"max_inflight": costs.PFS_MAX_INFLIGHT, "chopped": True}),
    ]
    rows = []
    for label, spec in configs:
        spec = dict(spec)
        world = build_world(n_timesteps=n_timesteps,
                            slots_per_node=slots_per_node)
        if spec.pop("chopped", False):
            granularity = max(1, int(costs.HADOOP_STREAM_READ_BYTES
                                     / costs.get_scale()))
            spec["granularity"] = granularity
        result = run_solution(world, "scidp",
                              slots_per_node=slots_per_node, **spec)
        datapath = result.counters.get("datapath", {})
        rows.append((
            label,
            result.total_time,
            result.map_phase_time,
            result.phase_means.get("read", 0.0),
            datapath.get("cache_hits", "-"),
            datapath.get("prefetch_fills", "-"),
        ))
    costs.reset_scale()

    columns = ["configuration", "total (s)", "map phase (s)",
               "read (s/level)", "cache hits", "prefetch fills"]
    note = ("pipelined data path: the request window overlaps "
            "per-request overheads; prefetch overlaps the next split's "
            "fetch with the current task's compute via the node cache")
    return columns, rows, note


def abl_subsetting_rows(n_timesteps: int = 6):
    """Variable subsetting (QR only) vs mapping and reading all 23."""
    world = build_world(n_timesteps=n_timesteps)
    env = world.env

    def timed_map(variables, root):
        scidp = SciDP(env, world.nodes, world.pfs, world.hdfs,
                      world.cluster.network, mirror_root=root)
        t0 = env.now
        entries = _run(env, scidp.map_input(world.nc_dir,
                                            variables=variables))
        map_time = env.now - t0
        stored = sum(b.length for _vp, bs in entries for b in bs)
        return map_time, stored, len(entries)

    t_subset, bytes_subset, files_subset = timed_map(["QR"], "/s1")
    t_all, bytes_all, files_all = timed_map(None, "/s2")
    costs.reset_scale()

    columns = ["selection", "mapping time (s)", "virtual files",
               "stored bytes mapped"]
    rows = [
        ("QR only", t_subset, files_subset, bytes_subset),
        ("all 23 variables", t_all, files_all, bytes_all),
    ]
    note = ("§IV-B: SciDP reads only selected variables; mapping tables "
            "and I/O shrink ~23x with single-variable subsetting")
    return columns, rows, note
