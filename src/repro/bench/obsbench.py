"""Observability recording overhead: legacy object tracer vs columnar.

The v2 tracer (:class:`repro.obs.trace.Tracer`) records every event as
three floats appended to a chunked numpy-backed column — no per-event
``Span`` object, no per-event dict. This harness drives both recorders
through the same synthetic event stream (a mix typical of a mapreduce
run: nested task/phase spans per track plus utilisation counters) and
reports events/second for each recording mode:

- ``span``       — open/close one span per event through the context
  manager (the instrumented hot path);
- ``counter``    — one counter sample per event;
- ``replay``     — bulk ingest of a pre-computed event stream: the v1
  side replays it through the per-event API (its only API), the v2 side
  uses the columnar batch ingest (``ingest_spans``/``ingest_counters``),
  the path a post-hoc importer or trace merger takes;
- ``span mem``   — resident bytes after recording the span stream
  (tracemalloc), the column that explains the scalar tradeoffs below.

The ``replay`` row is the CI-gated one (columnar must be >= 5x): batch
ingest is where the columnar layout pays off wholesale. The scalar rows
are reported honestly: dropping the per-event ``Span`` object makes the
span path ~2x, while the counter path gives a little throughput back
(the v1 counter is a bare tuple append; v2 pays key interning for the
~5x smaller residency and the vectorized export).
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.obs._legacy import LegacyTracer
from repro.obs.trace import Tracer

__all__ = ["obs_overhead_rows"]


class _Clock:
    """Minimal env stand-in: a ``now`` the driver advances by hand."""

    __slots__ = ("now",)

    def __init__(self):
        self.now = 0.0


def _drive_spans(tracer, clock, n: int, tracks: int = 8) -> None:
    """n nested-free spans round-robined over tracks, clock advancing."""
    names = ("read", "convert", "plot", "spill", "shuffle", "merge",
             "write", "user_io")
    for i in range(n):
        clock.now += 1e-4
        with tracer.span(names[i & 7], cat="task.phase",
                         track=f"node{i % tracks}.slot0"):
            clock.now += 1e-4


def _drive_counters(tracer, clock, n: int) -> None:
    names = ("nic.util", "disk.util", "ost.util", "queue.depth")
    for i in range(n):
        clock.now += 1e-4
        tracer.counter(names[i & 3], float(i & 1023))


def _replay_stream(n: int):
    """A pre-computed span stream: starts/ends arrays plus the same
    stream as Python tuples for the per-event legacy replay."""
    starts = np.arange(n, dtype=np.float64) * 2e-4
    ends = starts + 1e-4
    return starts, ends, list(zip(starts.tolist(), ends.tolist()))


def _legacy_replay(tracer: LegacyTracer, clock, rows) -> None:
    for start, end in rows:
        clock.now = start
        handle = tracer.span("read", cat="task.phase", track="replay")
        clock.now = end
        handle.__exit__(None, None, None)


def _time(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def obs_overhead_rows(n_events: int = 1_000_000, repeats: int = 3):
    """(columns, rows, note) — v1 vs v2 recording throughput.

    Each mode records ``n_events`` events per repeat; the best (fastest)
    repeat is reported, the usual microbenchmark discipline. Also checks
    both recorders saw every event before timing is trusted.
    """
    modes = []

    def best(label, v1_fn, v2_fn):
        v1 = min(v1_fn() for _ in range(repeats))
        v2 = min(v2_fn() for _ in range(repeats))
        modes.append((label, n_events, n_events / v1, n_events / v2,
                      v1 / v2))

    def v1_spans():
        clock = _Clock()
        tracer = LegacyTracer(clock)
        dt = _time(_drive_spans, tracer, clock, n_events)
        assert len(tracer.spans) == n_events
        return dt

    def v2_spans():
        clock = _Clock()
        tracer = Tracer(clock)
        dt = _time(_drive_spans, tracer, clock, n_events)
        assert len(tracer.log.spans) == n_events
        return dt

    def v1_counters():
        clock = _Clock()
        tracer = LegacyTracer(clock)
        dt = _time(_drive_counters, tracer, clock, n_events)
        assert len(tracer.counter_samples) == n_events
        return dt

    def v2_counters():
        clock = _Clock()
        tracer = Tracer(clock)
        dt = _time(_drive_counters, tracer, clock, n_events)
        assert len(tracer.log.counters) == n_events
        return dt

    starts, ends, legacy_rows = _replay_stream(n_events)

    def v1_replay():
        clock = _Clock()
        tracer = LegacyTracer(clock)
        dt = _time(_legacy_replay, tracer, clock, legacy_rows)
        assert len(tracer.spans) == n_events
        return dt

    def v2_replay():
        clock = _Clock()
        tracer = Tracer(clock)
        dt = _time(tracer.log.ingest_spans, starts, ends, "read",
                   "task.phase", "replay")
        assert len(tracer.log.spans) == n_events
        return dt

    best("span", v1_spans, v2_spans)
    best("counter", v1_counters, v2_counters)
    best("replay", v1_replay, v2_replay)

    def resident(factory) -> float:
        clock = _Clock()
        tracemalloc.start()
        tracer = factory(clock)
        _drive_spans(tracer, clock, n_events)
        size, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del tracer
        return size

    v1_mem = resident(LegacyTracer)
    v2_mem = resident(Tracer)
    modes.append(("span mem MB", n_events, v1_mem / 1e6, v2_mem / 1e6,
                  v1_mem / v2_mem))

    columns = ["mode", "events", "v1", "v2", "v2 gain"]
    note = (f"best of {repeats} repeats per mode; span/counter/replay "
            "rows are events/s (replay bulk-ingests a precomputed "
            "stream — v1 has no batch API, so it replays per event; "
            "the columnar win CI gates at >= 5x), span mem is resident "
            "MB after recording the stream")
    return columns, modes, note
