"""Table printing for experiment results (paper-vs-measured)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table"]


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 note: str = "") -> str:
    """Render an aligned ASCII table."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(row[i]) for row in cells))
        if cells else len(columns[i])
        for i in range(len(columns))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def print_table(title: str, columns: Sequence[str],
                rows: Sequence[Sequence[Any]], note: str = "") -> None:
    print()
    print(format_table(title, columns, rows, note))
