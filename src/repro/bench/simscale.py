"""Simulator throughput at cluster scale: frozen legacy engine vs live.

The workload is a 256-node, multi-job synthetic cluster run expressed
purely through the generic engine surface (``event`` / ``timeout`` /
``process`` / ``all_of`` / ``any_of`` / ``interrupt``), so the *same*
driver runs unchanged on :class:`repro.sim._legacy.LegacyEnvironment`
(the frozen pre-PR-7 engine) and the live
:class:`repro.sim.engine.Environment`. Shape, per task:

- claim a per-node slot gate (bounded slots per node, FIFO, URGENT
  grants — the Resource idiom);
- run read / compute / write phases as timeouts with zero-delay
  handoffs between them, the write phase packet-pipelined into four
  commit+ready pairs (the dominant event mix of a mapreduce run);
- release the slot, waking the next waiter.

Every task also registers a *speculative backup* process parked on one
run-wide cancellation gate (the global cancel-token idiom); when all
jobs have drained, the driver reaps the whole speculation pool
youngest-first — the standard preemption order (most recently launched
attempts wasted the least work). That is exactly the access pattern
where the legacy engine's O(n) ``callbacks.remove`` detach goes
quadratic on a wide fan-in: each interrupt scans a thousands-wide
callback list to its tail, while the live engine tombstones the slot in
O(1).

Every run returns an order signature (a rolling digest over the exact
completion sequence and clocks), so the harness asserts the two worlds
popped events identically before any throughput number is trusted.
Event counts are the number of scheduler insertions (identical across
worlds by construction).
"""

from __future__ import annotations

import gc
import random
import time
import zlib
from collections import deque

__all__ = ["build_comparison_doc", "doc_rows", "run_engine",
           "run_world", "simscale_result", "simscale_rows"]

#: paper-scale defaults: 256 nodes, 10k tasks across 10 jobs
DEFAULT_NODES = 256
DEFAULT_TASKS = 10_000
DEFAULT_JOBS = 10


class _SlotGate:
    """Minimal counted-slot gate built on bare events (engine-agnostic)."""

    __slots__ = ("env", "free", "waiters")

    def __init__(self, env, capacity: int):
        self.env = env
        self.free = capacity
        self.waiters = deque()

    def acquire(self):
        ev = self.env.event()
        if self.free > 0:
            self.free -= 1
            ev.succeed(priority=0)  # URGENT, like Resource grants
        else:
            self.waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.waiters:
            self.waiters.popleft().succeed(priority=0)
        else:
            self.free += 1


def _make_plan(n_nodes: int, n_tasks: int, n_jobs: int, seed: int):
    """Precompute every random choice so both worlds see one schedule."""
    rng = random.Random(seed)
    per_job = n_tasks // n_jobs
    jobs = []
    for j in range(n_jobs):
        tasks = []
        for _t in range(per_job):
            tasks.append((
                rng.randrange(n_nodes),          # placement
                rng.uniform(0.5, 2.0),           # read phase (s)
                rng.uniform(0.2, 1.0),           # compute phase
                rng.uniform(0.1, 0.5),           # write phase
            ))
        backups = list(range(per_job))           # every task backs up
        rng.shuffle(backups)                     # registration order
        # submissions staggered well inside one job's runtime, so the
        # whole job mix runs concurrently (multi-tenant shape)
        jobs.append((j * 0.5, tasks, backups))
    return jobs


def run_world(env, interrupt_cls, n_nodes: int = DEFAULT_NODES,
              n_tasks: int = DEFAULT_TASKS, n_jobs: int = DEFAULT_JOBS,
              slots_per_node: int = 4, seed: int = 2024) -> dict:
    """Drive the synthetic cluster run on ``env``; returns measurements.

    ``interrupt_cls`` is the Interrupt exception type of the world's
    engine (shared between legacy and live, but taken as a parameter so
    the driver stays engine-agnostic).
    """
    plan = _make_plan(n_nodes, n_tasks, n_jobs, seed)
    gates = [_SlotGate(env, slots_per_node) for _ in range(n_nodes)]
    sig = zlib.crc32(b"simscale")
    completions = 0

    def task(node_idx, read_s, compute_s, write_s):
        yield gates[node_idx].acquire()
        yield env.timeout(read_s)
        yield env.timeout(0.0)           # handoff: read buffer -> compute
        yield env.timeout(compute_s)
        yield env.timeout(0.0)           # handoff: compute -> writer
        for _ in range(4):               # packet-pipelined write commits
            yield env.timeout(write_s / 4)
            yield env.timeout(0.0)       # per-packet ready handoff
        gates[node_idx].release()

    def backup(spec_gate):
        try:
            yield spec_gate
        except interrupt_cls:
            yield env.timeout(0.0)       # cancelled: unwind bookkeeping

    # one run-wide cancellation gate: every speculative backup parks on
    # it, so its callback list is as wide as the whole speculation pool
    spec_gate = env.event()
    spec_pool: list = []  # backup processes in launch order

    def job(submit_at, tasks, backup_order):
        yield env.timeout(submit_at)
        procs = [env.process(task(*spec)) for spec in tasks]
        for _i in backup_order:
            spec_pool.append(env.process(backup(spec_gate)))
        yield env.all_of(procs)
        nonlocal completions, sig
        completions += len(procs)
        sig = zlib.crc32(repr(env.now).encode(), sig)

    def driver():
        yield env.all_of([env.process(job(*spec)) for spec in plan])
        # quiescence: reap the whole speculation pool youngest-first
        # (preemption order — the youngest attempt wasted the least work)
        for proc in reversed(spec_pool):
            if proc.is_alive:
                proc.interrupt("run drained")

    env.process(driver())
    # time the event loop alone: collector pauses would otherwise land
    # on whichever engine happens to cross a GC threshold mid-run
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        env.run()
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    n_events = env._seq  # scheduler insertions; identical across worlds
    return {
        "wall_seconds": wall,
        "sim_seconds": env.now,
        "events": n_events,
        "events_per_sec": n_events / wall if wall > 0 else float("inf"),
        "tasks_completed": completions,
        "signature": sig,
    }


def _best_of(factory, repeats: int) -> dict:
    best = None
    for _ in range(repeats):
        result = factory()
        if best is None or result["wall_seconds"] < best["wall_seconds"]:
            best = result
    return best


def run_engine(engine: str, n_nodes: int = DEFAULT_NODES,
               n_tasks: int = DEFAULT_TASKS, n_jobs: int = DEFAULT_JOBS,
               seed: int = 2024, repeats: int = 2) -> dict:
    """Best-of-``repeats`` measurements for one engine by name.

    ``engine`` is ``"legacy"`` (the frozen pre-PR-7 engine) or
    ``"live"``. Top-level and string-addressed so a campaign worker
    process can run a single engine under spawn; the returned dict is
    pure JSON data (the order signature included, so an aggregation
    step can still assert the twin worlds popped events identically).
    """
    from repro.sim._legacy import LegacyEnvironment
    from repro.sim.engine import Environment, Interrupt

    if engine not in ("legacy", "live"):
        raise ValueError(
            f"unknown simscale engine {engine!r}; have legacy, live")
    env_cls = LegacyEnvironment if engine == "legacy" else Environment
    return _best_of(
        lambda: run_world(env_cls(), Interrupt, n_nodes=n_nodes,
                          n_tasks=n_tasks, n_jobs=n_jobs, seed=seed),
        repeats)


def build_comparison_doc(legacy: dict, live: dict, *, n_nodes: int,
                         n_tasks: int, n_jobs: int, seed: int,
                         repeats: int) -> dict:
    """Fold the two engines' measurements (as returned by
    :func:`run_engine`) into the BENCH_simscale comparison document.
    Shared by :func:`simscale_result` and the campaign aggregation.

    Raises if the two worlds disagree on final clock, event count, task
    completions, or the completion-order signature — a throughput number
    from divergent simulations would be meaningless.
    """
    for key in ("sim_seconds", "events", "tasks_completed", "signature"):
        if legacy[key] != live[key]:
            raise AssertionError(
                f"twin worlds diverged on {key}: "
                f"legacy={legacy[key]!r} live={live[key]!r}")

    return {
        "n_nodes": n_nodes,
        "n_tasks": n_tasks,
        "n_jobs": n_jobs,
        "seed": seed,
        "repeats": repeats,
        "identical_order": True,
        "sim_seconds": live["sim_seconds"],
        "events": live["events"],
        "legacy": {k: legacy[k] for k in
                   ("wall_seconds", "events_per_sec")},
        "engine": {k: live[k] for k in
                   ("wall_seconds", "events_per_sec")},
        "speedup": legacy["wall_seconds"] / live["wall_seconds"],
    }


def simscale_result(n_nodes: int = DEFAULT_NODES,
                    n_tasks: int = DEFAULT_TASKS,
                    n_jobs: int = DEFAULT_JOBS,
                    seed: int = 2024, repeats: int = 2) -> dict:
    """Run both worlds and return the comparison document."""
    kwargs = dict(n_nodes=n_nodes, n_tasks=n_tasks, n_jobs=n_jobs,
                  seed=seed, repeats=repeats)
    legacy = run_engine("legacy", **kwargs)
    live = run_engine("live", **kwargs)
    return build_comparison_doc(legacy, live, **kwargs)


def doc_rows(doc: dict):
    """(columns, rows, note) for a comparison document — shared by the
    CLI below and the campaign aggregation table."""
    columns = ["engine", "events", "wall s", "events/s", "speedup"]
    rows = [
        ("legacy", doc["events"],
         round(doc["legacy"]["wall_seconds"], 3),
         round(doc["legacy"]["events_per_sec"]),
         1.0),
        ("live", doc["events"],
         round(doc["engine"]["wall_seconds"], 3),
         round(doc["engine"]["events_per_sec"]),
         round(doc["speedup"], 2)),
    ]
    note = (f"{doc['n_nodes']}-node / {doc['n_tasks']}-task / "
            f"{doc['n_jobs']}-job synthetic "
            f"cluster run (slot gates, 3-phase tasks, speculative-backup "
            f"cancellation); best of {doc['repeats']} repeats per engine; "
            f"event order verified identical across worlds "
            f"(sim clock {doc['sim_seconds']:.3f}s)")
    return columns, rows, note


def simscale_rows(n_nodes: int = DEFAULT_NODES,
                  n_tasks: int = DEFAULT_TASKS,
                  n_jobs: int = DEFAULT_JOBS,
                  seed: int = 2024, repeats: int = 2):
    """(columns, rows, note) — the repro.bench CLI surface."""
    doc = simscale_result(n_nodes=n_nodes, n_tasks=n_tasks,
                          n_jobs=n_jobs, seed=seed, repeats=repeats)
    return doc_rows(doc)
