"""Engine-vs-engine: the lazy DAG sparklike engine against the frozen
v1 eager engine on an iterative wordcount — the BENCH_sparklike
trajectory.

The workload is the iterative pattern the lazy engine was built for: a
text corpus on HDFS feeds a three-operator narrow chain, and the job
re-aggregates it over several iterations (think: a fixpoint loop over
the same parsed input). The eager engine re-reads and re-parses the
corpus every iteration; the lazy engine with ``fusion=True`` collapses
the narrow chain into one per-partition pass, and with ``.cache()`` the
parsed records are served from executor memory after iteration one.

All timings are *simulated* seconds, so the comparison is deterministic
— CI gates fused+cached at >= 1.5x over the eager baseline without
wall-clock noise. Results land in ``bench_results/BENCH_sparklike.json``
next to BENCH_shuffle/BENCH_write/BENCH_obs/BENCH_simscale.
"""

from __future__ import annotations

WORDS = ("alpha", "beta", "gamma", "delta", "epsilon",
         "zeta", "eta", "theta")

#: the ISSUE-8 trajectory gate
MIN_SPEEDUP = 1.5


def _build_world(n_nodes: int = 4, n_lines: int = 400):
    from repro.cluster import Cluster
    from repro.cluster.spec import DiskSpec, LinkSpec, NodeSpec
    from repro.hdfs import HDFS
    from repro.sim import Environment

    spec = NodeSpec(
        cpus=8, memory=10**9,
        disks=(DiskSpec(bandwidth=10**6, seek_latency=0.001),),
        nic=LinkSpec(bandwidth=10**7, latency=0.0001))
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", spec, role="compute")
             for i in range(n_nodes)]
    hdfs = HDFS(env, cluster.network, block_size=1024, replication=1)
    for node in nodes:
        hdfs.add_datanode(node)
    lines = []
    for i in range(n_lines):
        lines.append(" ".join(
            WORDS[(i + j) % len(WORDS)] for j in range(4)))
    payload = ("\n".join(lines) + "\n").encode()
    hdfs.store_file_sync("/corpus/part0.txt", payload)
    return env, nodes, hdfs, cluster.network


def _run_iterative(ctx, iterations: int, cached: bool):
    """K rounds of aggregation over the parsed corpus, then one final
    wordcount. Returns ``(timed_simulated_seconds, final_counts)``.

    The timed loop is the iterative pattern: each round re-aggregates
    the same parsed input. Eager execution re-reads and re-parses the
    corpus from HDFS every round; a cached lazy run parses once."""
    parsed = (ctx.text_file("/corpus")
              .map(lambda line: line.decode())
              .flat_map(lambda line: line.split())
              .map(lambda word: (word, 1)))
    if cached:
        parsed = parsed.cache()
    t0 = ctx.env.now
    total = 0
    for _round in range(iterations):
        total += parsed.count()
    seconds = ctx.env.now - t0
    # Untimed correctness check: every engine must agree on the counts.
    counts = dict(parsed.reduce_by_key(lambda a, b: a + b).collect())
    counts["__total__"] = total
    return seconds, counts


def sparklike_result(n_lines: int = 2000, iterations: int = 5) -> dict:
    """Run every engine configuration; returns the full comparison doc."""
    from repro.sparklike import Context
    from repro.sparklike._legacy import LegacyContext

    # Same knobs for every config: parsing cost is real relative to the
    # per-task floor, so laziness/fusion/caching — not startup noise —
    # decide the comparison.
    knobs = {"record_cost": 1e-4, "task_startup": 0.002}
    configs = [
        ("legacy-eager", LegacyContext, {}, False),
        ("lazy", Context, {}, False),
        ("lazy+fusion", Context, {"fusion": True}, False),
        ("lazy+cache", Context, {}, True),
        ("lazy+fusion+cache", Context, {"fusion": True}, True),
    ]
    doc: dict = {"experiment": "sparklike", "n_lines": n_lines,
                 "iterations": iterations, "configs": {}}
    reference = None
    for name, engine, ctx_kw, cached in configs:
        env, nodes, hdfs, network = _build_world(n_lines=n_lines)
        ctx = engine(env, nodes, hdfs, network, **knobs, **ctx_kw)
        seconds, counts = _run_iterative(ctx, iterations, cached)
        if reference is None:
            reference = counts
        doc["configs"][name] = {
            "sim_seconds": seconds,
            "tasks": ctx.metrics["tasks"],
            "stages": ctx.metrics["stages"],
            "cache_hits": ctx.metrics.get("cache_hits", 0),
            "identical_results": counts == reference,
        }
    baseline = doc["configs"]["legacy-eager"]["sim_seconds"]
    for entry in doc["configs"].values():
        entry["speedup"] = baseline / entry["sim_seconds"]
    doc["speedup"] = doc["configs"]["lazy+fusion+cache"]["speedup"]
    doc["identical_results"] = all(
        entry["identical_results"] for entry in doc["configs"].values())
    return doc


def sparklike_rows(n_lines: int = 2000, iterations: int = 5):
    """Table shape for ``python -m repro.bench sparklike``."""
    doc = sparklike_result(n_lines=n_lines, iterations=iterations)
    columns = ["engine config", "sim seconds", "tasks", "cache hits",
               "speedup vs eager"]
    rows = [
        (name, round(entry["sim_seconds"], 4), entry["tasks"],
         entry["cache_hits"], round(entry["speedup"], 2))
        for name, entry in doc["configs"].items()
    ]
    note = (f"iterative wordcount, {iterations} rounds over "
            f"{doc['n_lines']} lines; identical results across engines: "
            f"{doc['identical_results']}; simulated time, deterministic")
    return columns, rows, note
