"""Engine-vs-engine: the lazy DAG sparklike engine against the frozen
v1 eager engine on an iterative wordcount — the BENCH_sparklike
trajectory.

The workload is the iterative pattern the lazy engine was built for: a
text corpus on HDFS feeds a three-operator narrow chain, and the job
re-aggregates it over several iterations (think: a fixpoint loop over
the same parsed input). The eager engine re-reads and re-parses the
corpus every iteration; the lazy engine with ``fusion=True`` collapses
the narrow chain into one per-partition pass, and with ``.cache()`` the
parsed records are served from executor memory after iteration one.

All timings are *simulated* seconds, so the comparison is deterministic
— CI gates fused+cached at >= 1.5x over the eager baseline without
wall-clock noise. Results land in ``bench_results/BENCH_sparklike.json``
next to BENCH_shuffle/BENCH_write/BENCH_obs/BENCH_simscale.
"""

from __future__ import annotations

WORDS = ("alpha", "beta", "gamma", "delta", "epsilon",
         "zeta", "eta", "theta")

#: the ISSUE-8 trajectory gate
MIN_SPEEDUP = 1.5

#: engine configurations: name -> (engine kind, context kwargs, cached)
#: — plain data so a campaign state point can name a config by string
CONFIGS = {
    "legacy-eager": ("legacy", {}, False),
    "lazy": ("lazy", {}, False),
    "lazy+fusion": ("lazy", {"fusion": True}, False),
    "lazy+cache": ("lazy", {}, True),
    "lazy+fusion+cache": ("lazy", {"fusion": True}, True),
}


def _build_world(n_nodes: int = 4, n_lines: int = 400):
    from repro.bench.worlds import build_hdfs_world

    env, nodes, hdfs, network = build_hdfs_world(n_nodes)
    lines = []
    for i in range(n_lines):
        lines.append(" ".join(
            WORDS[(i + j) % len(WORDS)] for j in range(4)))
    payload = ("\n".join(lines) + "\n").encode()
    hdfs.store_file_sync("/corpus/part0.txt", payload)
    return env, nodes, hdfs, network


def _run_iterative(ctx, iterations: int, cached: bool):
    """K rounds of aggregation over the parsed corpus, then one final
    wordcount. Returns ``(timed_simulated_seconds, final_counts)``.

    The timed loop is the iterative pattern: each round re-aggregates
    the same parsed input. Eager execution re-reads and re-parses the
    corpus from HDFS every round; a cached lazy run parses once."""
    parsed = (ctx.text_file("/corpus")
              .map(lambda line: line.decode())
              .flat_map(lambda line: line.split())
              .map(lambda word: (word, 1)))
    if cached:
        parsed = parsed.cache()
    t0 = ctx.env.now
    total = 0
    for _round in range(iterations):
        total += parsed.count()
    seconds = ctx.env.now - t0
    # Untimed correctness check: every engine must agree on the counts.
    counts = dict(parsed.reduce_by_key(lambda a, b: a + b).collect())
    counts["__total__"] = total
    return seconds, counts


def run_config(name: str, n_lines: int = 2000,
               iterations: int = 5) -> dict:
    """Run one named engine configuration in a fresh world.

    Top-level and addressed by plain strings, so a campaign worker
    process can execute a single configuration under spawn. The
    returned dict is pure JSON data (the word counts included, for
    cross-configuration equality checks).
    """
    from repro.sparklike import Context
    from repro.sparklike._legacy import LegacyContext

    try:
        engine_kind, ctx_kw, cached = CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown sparklike config {name!r}; have "
            f"{sorted(CONFIGS)}") from None
    engine = LegacyContext if engine_kind == "legacy" else Context
    # Same knobs for every config: parsing cost is real relative to the
    # per-task floor, so laziness/fusion/caching — not startup noise —
    # decide the comparison.
    knobs = {"record_cost": 1e-4, "task_startup": 0.002}
    env, nodes, hdfs, network = _build_world(n_lines=n_lines)
    ctx = engine(env, nodes, hdfs, network, **knobs, **ctx_kw)
    seconds, counts = _run_iterative(ctx, iterations, cached)
    return {
        "sim_seconds": seconds,
        "tasks": ctx.metrics["tasks"],
        "stages": ctx.metrics["stages"],
        "cache_hits": ctx.metrics.get("cache_hits", 0),
        "counts": counts,
    }


def build_comparison_doc(entries: dict) -> dict:
    """Fold per-config entries (as returned by :func:`run_config`) into
    the BENCH_sparklike comparison document. Shared by the in-process
    bench below and the campaign aggregation, so both produce the same
    shape."""
    doc: dict = {"experiment": "sparklike", "configs": {}}
    reference = None
    for name in CONFIGS:
        entry = entries[name]
        counts = entry["counts"]
        if reference is None:
            reference = counts
        doc["configs"][name] = {
            "sim_seconds": entry["sim_seconds"],
            "tasks": entry["tasks"],
            "stages": entry["stages"],
            "cache_hits": entry["cache_hits"],
            "identical_results": counts == reference,
        }
    baseline = doc["configs"]["legacy-eager"]["sim_seconds"]
    for entry in doc["configs"].values():
        entry["speedup"] = baseline / entry["sim_seconds"]
    doc["speedup"] = doc["configs"]["lazy+fusion+cache"]["speedup"]
    doc["identical_results"] = all(
        entry["identical_results"] for entry in doc["configs"].values())
    return doc


def sparklike_result(n_lines: int = 2000, iterations: int = 5) -> dict:
    """Run every engine configuration; returns the full comparison doc."""
    entries = {name: run_config(name, n_lines=n_lines,
                                iterations=iterations)
               for name in CONFIGS}
    folded = build_comparison_doc(entries)
    doc: dict = {"experiment": "sparklike", "n_lines": n_lines,
                 "iterations": iterations}
    doc.update((k, v) for k, v in folded.items() if k != "experiment")
    return doc


def doc_rows(doc: dict):
    """(columns, rows, note) for a comparison document — shared by the
    CLI below and the campaign aggregation table."""
    columns = ["engine config", "sim seconds", "tasks", "cache hits",
               "speedup vs eager"]
    rows = [
        (name, round(entry["sim_seconds"], 4), entry["tasks"],
         entry["cache_hits"], round(entry["speedup"], 2))
        for name, entry in doc["configs"].items()
    ]
    note = (f"iterative wordcount, {doc['iterations']} rounds over "
            f"{doc['n_lines']} lines; identical results across engines: "
            f"{doc['identical_results']}; simulated time, deterministic")
    return columns, rows, note


def sparklike_rows(n_lines: int = 2000, iterations: int = 5):
    """Table shape for ``python -m repro.bench sparklike``."""
    doc = sparklike_result(n_lines=n_lines, iterations=iterations)
    return doc_rows(doc)
