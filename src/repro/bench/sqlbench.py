"""SQL pushdown vs the frozen eager evaluator on NU-WRF scinc data —
the BENCH_sql trajectory (ISSUE 9).

The workload is the paper's Fig. 9 shape: a selective rain query over
synthetic NU-WRF timesteps on the PFS (``WHERE QR > t`` with ``t`` just
under the global maximum) plus a per-level aggregate. Three engine
configurations run the same queries over identical data:

- ``legacy-eager``: the frozen :func:`repro.rlang._legacy.legacy_sqldf`
  over fully materialized tables — every chunk of every variable moves.
- ``planner``: the logical planner with pushdown off — the timing twin
  of the eager path (same reads, same order; CI pins the delta at 1e-9).
- ``planner+pushdown``: projection pushdown drops the 22 unreferenced
  variables and zone maps prune chunks the predicate cannot match, so
  only a sliver of the file's bytes leave the PFS.

All timings are *simulated* seconds, so the comparison is deterministic
— CI gates identical result frames, the 1e-9 twin delta, and a >= 10x
bytes-scanned reduction for the pushdown config. Results land in
``bench_results/BENCH_sql.json``.
"""

from __future__ import annotations

#: the ISSUE-9 trajectory gates
MIN_BYTES_REDUCTION = 10.0
TWIN_TOLERANCE = 1e-9


def _nuwrf_config(shape=(8, 48, 48), timesteps: int = 2):
    from repro.workloads.nuwrf import NUWRFConfig

    return NUWRFConfig(shape=shape, timesteps=timesteps,
                       chunk_stats=True)


def selective_threshold(config) -> float:
    """A QR threshold between the largest and second-largest per-chunk
    maxima across all timesteps: exactly one z-level chunk in one file
    can match, the zone-map pruner's best case (Fig. 9's "only the rainy
    region")."""
    from repro.workloads.nuwrf import synthesize_timestep

    maxima = []
    for step in range(config.timesteps):
        ds = synthesize_timestep(config, step)
        qr = next(var for path, var in ds.all_variables()
                  if path.rsplit("/", 1)[-1] == "QR").data
        for z in range(qr.shape[0]):
            maxima.append(float(qr[z].max()))
    top = sorted(maxima, reverse=True)
    return (top[0] + top[1]) / 2.0


def build_sql_world(config=None, n_nodes: int = 2):
    """A PFS-backed world with zone-mapped NU-WRF files stored.

    Returns ``(env, nodes, scidp, manifest)``; scinc tables are at
    ``pfs://nuwrf/<file>``. Shared by the bench and the session tests.
    """
    from repro.bench.worlds import build_scidp_world
    from repro.workloads.nuwrf import generate_nuwrf

    config = config or _nuwrf_config()
    env, nodes, scidp = build_scidp_world(n_nodes)
    manifest = generate_nuwrf(scidp.pfs, config)
    return env, nodes, scidp, manifest


def _queries(manifest, threshold: float) -> list[str]:
    first = manifest["files"][0].rsplit("/", 1)[-1]
    return [
        # the Fig. 9 selective scan: where is it raining hard?
        "SELECT altitude, longitude, latitude, QR FROM t0 "
        f"WHERE QR > {threshold:.9f}",
        # per-level rain profile: aggregate over two referenced columns
        "SELECT altitude, AVG(QR) AS qr_mean FROM t0 "
        "GROUP BY altitude ORDER BY altitude",
    ], first


#: engine configurations: name -> (engine, pushdown) — plain data so a
#: campaign state point can name a config by string
SQL_CONFIGS = {
    "legacy-eager": ("legacy", False),
    "planner": ("planner", False),
    "planner+pushdown": ("planner", True),
}


def serialize_frames(frames) -> list[dict]:
    """JSON form of result DataFrames (column order preserved), so
    configurations run in different worker processes can be compared."""
    return [{"names": frame.names, "columns": frame.to_dict()}
            for frame in frames]


def run_config(name: str, shape=(8, 48, 48), timesteps: int = 2,
               threshold: float | None = None) -> dict:
    """Run one named engine configuration in a fresh world.

    Top-level and addressed by plain strings, so a campaign worker
    process can execute a single configuration under spawn. Returns
    pure JSON data: the scan accounting entry plus the serialized
    result frames (``threshold`` is recomputed deterministically when
    not given).
    """
    try:
        engine, pushdown = SQL_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown sql config {name!r}; have "
            f"{sorted(SQL_CONFIGS)}") from None
    config = _nuwrf_config(shape=tuple(shape), timesteps=timesteps)
    if threshold is None:
        threshold = selective_threshold(config)
    entry, results = _run_config(engine, pushdown, config, threshold)
    return {"entry": entry, "results": serialize_frames(results),
            "threshold": threshold}


def _run_config(engine: str, pushdown: bool, config, threshold: float):
    from repro.rlang.session import SQLSession

    env, nodes, scidp, manifest = build_sql_world(config)
    session = SQLSession(env, scidp.storage, nodes[0],
                         pushdown=pushdown, engine=engine)
    for i, path in enumerate(manifest["files"]):
        session.register_scinc(f"t{i}", f"pfs://{path.lstrip('/')}")
    queries, _first = _queries(manifest, threshold)
    t0 = env.now
    results = []
    scans = []
    for sql in queries:
        proc = env.process(session.query(sql))
        env.run()
        results.append(proc.value)
        scans.extend(session.last_scan_info)
    seconds = env.now - t0
    bytes_scanned = sum(info.bytes_read for info in scans)
    bytes_skipped = sum(info.bytes_skipped for info in scans)
    return {
        "sim_seconds": seconds,
        "bytes_scanned": bytes_scanned,
        "bytes_skipped": bytes_skipped,
        "chunks_read": sum(info.chunks_read for info in scans),
        "chunks_pruned": sum(info.chunks_pruned for info in scans),
        "variables_pruned": sum(info.variables_pruned for info in scans),
    }, results


def build_comparison_doc(entries: dict, shape, timesteps: int) -> dict:
    """Fold per-config entries (as returned by :func:`run_config`) into
    the BENCH_sql comparison document. Shared by the in-process bench
    below and the campaign aggregation, so both produce the same
    shape."""
    doc: dict = {"experiment": "sql_pushdown",
                 "shape": list(shape), "timesteps": timesteps,
                 "threshold": entries["legacy-eager"]["threshold"],
                 "configs": {}}
    reference = None
    for name in SQL_CONFIGS:
        results = entries[name]["results"]
        if reference is None:
            reference = results
        entry = dict(entries[name]["entry"])
        entry["identical_results"] = results == reference
        doc["configs"][name] = entry
    eager = doc["configs"]["legacy-eager"]
    planner = doc["configs"]["planner"]
    pushed = doc["configs"]["planner+pushdown"]
    doc["twin_delta"] = abs(
        eager["sim_seconds"] - planner["sim_seconds"])
    doc["bytes_reduction"] = (
        eager["bytes_scanned"] / pushed["bytes_scanned"]
        if pushed["bytes_scanned"] else float("inf"))
    doc["speedup"] = (eager["sim_seconds"] / pushed["sim_seconds"]
                      if pushed["sim_seconds"] else float("inf"))
    doc["identical_results"] = all(
        entry["identical_results"] for entry in doc["configs"].values())
    return doc


def sql_pushdown_result(shape=(8, 48, 48), timesteps: int = 2) -> dict:
    """Run every engine configuration; returns the full comparison doc."""
    config = _nuwrf_config(shape=shape, timesteps=timesteps)
    threshold = selective_threshold(config)
    entries = {name: run_config(name, shape=shape, timesteps=timesteps,
                                threshold=threshold)
               for name in SQL_CONFIGS}
    return build_comparison_doc(entries, shape, timesteps)


def doc_rows(doc: dict):
    """(columns, rows, note) for a comparison document — shared by the
    CLI below and the campaign aggregation table."""
    columns = ["engine config", "sim seconds", "MB scanned",
               "chunks read", "chunks pruned", "speedup vs eager"]
    eager = doc["configs"]["legacy-eager"]["sim_seconds"]
    rows = [
        (name, round(entry["sim_seconds"], 5),
         round(entry["bytes_scanned"] / 1e6, 3),
         entry["chunks_read"], entry["chunks_pruned"],
         round(eager / entry["sim_seconds"], 2))
        for name, entry in doc["configs"].items()
    ]
    note = (f"Fig. 9-style selective QR scan over {doc['timesteps']} "
            f"NU-WRF "
            f"timesteps; bytes reduction {doc['bytes_reduction']:.1f}x, "
            f"legacy-vs-planner twin delta {doc['twin_delta']:.2e}s, "
            f"identical results: {doc['identical_results']}; "
            f"simulated time, deterministic")
    return columns, rows, note


def sql_rows(shape=(8, 48, 48), timesteps: int = 2):
    """Table shape for ``python -m repro.bench sql``."""
    doc = sql_pushdown_result(shape=shape, timesteps=timesteps)
    return doc_rows(doc)


__all__ = ["MIN_BYTES_REDUCTION", "SQL_CONFIGS", "TWIN_TOLERANCE",
           "build_comparison_doc", "build_sql_world", "doc_rows",
           "run_config", "selective_threshold", "serialize_frames",
           "sql_pushdown_result", "sql_rows"]
