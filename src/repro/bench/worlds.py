"""Shared simulated-world builders for the benchmark suite.

The engine-vs-engine benches used to each carry a private copy of the
same cluster boilerplate (specs, node loop, HDFS datanode wiring, the
PFS/SciDP stack). These are the two canonical shapes, parameterised on
the knobs the benches actually vary; ``benchmarks/_worlds.py`` re-
exports them for the campaign-migrated scripts.
"""

from __future__ import annotations

__all__ = ["build_hdfs_world", "build_scidp_world"]


def build_hdfs_world(n_nodes: int = 4, *, cpus: int = 8,
                     memory: int = 10**9, disk_bandwidth: float = 10**6,
                     seek_latency: float = 0.001,
                     nic_bandwidth: float = 10**7,
                     nic_latency: float = 0.0001,
                     block_size: int = 1024, replication: int = 1):
    """A compute cluster with every node doubling as an HDFS datanode.

    Returns ``(env, nodes, hdfs, network)`` — the world shape the
    sparklike engine-vs-engine bench runs on.
    """
    from repro.cluster import Cluster
    from repro.cluster.spec import DiskSpec, LinkSpec, NodeSpec
    from repro.hdfs import HDFS
    from repro.sim import Environment

    spec = NodeSpec(
        cpus=cpus, memory=memory,
        disks=(DiskSpec(bandwidth=disk_bandwidth,
                        seek_latency=seek_latency),),
        nic=LinkSpec(bandwidth=nic_bandwidth, latency=nic_latency))
    env = Environment()
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", spec, role="compute")
             for i in range(n_nodes)]
    hdfs = HDFS(env, cluster.network, block_size=block_size,
                replication=replication)
    for node in nodes:
        hdfs.add_datanode(node)
    return env, nodes, hdfs, cluster.network


def build_scidp_world(n_nodes: int = 2, *, cpus: int = 8,
                      memory: int = 10**9,
                      disk_bandwidth: float = 10**8,
                      seek_latency: float = 0.0005,
                      nic_bandwidth: float = 10**9,
                      nic_latency: float = 0.0001, ost_disks: int = 4,
                      stripe_size: int = 1 << 20, stripe_count: int = 4,
                      block_size: int = 1 << 22, replication: int = 1,
                      metrics: bool = True):
    """The full SciDP stack: compute nodes + MDS/OSS-backed PFS + HDFS.

    Returns ``(env, nodes, scidp)`` with ``costs`` pinned at scale 1.0
    — the world shape the SQL-pushdown bench runs on.
    """
    from repro import costs
    from repro.cluster import Cluster
    from repro.cluster.spec import DiskSpec, LinkSpec, NodeSpec
    from repro.core import SciDP
    from repro.hdfs import HDFS
    from repro.obs.metrics import attach_metrics
    from repro.pfs import PFS, StripeLayout
    from repro.sim import Environment

    costs.set_scale(1.0)
    spec = NodeSpec(
        cpus=cpus, memory=memory,
        disks=(DiskSpec(bandwidth=disk_bandwidth,
                        seek_latency=seek_latency),),
        nic=LinkSpec(bandwidth=nic_bandwidth, latency=nic_latency))
    env = Environment()
    if metrics:
        attach_metrics(env)
    cluster = Cluster(env)
    nodes = [cluster.add_node(f"n{i}", spec, role="compute")
             for i in range(n_nodes)]
    mds = cluster.add_node("mds", spec, role="storage")
    oss = cluster.add_node("oss", NodeSpec(
        cpus=cpus, memory=memory,
        disks=tuple(DiskSpec(bandwidth=disk_bandwidth,
                             seek_latency=seek_latency)
                    for _ in range(ost_disks)),
        nic=LinkSpec(bandwidth=nic_bandwidth, latency=nic_latency)),
        role="storage")
    pfs = PFS(env, cluster.network, mds, [oss],
              default_layout=StripeLayout(stripe_size=stripe_size,
                                          stripe_count=stripe_count))
    hdfs = HDFS(env, cluster.network, block_size=block_size,
                replication=replication)
    for node in nodes:
        hdfs.add_datanode(node)
    scidp = SciDP(env, nodes, pfs, hdfs, cluster.network)
    return env, nodes, scidp
