"""signac-style experiment-campaign layer (DESIGN.md §16).

A *campaign* is a declared parameter space whose points are executed by
a spawn-safe worker function into a *workspace*: one directory per
state-point hash holding ``statepoint.json``, ``result.json`` and a
provenance record (code fingerprint, seed, wall-clock, schema version).
Completed points are skipped on re-run and invalidated automatically
when the code fingerprint changes, and a :class:`ProcessPoolExecutor`
sweeps pending points across real CPU cores — each DES run is
single-threaded, so the sweep is an embarrassingly-parallel wall-clock
win.

Layering: this package is pure orchestration. It never imports the
simulation layers (``repro.sim``/``repro.hdfs``/``repro.pfs``/
``repro.core``) — worker functions live in :mod:`repro.bench.campaigns`
and are addressed by ``"module:function"`` reference so only the worker
*processes* pay the simulation imports. The workspace storage layout is
internal: everything outside goes through this facade (enforced by the
layering lint).
"""

from repro.campaign.aggregate import (
    aggregate_campaign,
    campaign_table,
    collect_records,
)
from repro.campaign.registry import CAMPAIGNS, CampaignDef, get_campaign
from repro.campaign.runner import (
    CampaignError,
    PointTimeout,
    RunReport,
    run_campaign,
    run_points,
    worker_ref,
)
from repro.campaign.statepoint import (
    ParameterSpace,
    canonicalize,
    statepoint_id,
)
from repro.campaign.workspace import (
    SCHEMA_VERSION,
    PointRecord,
    Workspace,
    code_fingerprint,
)

__all__ = [
    "CAMPAIGNS",
    "CampaignDef",
    "CampaignError",
    "ParameterSpace",
    "PointRecord",
    "PointTimeout",
    "RunReport",
    "SCHEMA_VERSION",
    "Workspace",
    "aggregate_campaign",
    "campaign_table",
    "canonicalize",
    "code_fingerprint",
    "collect_records",
    "get_campaign",
    "run_campaign",
    "run_points",
    "statepoint_id",
    "worker_ref",
]
