"""Campaign command line.

    python -m repro.campaign                      # list campaigns
    python -m repro.campaign run smoke --workers 4
    python -m repro.campaign status smoke
    python -m repro.campaign aggregate smoke [--json]
    python -m repro.campaign clean smoke [--errors-only]

Workspaces default to ``campaigns/<name>`` under the current directory.
``run`` streams per-point progress, skips completed points whose
provenance matches the live code fingerprint, and exits 1 if any point
failed (their ``error.json`` records stay behind and are retried next
run). Every subcommand exits 1 with a one-line message on a missing
campaign/workspace rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.reporting import format_table
from repro.campaign.aggregate import aggregate_campaign, campaign_table
from repro.campaign.registry import CAMPAIGNS, get_campaign
from repro.campaign.runner import CampaignError, run_campaign
from repro.campaign.workspace import Workspace, code_fingerprint


def _fail(message: str) -> int:
    print(message, file=sys.stderr)
    return 1


def _workspace(args, definition) -> Workspace:
    root = args.workspace or f"campaigns/{definition.name}"
    return Workspace(root)


def _progress_line(event: dict) -> None:
    if event["event"] == "point":
        status = "ok" if event["ok"] else "FAILED"
        wall = event.get("wall_seconds")
        wall_text = f" {wall:.2f}s" if wall is not None else ""
        print(f"[{event['campaign']}] {event['done']}/{event['total']} "
              f"{event['point_id']} {status}{wall_text}", flush=True)
    elif event["event"] == "skip":
        print(f"[{event['campaign']}] skip {event['point_id']} "
              f"(complete)", flush=True)


def _cmd_run(args) -> int:
    definition = get_campaign(args.campaign)
    workspace = _workspace(args, definition)
    report = run_campaign(
        definition, workspace, workers=args.workers,
        timeout=args.timeout, quick=args.quick,
        progress=None if args.quiet else _progress_line)
    print(report.summary())
    if report.failed:
        return _fail(f"{len(report.failed)} point(s) failed; see "
                     f"error.json under {workspace.root}")
    return 0


def _cmd_status(args) -> int:
    definition = get_campaign(args.campaign)
    workspace = _workspace(args, definition)
    fingerprint = code_fingerprint()
    counts: dict[str, int] = {}
    rows = []
    for statepoint in definition.points(quick=args.quick):
        pid = workspace.ensure_point(statepoint)
        record = workspace.load(pid, fingerprint)
        counts[record.status] = counts.get(record.status, 0) + 1
        wall = (record.provenance or {}).get("wall_seconds")
        params = {k: v for k, v in record.statepoint.items()
                  if k != "workload"}
        rows.append((pid, record.status,
                     round(wall, 2) if wall is not None else "-",
                     json.dumps(params, sort_keys=True)[:60]))
    note = ", ".join(f"{count} {status}"
                     for status, count in sorted(counts.items()))
    print(format_table(f"campaign {definition.name}",
                       ["point", "status", "wall s", "statepoint"],
                       rows, note))
    return 0


def _cmd_aggregate(args) -> int:
    definition = get_campaign(args.campaign)
    workspace = _workspace(args, definition)
    try:
        doc = aggregate_campaign(definition, workspace,
                                 quick=args.quick)
    except LookupError as exc:
        return _fail(str(exc))
    if args.as_json:
        print(json.dumps(doc, indent=2))
    else:
        columns, rows, note = campaign_table(definition, doc)
        print(format_table(definition.name, columns, rows, note))
    return 0


def _cmd_clean(args) -> int:
    definition = get_campaign(args.campaign)
    workspace = _workspace(args, definition)
    removed = workspace.clean(errors_only=args.errors_only)
    what = "failed point(s)" if args.errors_only else "point(s)"
    print(f"removed {len(removed)} {what} from {workspace.root}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run experiment campaigns: parameter sweeps with "
                    "content-hashed result caching and incremental "
                    "re-run.")
    sub = parser.add_subparsers(dest="command")

    def _common(cmd):
        cmd.add_argument("campaign", help="campaign name")
        cmd.add_argument("--workspace", default=None,
                         help="workspace directory "
                              "(default: campaigns/<name>)")
        cmd.add_argument("--quick", action="store_true",
                         help="the campaign's miniature parameter space")

    run_cmd = sub.add_parser("run", help="execute pending points")
    _common(run_cmd)
    run_cmd.add_argument("--workers", type=int, default=0,
                         help="process-pool size (0 = in-process "
                              "serial)")
    run_cmd.add_argument("--timeout", type=float, default=None,
                         help="per-point timeout in seconds (default: "
                              "the campaign's)")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress lines")

    status_cmd = sub.add_parser("status", help="per-point status table")
    _common(status_cmd)

    agg_cmd = sub.add_parser("aggregate",
                             help="comparison table from completed "
                                  "points")
    _common(agg_cmd)
    agg_cmd.add_argument("--json", action="store_true", dest="as_json",
                         help="print the aggregated JSON document")

    clean_cmd = sub.add_parser("clean", help="remove point directories")
    _common(clean_cmd)
    clean_cmd.add_argument("--errors-only", action="store_true",
                           help="remove only failed points")

    args = parser.parse_args(argv)
    if args.command is None:
        print("Available campaigns:")
        for name, definition in sorted(CAMPAIGNS.items()):
            print(f"  {name:12s} {definition.description}")
        return 0

    handler = {"run": _cmd_run, "status": _cmd_status,
               "aggregate": _cmd_aggregate, "clean": _cmd_clean}
    try:
        return handler[args.command](args)
    except KeyError as exc:
        # unknown campaign name from get_campaign
        return _fail(str(exc.args[0]))
    except CampaignError as exc:
        return _fail(f"campaign error: {exc}")


if __name__ == "__main__":
    raise SystemExit(main())
