"""Aggregate completed campaign points into comparison tables/JSON.

Aggregation always reads back from the workspace's JSON files — never
from in-memory worker returns — so a serial sweep, a parallel sweep and
a warm re-run of either all aggregate byte-identically. Tables render
through the existing :mod:`repro.bench.reporting` cell builders, the
same surface every ``bench_results/*.txt`` artifact uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.reporting import format_table
from repro.campaign.statepoint import statepoint_id
from repro.campaign.workspace import PointRecord, Workspace

__all__ = ["aggregate_campaign", "campaign_table", "collect_records"]


def collect_records(workspace: Workspace,
                    points: Iterable[dict] | None = None,
                    fingerprint: str | None = None,
                    require_complete: bool = True) -> list[PointRecord]:
    """Load the records to aggregate, in deterministic order.

    With ``points`` (the campaign's declared space) records come back
    in declaration order and a missing/failed point raises — a
    comparison table built from half a sweep would be silently wrong.
    Without ``points``, every workspace point is returned sorted by id.
    """
    if points is None:
        records = list(workspace.records(fingerprint))
        if require_complete:
            records = [r for r in records if r.status == "complete"]
        return records
    records = []
    missing = []
    for statepoint in points:
        pid = statepoint_id(statepoint)
        try:
            record = workspace.load(pid, fingerprint)
        except KeyError:
            record = None
        if record is None or (require_complete
                              and record.status != "complete"):
            missing.append(pid)
        else:
            records.append(record)
    if missing:
        raise LookupError(
            f"{len(missing)} point(s) not complete in {workspace.root} "
            f"(run the campaign first): {', '.join(missing[:5])}"
            + ("..." if len(missing) > 5 else ""))
    return records


def aggregate_campaign(definition, workspace: Workspace, *,
                       quick: bool = False,
                       fingerprint: str | None = None) -> dict:
    """The campaign's comparison document, built from completed points.

    ``fingerprint`` defaults to ``None`` here: aggregation accepts any
    recorded provenance — re-running after a code change is the
    *runner's* job; asking for a table should not demand fresh points.
    """
    records = collect_records(workspace, definition.points(quick=quick),
                              fingerprint=fingerprint)
    return definition.aggregate(records)


def campaign_table(definition, doc: dict) -> tuple:
    """``(columns, rows, note)`` for the aggregated document."""
    return definition.rows(doc)


def render_table(definition, doc: dict) -> str:
    """ASCII table via the shared reporting cell builders."""
    columns, rows, note = campaign_table(definition, doc)
    return format_table(definition.name, columns, rows, note)
