"""Registry of declared campaign definitions.

A :class:`CampaignDef` binds a name to (1) a parameter-space factory,
(2) a spawn-safe worker reference into :mod:`repro.bench.campaigns`,
(3) an aggregation step folding completed points back into the
comparison document the matching ``bench_results/BENCH_*.json``
artifact carries, and (4) a table shape for the CLI. The simscale,
sparklike and SQL-pushdown benchmark matrices are re-expressed here as
campaigns; ``smoke`` is the small sweep the CI ``campaign`` job runs
twice to gate parallel overlap and warm-cache re-runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

from repro.campaign.statepoint import ParameterSpace

__all__ = ["CAMPAIGNS", "CampaignDef", "get_campaign"]


@dataclass(frozen=True)
class CampaignDef:
    """A declared campaign: space, worker, aggregation, table shape."""

    name: str
    description: str
    worker: str  # "module:function" spawn-safe reference
    space: Callable[[bool], ParameterSpace]
    aggregate: Callable[[list], dict]
    rows: Callable[[dict], tuple]
    point_timeout: float | None = None

    def points(self, quick: bool = False) -> list[dict]:
        return self.space(quick).points()


# ---------------------------------------------------------------------------
# simscale: frozen legacy engine vs live engine, one point per engine
# ---------------------------------------------------------------------------

def _simscale_space(quick: bool = False) -> ParameterSpace:
    base = {"workload": "simscale", "n_nodes": 256, "n_tasks": 10_000,
            "n_jobs": 10, "seed": 2024, "repeats": 3}
    if quick:
        base.update(n_tasks=1000, n_jobs=4, repeats=1)
    return ParameterSpace(base=base).grid(engine=["legacy", "live"])


def _simscale_aggregate(records: list) -> dict:
    from repro.bench.simscale import build_comparison_doc

    by_engine = {record.statepoint["engine"]: record
                 for record in records}
    spec = by_engine["live"].statepoint
    return build_comparison_doc(
        by_engine["legacy"].result, by_engine["live"].result,
        n_nodes=spec["n_nodes"], n_tasks=spec["n_tasks"],
        n_jobs=spec["n_jobs"], seed=spec["seed"],
        repeats=spec["repeats"])


def _simscale_rows(doc: dict) -> tuple:
    from repro.bench.simscale import doc_rows

    return doc_rows(doc)


# ---------------------------------------------------------------------------
# sparklike: one point per engine configuration
# ---------------------------------------------------------------------------

def _sparklike_space(quick: bool = False) -> ParameterSpace:
    from repro.bench.sparkbench import CONFIGS

    base = {"workload": "sparklike", "n_lines": 2000, "iterations": 5}
    if quick:
        base.update(n_lines=400, iterations=3)
    return ParameterSpace(base=base).grid(config=list(CONFIGS))


def _sparklike_aggregate(records: list) -> dict:
    from repro.bench.sparkbench import build_comparison_doc

    entries = {record.statepoint["config"]: record.result
               for record in records}
    spec = records[0].statepoint
    folded = build_comparison_doc(entries)
    doc: dict = {"experiment": "sparklike", "n_lines": spec["n_lines"],
                 "iterations": spec["iterations"]}
    doc.update((k, v) for k, v in folded.items() if k != "experiment")
    return doc


def _sparklike_rows(doc: dict) -> tuple:
    from repro.bench.sparkbench import doc_rows

    return doc_rows(doc)


# ---------------------------------------------------------------------------
# sql: one point per engine configuration
# ---------------------------------------------------------------------------

def _sql_space(quick: bool = False) -> ParameterSpace:
    from repro.bench.sqlbench import SQL_CONFIGS

    base = {"workload": "sql", "shape": [8, 48, 48], "timesteps": 2}
    if quick:
        base.update(shape=[8, 32, 32], timesteps=1)
    return ParameterSpace(base=base).grid(config=list(SQL_CONFIGS))


def _sql_aggregate(records: list) -> dict:
    from repro.bench.sqlbench import build_comparison_doc

    entries = {record.statepoint["config"]: record.result
               for record in records}
    spec = records[0].statepoint
    return build_comparison_doc(entries, tuple(spec["shape"]),
                                spec["timesteps"])


def _sql_rows(doc: dict) -> tuple:
    from repro.bench.sqlbench import doc_rows

    return doc_rows(doc)


# ---------------------------------------------------------------------------
# smoke: the 8-point CI sweep (real miniature DES runs + a fixed stall
# so the parallel-overlap gate is independent of runner core count)
# ---------------------------------------------------------------------------

SMOKE_POINTS = 8


def _smoke_space(quick: bool = False) -> ParameterSpace:
    base = {"workload": "smoke", "n_nodes": 16, "n_tasks": 400,
            "n_jobs": 2, "stall_s": 1.0}
    if quick:
        base.update(n_tasks=200, stall_s=0.0)
    return ParameterSpace(base=base).grid(seed=list(range(SMOKE_POINTS)))


def _smoke_aggregate(records: list) -> dict:
    per_point = sorted((record.result for record in records),
                       key=lambda result: result["seed"])
    signature = zlib.crc32(b"campaign-smoke")
    for result in per_point:
        signature = zlib.crc32(
            repr((result["seed"], result["signature"])).encode(),
            signature)
    return {
        "experiment": "campaign_smoke",
        "points": len(per_point),
        "events_total": sum(r["events"] for r in per_point),
        "tasks_total": sum(r["tasks_completed"] for r in per_point),
        "sim_seconds_total": sum(r["sim_seconds"] for r in per_point),
        "signature": signature,
        "per_point": per_point,
    }


def _smoke_rows(doc: dict) -> tuple:
    columns = ["seed", "events", "sim seconds", "tasks"]
    rows = [
        (result["seed"], result["events"],
         round(result["sim_seconds"], 3), result["tasks_completed"])
        for result in doc["per_point"]
    ]
    note = (f"{doc['points']} points, {doc['events_total']} events "
            f"total, order signature {doc['signature']}")
    return columns, rows, note


CAMPAIGNS: dict[str, CampaignDef] = {
    definition.name: definition for definition in (
        CampaignDef(
            name="simscale",
            description="frozen legacy engine vs live engine on the "
                        "256-node/10k-task synthetic cluster run",
            worker="repro.bench.campaigns:simscale_point",
            space=_simscale_space,
            aggregate=_simscale_aggregate,
            rows=_simscale_rows,
            point_timeout=600.0,
        ),
        CampaignDef(
            name="sparklike",
            description="lazy DAG engine configurations vs the frozen "
                        "eager engine on the iterative wordcount",
            worker="repro.bench.campaigns:sparklike_point",
            space=_sparklike_space,
            aggregate=_sparklike_aggregate,
            rows=_sparklike_rows,
            point_timeout=600.0,
        ),
        CampaignDef(
            name="sql",
            description="SQL planner pushdown configurations vs the "
                        "frozen eager evaluator on NU-WRF scinc data",
            worker="repro.bench.campaigns:sql_point",
            space=_sql_space,
            aggregate=_sql_aggregate,
            rows=_sql_rows,
            point_timeout=600.0,
        ),
        CampaignDef(
            name="smoke",
            description="8-point miniature sweep for the CI campaign "
                        "job (parallel overlap + warm-cache gates)",
            worker="repro.bench.campaigns:smoke_point",
            space=_smoke_space,
            aggregate=_smoke_aggregate,
            rows=_smoke_rows,
            point_timeout=120.0,
        ),
    )
}


def get_campaign(name: str) -> CampaignDef:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; have "
            f"{', '.join(sorted(CAMPAIGNS))}") from None
