"""Process-pool campaign driver with skip-if-computed semantics.

Points run through a top-level worker function addressed by a
``"module:function"`` reference — never a pickled closure — so every
worker is importable under the ``spawn`` start method (the portable,
state-free one). :func:`worker_ref` enforces that at submit time, and
:func:`check_statepoint` rejects state points carrying simulation
objects (an ``Environment``, a node, a client...) before anything
crosses the process boundary: a worker builds its *own* world from
plain parameters.

Failure isolation: the child wrapper catches the worker's exception and
returns a failure record, which the parent writes to the point's
``error.json`` — a crashed point never aborts the sweep, and is retried
on the next run. Per-point timeouts are enforced *inside* the worker
process via ``SIGALRM`` (POSIX; a no-op where unavailable), so a hung
point turns into an ordinary recorded error. A hard child death
(``os._exit``, segfault) breaks the pool; the driver records errors for
the in-flight points, rebuilds the pool, and keeps sweeping.

``workers=0`` runs every point in-process, serially, through the exact
same wrapper — the determinism baseline the equivalence tests compare
the pool against. Results always round-trip through the workspace's
JSON files, so serial and parallel sweeps aggregate identically.
"""

from __future__ import annotations

import importlib
import json
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.campaign.statepoint import canonicalize
from repro.campaign.workspace import (
    SCHEMA_VERSION,
    Workspace,
    code_fingerprint,
)

__all__ = ["CampaignError", "PointTimeout", "RunReport", "run_campaign",
           "run_points", "worker_ref"]


class CampaignError(Exception):
    """A campaign was misdeclared (unsafe worker, bad state point)."""


class PointTimeout(BaseException):
    """Raised inside a worker when its per-point timeout expires.

    A ``BaseException`` so worker code that catches ``Exception``
    broadly cannot swallow the deadline.
    """


# ---------------------------------------------------------------------------
# spawn-safety guards
# ---------------------------------------------------------------------------

def worker_ref(worker: str | Callable) -> str:
    """Validate ``worker`` and return its ``"module:function"`` ref.

    The function must be addressable by name in an importable module —
    the spawn-safety rule: lambdas, nested functions and bound methods
    cannot be re-imported by a fresh worker process.
    """
    if isinstance(worker, str):
        module_name, _, func_name = worker.partition(":")
        if not module_name or not func_name:
            raise CampaignError(
                f"worker reference must look like 'module:function', "
                f"got {worker!r}")
    else:
        module_name = getattr(worker, "__module__", None)
        func_name = getattr(worker, "__qualname__", None)
        if not module_name or not func_name or "<locals>" in func_name \
                or "." in func_name:
            raise CampaignError(
                f"campaign workers must be top-level functions "
                f"importable under spawn; got {worker!r} "
                f"(qualname {func_name!r})")
    resolved = _resolve_worker(f"{module_name}:{func_name}")
    if not isinstance(worker, str) and resolved is not worker:
        raise CampaignError(
            f"{module_name}.{func_name} does not resolve back to the "
            f"given function — campaign workers must be importable "
            f"module attributes, not decorated copies or locals")
    return f"{module_name}:{func_name}"


def _resolve_worker(ref: str) -> Callable:
    module_name, _, func_name = ref.partition(":")
    try:
        module = importlib.import_module(module_name)
        func = getattr(module, func_name)
    except (ImportError, AttributeError) as exc:
        raise CampaignError(
            f"cannot resolve campaign worker {ref!r}: {exc}") from exc
    if not callable(func):
        raise CampaignError(f"campaign worker {ref!r} is not callable")
    return func


def check_statepoint(statepoint: dict) -> dict:
    """Canonical form of ``statepoint``; raises :class:`CampaignError`
    for anything that cannot cross the process boundary."""
    try:
        doc = canonicalize(statepoint)
    except (TypeError, ValueError) as exc:
        raise CampaignError(f"invalid state point: {exc}") from exc
    if not isinstance(doc, dict):
        raise CampaignError(
            f"a state point is a dict of parameters, got "
            f"{type(statepoint).__name__}")
    return doc


# ---------------------------------------------------------------------------
# the per-point wrapper (runs in the worker process; top-level so the
# pool can address it by name under spawn)
# ---------------------------------------------------------------------------

def _child_run(ref: str, statepoint: dict,
               timeout: float | None) -> dict:
    """Execute one point; never raises — failures become records."""
    import signal

    started = time.perf_counter()
    alarm_armed = False
    previous_handler = None
    try:
        func = _resolve_worker(ref)
        if timeout and hasattr(signal, "SIGALRM"):
            def _expire(signum, frame):
                raise PointTimeout(
                    f"point exceeded its {timeout:g}s timeout")
            try:
                previous_handler = signal.signal(signal.SIGALRM, _expire)
                signal.setitimer(signal.ITIMER_REAL, timeout)
                alarm_armed = True
            except ValueError:  # pragma: no cover - non-main thread
                previous_handler = None
        result = func(statepoint)
        wall = time.perf_counter() - started
        return {"ok": True, "result": result, "wall_seconds": wall}
    except (Exception, PointTimeout) as exc:
        wall = time.perf_counter() - started
        return {
            "ok": False,
            "wall_seconds": wall,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "timeout": isinstance(exc, PointTimeout),
                "traceback": traceback.format_exc(),
            },
        }
    finally:
        if alarm_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if previous_handler is not None:
                signal.signal(signal.SIGALRM, previous_handler)


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

@dataclass
class RunReport:
    """What one sweep did to the workspace."""

    campaign: str
    workers: int
    fingerprint: str
    total: int = 0
    executed: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    failed: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def cache_hits(self) -> int:
        return len(self.skipped)

    @property
    def points_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.executed) / self.wall_seconds

    def summary(self) -> str:
        return (f"{self.campaign}: {len(self.executed)} executed "
                f"({len(self.failed)} failed), {self.cache_hits} "
                f"cache hits, workers={self.workers}, "
                f"{self.wall_seconds:.2f}s wall")


def _emit(progress, event: dict) -> None:
    if progress is not None:
        progress(event)


def run_points(points: Iterable[dict], worker: str | Callable,
               workspace: Workspace, *, workers: int = 0,
               timeout: float | None = None,
               fingerprint: str | None = None,
               campaign: str = "campaign",
               progress: Callable[[dict], None] | None = None) -> \
        RunReport:
    """Sweep ``points`` through ``worker`` into ``workspace``.

    ``workers=0`` executes in-process serially (the determinism
    baseline); ``workers>=1`` sweeps through a spawn-based
    :class:`ProcessPoolExecutor` with at most ``workers`` points in
    flight. Completed points whose provenance matches ``fingerprint``
    (default: the live ``repro`` source fingerprint) are skipped.
    """
    ref = worker_ref(worker)
    fingerprint = fingerprint or code_fingerprint()
    report = RunReport(campaign=campaign, workers=workers,
                       fingerprint=fingerprint)
    started = time.perf_counter()

    to_run: list[tuple[str, dict]] = []
    seen: set[str] = set()
    for statepoint in points:
        check_statepoint(statepoint)
        pid = workspace.ensure_point(statepoint)
        if pid in seen:
            continue
        seen.add(pid)
        report.total += 1
        status = workspace.status(pid, fingerprint)
        if status == "complete":
            report.skipped.append(pid)
            _emit(progress, {"event": "skip", "point_id": pid,
                             "status": status, "campaign": campaign})
        else:
            to_run.append((pid, statepoint))

    def _record(pid: str, statepoint: dict, outcome: dict) -> None:
        provenance = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "campaign": campaign,
            "worker": ref,
            "seed": statepoint.get("seed"),
            "wall_seconds": outcome.get("wall_seconds"),
            "finished_at": time.time(),
        }
        if outcome["ok"]:
            try:
                result = json.loads(json.dumps(outcome["result"]))
            except (TypeError, ValueError) as exc:
                outcome = {"ok": False,
                           "wall_seconds": outcome.get("wall_seconds"),
                           "error": {"type": "TypeError",
                                     "message": f"worker result is not "
                                                f"JSON-serializable: "
                                                f"{exc}",
                                     "timeout": False, "traceback": ""}}
            else:
                workspace.record_result(pid, result, provenance)
                report.executed.append(pid)
        if not outcome["ok"]:
            workspace.record_error(pid, outcome["error"], provenance)
            report.executed.append(pid)
            report.failed.append(pid)
        done = len(report.executed) + len(report.skipped)
        _emit(progress, {
            "event": "point", "point_id": pid, "campaign": campaign,
            "ok": outcome["ok"], "done": done, "total": report.total,
            "wall_seconds": outcome.get("wall_seconds")})

    if workers <= 0:
        for pid, statepoint in to_run:
            _record(pid, statepoint, _child_run(ref, statepoint, timeout))
    else:
        _run_pool(to_run, ref, timeout, workers, _record)

    report.wall_seconds = time.perf_counter() - started
    _emit(progress, {"event": "done", "campaign": campaign,
                     "executed": len(report.executed),
                     "failed": len(report.failed),
                     "skipped": len(report.skipped),
                     "wall_seconds": report.wall_seconds})
    return report


def _run_pool(to_run, ref: str, timeout: float | None, workers: int,
              record) -> None:
    """Wave-based pool drive: at most ``workers`` points in flight, so
    a hard child death can only take the current wave down with it —
    the pool is rebuilt and the rest of the sweep continues."""
    import multiprocessing

    context = multiprocessing.get_context("spawn")

    def _new_pool():
        return ProcessPoolExecutor(max_workers=workers,
                                   mp_context=context)

    pending = deque(to_run)
    in_flight: dict = {}
    pool = _new_pool()
    try:
        while pending or in_flight:
            while pending and len(in_flight) < workers:
                pid, statepoint = pending.popleft()
                future = pool.submit(_child_run, ref, statepoint, timeout)
                in_flight[future] = (pid, statepoint)
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                pid, statepoint = in_flight.pop(future)
                try:
                    outcome = future.result()
                except Exception as exc:
                    broken = broken or isinstance(exc, BrokenProcessPool)
                    outcome = {
                        "ok": False, "wall_seconds": None,
                        "error": {"type": type(exc).__name__,
                                  "message": f"worker process died: "
                                             f"{exc}",
                                  "timeout": False, "traceback": ""}}
                record(pid, statepoint, outcome)
            if broken:
                # every other in-flight future is broken too: record
                # their failures, then rebuild the pool and continue
                for future, (pid, statepoint) in list(in_flight.items()):
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        outcome = {
                            "ok": False, "wall_seconds": None,
                            "error": {"type": type(exc).__name__,
                                      "message": f"worker process "
                                                 f"died: {exc}",
                                      "timeout": False,
                                      "traceback": ""}}
                    record(pid, statepoint, outcome)
                in_flight.clear()
                pool.shutdown(wait=False)
                pool = _new_pool()
    finally:
        pool.shutdown()


def run_campaign(definition, workspace: Workspace, *, workers: int = 0,
                 timeout: float | None = None, quick: bool = False,
                 fingerprint: str | None = None,
                 progress: Callable[[dict], None] | None = None) -> \
        RunReport:
    """Sweep a registered :class:`~repro.campaign.registry.CampaignDef`."""
    return run_points(
        definition.points(quick=quick), definition.worker, workspace,
        workers=workers,
        timeout=definition.point_timeout if timeout is None else timeout,
        fingerprint=fingerprint, campaign=definition.name,
        progress=progress)
