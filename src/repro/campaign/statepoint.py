"""Canonical state points and the declarative parameter space.

A *state point* is the parameter dict that uniquely identifies one
experiment: ``{"workload": "simscale", "n_nodes": 256, "seed": 3}``.
Workspace directories are keyed by a stable content hash of the state
point, so the same parameters always land in the same directory — no
matter the key order the caller used, whether a count arrived as ``1``
or ``1.0``, or whether a shape was spelled as a tuple or a list.

Canonicalisation rules (:func:`canonicalize`):

- dict keys must be strings and are sorted;
- tuples become lists;
- integral floats collapse to ints (``1.0`` -> ``1``), so numeric
  parameters hash identically however they were produced;
- bools stay bools (``True`` is not ``1`` — they are distinct knobs);
- NumPy scalars collapse to their Python value via ``.item()``;
- NaN/inf are rejected with a clear error — a NaN parameter would
  compare unequal to itself and silently fork workspace directories;
- anything else (objects, sets, simulation state) is rejected: state
  points cross process boundaries and must stay plain JSON data.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Callable, Iterable, Iterator

__all__ = ["ParameterSpace", "canonicalize", "statepoint_id"]

#: integral floats above this cannot be represented exactly anyway —
#: keep them as floats rather than invent precision
_MAX_EXACT_FLOAT = float(2**53)


def canonicalize(value: Any) -> Any:
    """Return the canonical JSON-able form of a state-point value.

    Raises ``TypeError``/``ValueError`` with a pointed message for
    anything that cannot cross a process boundary as JSON.
    """
    if isinstance(value, bool):  # before int: bool subclasses int
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            raise ValueError(
                "NaN is not a valid state-point value: it compares "
                "unequal to itself, so the point could never be found "
                "again; encode 'missing' explicitly (e.g. None)")
        if math.isinf(value):
            raise ValueError(
                "infinite floats are not valid state-point values "
                "(not portable JSON); encode the intent explicitly")
        if value.is_integer() and abs(value) <= _MAX_EXACT_FLOAT:
            return int(value)
        return value
    if isinstance(value, str) or value is None:
        return value
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"state-point keys must be strings, got "
                    f"{type(key).__name__}: {key!r}")
            out[key] = canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    # NumPy scalars carry their value portably; unwrap them
    item = getattr(value, "item", None)
    if callable(item) and type(value).__module__.startswith("numpy"):
        return canonicalize(value.item())
    hint = ""
    if type(value).__module__.partition(".")[0] == "repro":
        hint = ("; simulation/runtime objects cannot cross the "
                "process boundary — pass plain parameters and let the "
                "worker build its own world")
    raise TypeError(
        f"unsupported state-point value of type "
        f"{type(value).__module__}.{type(value).__name__}: "
        f"{value!r}{hint}")


def statepoint_id(statepoint: dict) -> str:
    """Stable content hash of a state point (20 hex chars).

    Key order, ``1.0`` vs ``1`` and tuple-vs-list spellings all hash
    identically; see :func:`canonicalize`.
    """
    if not isinstance(statepoint, dict):
        raise TypeError(
            f"a state point is a dict of parameters, got "
            f"{type(statepoint).__name__}")
    doc = canonicalize(statepoint)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:20]


class ParameterSpace:
    """Declarative parameter space expanded into state points.

    - :meth:`grid` adds cartesian axes (successive calls multiply);
    - :meth:`zip` adds one axis of equal-length sequences advanced in
      lockstep (``seed`` with its matching ``replicate``, say);
    - :meth:`when` applies conditional overrides to matching points;
    - :meth:`where` filters points out.

    Expansion order is deterministic (base, then axes in declaration
    order) and duplicate points — identical after canonicalisation —
    are dropped, keeping the first occurrence.

    >>> space = (ParameterSpace(base={"workload": "smoke"})
    ...          .grid(n_nodes=[16, 64], seed=[0, 1]))
    >>> len(space.points())
    4
    """

    def __init__(self, base: dict | None = None):
        self._base = dict(base or {})
        self._axes: list[list[dict]] = []
        self._overlays: list[tuple[Callable[[dict], bool], dict]] = []
        self._filters: list[Callable[[dict], bool]] = []

    def grid(self, **axes: Iterable) -> "ParameterSpace":
        """Cartesian product over each ``key=[values...]`` axis."""
        for key, values in axes.items():
            entries = [{key: value} for value in values]
            if not entries:
                raise ValueError(f"grid axis {key!r} has no values")
            self._axes.append(entries)
        return self

    def zip(self, **axes: Iterable) -> "ParameterSpace":
        """One axis advancing all ``key=[values...]`` in lockstep."""
        lists = {key: list(values) for key, values in axes.items()}
        if not lists:
            raise ValueError("zip needs at least one axis")
        lengths = {key: len(values) for key, values in lists.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(
                f"zip axes must have equal lengths, got {lengths}")
        count = next(iter(lengths.values()))
        if count == 0:
            raise ValueError("zip axes have no values")
        self._axes.append([
            {key: lists[key][i] for key in lists} for i in range(count)])
        return self

    def when(self, predicate: Callable[[dict], bool],
             **overrides: Any) -> "ParameterSpace":
        """Apply ``overrides`` to every point matching ``predicate``."""
        self._overlays.append((predicate, dict(overrides)))
        return self

    def where(self, predicate: Callable[[dict], bool]) -> \
            "ParameterSpace":
        """Keep only points matching ``predicate``."""
        self._filters.append(predicate)
        return self

    def points(self) -> list[dict]:
        """Expand into the ordered, deduplicated list of state points."""
        points = [dict(self._base)]
        for axis in self._axes:
            points = [{**point, **entry}
                      for point in points for entry in axis]
        out: list[dict] = []
        seen: set[str] = set()
        for point in points:
            for predicate, overrides in self._overlays:
                if predicate(point):
                    point = {**point, **overrides}
            if not all(keep(point) for keep in self._filters):
                continue
            pid = statepoint_id(point)
            if pid not in seen:
                seen.add(pid)
                out.append(point)
        return out

    def __iter__(self) -> Iterator[dict]:
        return iter(self.points())

    def __len__(self) -> int:
        return len(self.points())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ParameterSpace base={self._base!r} "
                f"axes={[len(a) for a in self._axes]}>")
