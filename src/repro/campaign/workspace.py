"""Workspace of campaign points keyed by state-point hash.

One directory per state point (named by :func:`~repro.campaign.
statepoint.statepoint_id`) holding:

- ``statepoint.json`` — the canonical parameters (ground truth: the
  directory name is derived from it and re-derivable);
- ``result.json`` — the worker's JSON result, present only for
  completed points;
- ``error.json`` — the failure record (exception type, message,
  traceback, timeout flag) of the most recent failed attempt;
- ``provenance.json`` — how the result was produced: the code
  fingerprint of the ``repro`` source tree, the point's seed, the
  wall-clock the run took, and the campaign schema version.

Skip-if-computed semantics: a point is **complete** iff ``result.json``
exists and its provenance fingerprint/schema match the current run's.
A fingerprint mismatch makes the point **stale** (re-run), a recorded
error makes it **error** (retried next run), anything else is
**pending**. All writes are atomic (tmp file + ``os.replace``) so a
killed sweep never leaves a half-written result that would be skipped
forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.campaign.statepoint import canonicalize, statepoint_id

__all__ = ["SCHEMA_VERSION", "PointRecord", "Workspace",
           "code_fingerprint"]

#: bump when the workspace layout/provenance contract changes —
#: mismatched points are treated as stale and re-run
SCHEMA_VERSION = 1

STATEPOINT_FILE = "statepoint.json"
RESULT_FILE = "result.json"
ERROR_FILE = "error.json"
PROVENANCE_FILE = "provenance.json"


def code_fingerprint(packages: Iterable[str] = ("repro",),
                     roots: Iterable = ()) -> str:
    """Content hash of the named packages' source trees (20 hex chars).

    Hashes every ``*.py`` under each package directory (path + bytes),
    so any code change — not just in the worker function — invalidates
    completed points. ``roots`` takes explicit directories instead of
    importable package names (used by tests).
    """
    import importlib

    digest = hashlib.sha1()
    dirs = [Path(root) for root in roots]
    for name in packages:
        module = importlib.import_module(name)
        if module.__file__ is None:  # pragma: no cover - namespace pkg
            raise ValueError(f"package {name!r} has no source file")
        dirs.append(Path(module.__file__).resolve().parent)
    for root in dirs:
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(hashlib.sha1(path.read_bytes()).digest())
            digest.update(b"\0")
    return digest.hexdigest()[:20]


def _write_json(path: Path, doc) -> None:
    """Atomic JSON write: tmp file in the same dir + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _read_json(path: Path):
    """Read JSON, or ``None`` for a missing/corrupt file (a crashed
    writer must look pending, never complete)."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


@dataclass
class PointRecord:
    """Everything the workspace knows about one point."""

    point_id: str
    statepoint: dict
    status: str  # "complete" | "stale" | "error" | "pending"
    result: dict | None = None
    error: dict | None = None
    provenance: dict | None = field(default=None)


class Workspace:
    """A directory of campaign points keyed by state-point hash."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- layout ---------------------------------------------------------
    def point_dir(self, point: dict | str) -> Path:
        pid = point if isinstance(point, str) else statepoint_id(point)
        return self.root / pid

    def ensure_point(self, statepoint: dict) -> str:
        """Materialise the point's directory + ``statepoint.json``."""
        pid = statepoint_id(statepoint)
        pdir = self.root / pid
        pdir.mkdir(exist_ok=True)
        sp_file = pdir / STATEPOINT_FILE
        if not sp_file.exists():
            _write_json(sp_file, canonicalize(statepoint))
        return pid

    def point_ids(self) -> list[str]:
        return sorted(
            entry.name for entry in self.root.iterdir()
            if entry.is_dir() and (entry / STATEPOINT_FILE).exists())

    # -- records --------------------------------------------------------
    def record_result(self, point_id: str, result: dict,
                      provenance: dict) -> None:
        pdir = self.root / point_id
        _write_json(pdir / PROVENANCE_FILE, provenance)
        _write_json(pdir / RESULT_FILE, result)
        # the provenance/result pair supersedes any earlier failure
        (pdir / ERROR_FILE).unlink(missing_ok=True)

    def record_error(self, point_id: str, error: dict,
                     provenance: dict) -> None:
        pdir = self.root / point_id
        _write_json(pdir / PROVENANCE_FILE, provenance)
        _write_json(pdir / ERROR_FILE, error)
        # a failed re-run invalidates the stale success it replaced
        (pdir / RESULT_FILE).unlink(missing_ok=True)

    def load(self, point_id: str,
             fingerprint: str | None = None) -> PointRecord:
        """The point's record, with status relative to ``fingerprint``
        (``None`` accepts any fingerprint)."""
        pdir = self.root / point_id
        statepoint = _read_json(pdir / STATEPOINT_FILE)
        if statepoint is None:
            raise KeyError(f"no point {point_id!r} in {self.root}")
        result = _read_json(pdir / RESULT_FILE)
        error = _read_json(pdir / ERROR_FILE)
        provenance = _read_json(pdir / PROVENANCE_FILE)
        status = "pending"
        if result is not None:
            status = "complete" if self._provenance_current(
                provenance, fingerprint) else "stale"
        elif error is not None:
            status = "error"
        return PointRecord(point_id=point_id, statepoint=statepoint,
                           status=status, result=result, error=error,
                           provenance=provenance)

    @staticmethod
    def _provenance_current(provenance: dict | None,
                            fingerprint: str | None) -> bool:
        if provenance is None:
            return False
        if provenance.get("schema") != SCHEMA_VERSION:
            return False
        return (fingerprint is None
                or provenance.get("fingerprint") == fingerprint)

    def status(self, point: dict | str,
               fingerprint: str | None = None) -> str:
        pid = point if isinstance(point, str) else statepoint_id(point)
        try:
            return self.load(pid, fingerprint).status
        except KeyError:
            return "pending"

    def records(self, fingerprint: str | None = None) -> \
            Iterator[PointRecord]:
        for pid in self.point_ids():
            yield self.load(pid, fingerprint)

    # -- maintenance ----------------------------------------------------
    def clean(self, errors_only: bool = False) -> list[str]:
        """Remove point directories; with ``errors_only`` keep completed
        points and drop only failed ones. Returns removed ids."""
        removed = []
        for record in list(self.records()):
            if errors_only and record.status != "error":
                continue
            shutil.rmtree(self.root / record.point_id)
            removed.append(record.point_id)
        return removed

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Workspace {self.root} ({len(self.point_ids())} points)>"
