"""Simulated cluster hardware: nodes, disks, NICs, and the network fabric.

The model mirrors the paper's testbed (TACC Chameleon, §V-A): compute nodes
with two 12-core Xeons, 128 GB RAM, one 7200 RPM SATA disk and a 10 GbE
NIC; storage nodes with 64 GB RAM and sixteen 7200 RPM SAS disks. Presets
for both live in :mod:`repro.cluster.spec`.

Every device is a :class:`repro.sim.SharedBandwidth` pipe, so contention
between concurrent tasks emerges from the simulation.
"""

from repro.cluster.network import Network
from repro.cluster.node import Disk, Node
from repro.cluster.spec import (
    DiskSpec,
    LinkSpec,
    NodeSpec,
    chameleon_compute_spec,
    chameleon_storage_spec,
)
from repro.cluster.topology import Cluster

__all__ = [
    "Cluster",
    "Disk",
    "DiskSpec",
    "LinkSpec",
    "Network",
    "Node",
    "NodeSpec",
    "chameleon_compute_spec",
    "chameleon_storage_spec",
]
