"""Network fabric connecting nodes through a non-blocking switch.

Model: each transfer is charged concurrently against the sender's ``tx``
pipe and the receiver's ``rx`` pipe and completes when the slower side
drains (cut-through switching). An optional core-switch aggregate pipe
caps total fabric throughput. Transfers within a node are free — they stay
in memory, as in the paper's data-local HDFS reads.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.node import Node
from repro.sim import Environment, Event, SharedBandwidth

__all__ = ["Network"]


class Network:
    def __init__(self, env: Environment,
                 core_bandwidth: Optional[float] = None,
                 name: str = "net"):
        self.env = env
        self.name = name
        self.core: Optional[SharedBandwidth] = (
            SharedBandwidth(env, core_bandwidth, f"{name}.core")
            if core_bandwidth else None)
        #: Total bytes that crossed the fabric (excludes node-local moves).
        self.bytes_moved = 0.0
        #: Fabric bytes by traffic class (e.g. "shuffle"); untagged
        #: transfers are not broken out here.
        self.bytes_by_tag: dict[str, float] = {}

    def transfer(self, src: Node, dst: Node, nbytes: float,
                 tag: Optional[str] = None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns completion event.

        Node-local transfers complete immediately (memory copy — its cost
        is accounted as CPU time by callers that care). ``tag`` labels
        the traffic class for :attr:`bytes_by_tag` accounting only; it
        never affects scheduling.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = Event(self.env)
        if src is dst or nbytes == 0:
            done.succeed()
            return done
        self.bytes_moved += nbytes
        if tag is not None:
            self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0.0) \
                + nbytes
        latency = max(src.nic_latency, dst.nic_latency)
        legs = [
            src.tx.transfer(nbytes, latency=latency),
            dst.rx.transfer(nbytes),
        ]
        if self.core is not None:
            legs.append(self.core.transfer(nbytes))
        pending = len(legs)

        def _leg_done(_ev: Event) -> None:
            nonlocal pending
            pending -= 1
            if pending == 0:
                done.succeed()

        for leg in legs:
            if leg.processed:
                _leg_done(leg)
            else:
                leg.callbacks.append(_leg_done)
        return done
