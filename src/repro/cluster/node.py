"""Node and Disk devices."""

from __future__ import annotations

from typing import Optional

from repro.cluster.spec import DiskSpec, NodeSpec
from repro.sim import Container, Environment, Event, Resource, SharedBandwidth

__all__ = ["Disk", "Node"]


class Disk:
    """One spinning disk: a shared-bandwidth pipe plus per-request seek.

    Reads and writes share the same head/platter bandwidth, so a single
    pipe serves both directions — exactly the behaviour that penalises
    mixed read/write workloads on the paper's single-disk Hadoop nodes.
    """

    def __init__(self, env: Environment, spec: DiskSpec, name: str = "disk"):
        self.env = env
        self.spec = spec
        self.name = name
        self._pipe = SharedBandwidth(env, spec.bandwidth, name=name)

    def read(self, nbytes: float) -> Event:
        """Start a read of ``nbytes``; returns the completion event."""
        return self._pipe.transfer(nbytes, latency=self.spec.seek_latency)

    def write(self, nbytes: float) -> Event:
        """Start a write of ``nbytes``; returns the completion event."""
        return self._pipe.transfer(nbytes, latency=self.spec.seek_latency)

    @property
    def pipe(self) -> SharedBandwidth:
        """The underlying bandwidth pipe — exposed for metrics watchers."""
        return self._pipe

    @property
    def bytes_moved(self) -> float:
        return self._pipe.bytes_moved

    @property
    def n_active(self) -> int:
        return self._pipe.n_active


class Node:
    """A machine: CPU slots, memory container, disks, NIC pipes.

    The NIC is full duplex — independent ``tx`` and ``rx`` pipes at the
    link rate. The :class:`repro.cluster.network.Network` charges transfers
    against both endpoints' pipes.
    """

    def __init__(self, env: Environment, name: str, spec: Optional[NodeSpec] = None):
        self.env = env
        self.name = name
        self.spec = spec or NodeSpec()
        self.cpu = Resource(env, capacity=self.spec.cpus, name=f"{name}.cpu")
        self.memory = Container(
            env, capacity=self.spec.memory, init=0, name=f"{name}.mem")
        self.disks = [
            Disk(env, dspec, name=f"{name}.disk{i}")
            for i, dspec in enumerate(self.spec.disks)
        ]
        self.tx = SharedBandwidth(env, self.spec.nic.bandwidth, f"{name}.tx")
        self.rx = SharedBandwidth(env, self.spec.nic.bandwidth, f"{name}.rx")
        #: flattened copy of ``spec.nic.latency`` — the network charges it
        #: on every fabric transfer, so skip the two-level property chase
        self.nic_latency = self.spec.nic.latency

    @property
    def disk(self) -> Disk:
        """The first (often only) disk — convenience for compute nodes."""
        return self.disks[0]

    def compute(self, seconds: float) -> Event:
        """Pure CPU time. The caller is assumed to already hold a CPU slot
        (the MapReduce scheduler hands slots out); this just advances time.
        """
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        return self.env.timeout(seconds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} cpus={self.spec.cpus}>"
