"""Hardware specifications and Chameleon-like presets.

Bandwidth figures are the calibration anchors for every experiment; they
are chosen to match the devices named in §V-A of the paper:

- 10 GbE NIC → 1.25e9 B/s line rate, ~0.9 achievable.
- 7200 RPM SATA HDD → ~120 MB/s sequential, ~8 ms seek.
- 7200 RPM SAS HDD (storage nodes) → ~160 MB/s sequential.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DiskSpec",
    "LinkSpec",
    "NodeSpec",
    "MB",
    "GB",
    "chameleon_compute_spec",
    "chameleon_storage_spec",
    "scale_spec",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DiskSpec:
    """A single spinning disk."""

    bandwidth: float = 120 * MB  # sequential B/s
    seek_latency: float = 0.008  # s per request

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("disk bandwidth must be > 0")
        if self.seek_latency < 0:
            raise ValueError("seek latency must be >= 0")


@dataclass(frozen=True)
class LinkSpec:
    """A network interface (full duplex: tx and rx pipes of this size)."""

    bandwidth: float = 1.125e9  # 10 GbE at 90% efficiency, B/s
    latency: float = 0.0001     # s per message

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be > 0")
        if self.latency < 0:
            raise ValueError("link latency must be >= 0")


@dataclass(frozen=True)
class NodeSpec:
    """One physical machine."""

    cpus: int = 24
    memory: int = 128 * GB
    disks: tuple[DiskSpec, ...] = (DiskSpec(),)
    nic: LinkSpec = field(default_factory=LinkSpec)

    def __post_init__(self):
        if self.cpus < 1:
            raise ValueError("node needs at least one CPU")
        if self.memory <= 0:
            raise ValueError("node needs positive memory")
        if not self.disks:
            raise ValueError("node needs at least one disk")


def chameleon_compute_spec() -> NodeSpec:
    """Chameleon compute node: 2x12-core Xeon, 128 GB, 1 SATA HDD, 10 GbE."""
    return NodeSpec(
        cpus=24,
        memory=128 * GB,
        disks=(DiskSpec(bandwidth=120 * MB, seek_latency=0.008),),
        nic=LinkSpec(),
    )


def scale_spec(spec: NodeSpec, factor: float) -> NodeSpec:
    """Divide every *bandwidth* in ``spec`` by ``factor``; latencies stay.

    Used by the experiment harness: data scaled down by S on devices
    slowed by S takes exactly the time the full-size data would — see
    ``repro.costs.set_scale`` for the matching software-rate scaling.
    """
    if factor <= 0:
        raise ValueError("scale factor must be > 0")
    return NodeSpec(
        cpus=spec.cpus,
        memory=spec.memory,
        disks=tuple(
            DiskSpec(bandwidth=d.bandwidth / factor,
                     seek_latency=d.seek_latency)
            for d in spec.disks),
        nic=LinkSpec(bandwidth=spec.nic.bandwidth / factor,
                     latency=spec.nic.latency),
    )


def chameleon_storage_spec(n_disks: int = 16) -> NodeSpec:
    """Chameleon storage node: 64 GB, sixteen 2 TB SAS HDDs, 10 GbE."""
    return NodeSpec(
        cpus=24,
        memory=64 * GB,
        disks=tuple(
            DiskSpec(bandwidth=160 * MB, seek_latency=0.008)
            for _ in range(n_disks)
        ),
        nic=LinkSpec(),
    )
