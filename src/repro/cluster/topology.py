"""Cluster assembly: a set of nodes wired to one network fabric."""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.spec import (
    NodeSpec,
    chameleon_compute_spec,
    chameleon_storage_spec,
)
from repro.sim import Environment

__all__ = ["Cluster"]


class Cluster:
    """Named nodes plus the fabric. Compute and storage pools are tracked
    separately, mirroring the paper's two-cluster deployment (Fig. 1(c)).
    """

    def __init__(self, env: Environment,
                 core_bandwidth: Optional[float] = None):
        self.env = env
        self.network = Network(env, core_bandwidth=core_bandwidth)
        self.nodes: dict[str, Node] = {}
        self.compute_nodes: list[Node] = []
        self.storage_nodes: list[Node] = []

    def add_node(self, name: str, spec: Optional[NodeSpec] = None,
                 role: str = "compute") -> Node:
        """Create and register a node. ``role`` is 'compute' or 'storage'."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        if role not in ("compute", "storage"):
            raise ValueError(f"unknown role {role!r}")
        node = Node(self.env, name, spec)
        self.nodes[name] = node
        (self.compute_nodes if role == "compute"
         else self.storage_nodes).append(node)
        return node

    def __getitem__(self, name: str) -> Node:
        return self.nodes[name]

    def __len__(self) -> int:
        return len(self.nodes)

    @classmethod
    def chameleon(cls, env: Environment, n_compute: int = 8,
                  n_storage: int = 3,
                  disks_per_storage: int = 8) -> "Cluster":
        """Build the paper's testbed shape.

        §V-A: eight compute nodes as Hadoop slaves; three storage nodes for
        Lustre (one MGS, one MDS, and OSS nodes holding 24 OSTs total).
        ``disks_per_storage`` controls the OST count available per node.
        """
        cluster = cls(env)
        for i in range(n_compute):
            cluster.add_node(
                f"compute{i}", chameleon_compute_spec(), role="compute")
        for i in range(n_storage):
            cluster.add_node(
                f"storage{i}", chameleon_storage_spec(disks_per_storage),
                role="storage")
        return cluster
