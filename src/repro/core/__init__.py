"""SciDP — the paper's primary contribution.

Three components (§III, Fig. 3):

- :class:`~repro.core.explorer.FileExplorer` — Path Reader + Sci-format
  Head Reader: scans the PFS input path and classifies each file as flat
  or scientific.
- :class:`~repro.core.mapper.DataMapper` — builds the Virtual Mapping
  Table: dummy HDFS blocks mirroring flat-file segments (128 MB default)
  or chunk-aligned variable hyperslabs, registered in the NameNode as
  virtual files whose directory tree mirrors the scientific group tree.
- :class:`~repro.core.reader.PFSReader` — per-task reader that fetches a
  dummy block's PFS bytes in one request (flat) or the covering chunks of
  a hyperslab (scientific), decompressing on the way.

They plug into the MapReduce engine through
:class:`~repro.core.input_format.SciDPInputFormat` (the paper modifies
``FileInputFormat``/``MapTask``; we swap the input format, the engine's
equivalent extension point), and the whole system is driven through the
:class:`~repro.core.runtime.SciDP` facade.
"""

from repro.core.explorer import ExploredFile, FileExplorer
from repro.core.mapper import DataMapper, MappedFile, VirtualMappingTable
from repro.core.reader import PFSReader
from repro.core.input_format import SciDPInputFormat
from repro.core.runtime import SciDP

__all__ = [
    "DataMapper",
    "ExploredFile",
    "FileExplorer",
    "MappedFile",
    "PFSReader",
    "SciDP",
    "SciDPInputFormat",
    "VirtualMappingTable",
]
