"""File Explorer: Path Reader + Sci-format Head Reader (§III-A.1).

The Path Reader scans the PFS input path; the Sci-format Head Reader
attempts to open each file with every registered scientific format probe
(the paper calls ``nc_open`` / ``H5Fis_hdf5``). Recognised files carry
their parsed container header onward to the Data Mapper; everything else
is marked *flat*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.formats.container import ContainerHeader, read_header
from repro.formats.detect import FORMAT_FLAT, detect_format
from repro.pfs.client import PFSClient

__all__ = ["ExploredFile", "FileExplorer"]

#: Bytes of each file the Head Reader fetches to probe magic + header
#: length; headers larger than this cost a second fetch.
_PROBE_BYTES = 4096


@dataclass
class ExploredFile:
    """One classified input file."""

    path: str
    size: int
    format: str                      # "scinc" | "sdf5" | "flat"
    header: Optional[ContainerHeader] = None  # parsed, for scientific files

    @property
    def is_scientific(self) -> bool:
        return self.format != FORMAT_FLAT


class FileExplorer:
    """Scans and classifies a PFS input path."""

    def __init__(self, client: PFSClient):
        self.client = client
        self.env = client.env

    def explore(self, input_path: str, charge_io: bool = True,
                header_cache: Optional[dict] = None):
        """DES process returning a list of :class:`ExploredFile`.

        ``charge_io``: when True the header probes pay their PFS I/O time
        (a metadata RPC plus the probe reads). The functional parse uses
        the zero-time sync view — same bytes either way.

        ``header_cache``: optional ``{path: ExploredFile}`` dict shared
        across explorations. A hit reuses the parsed header and skips the
        probe reads entirely — the "header read once per file, cached"
        discipline the SQL planner relies on. Opt-in (None keeps the
        historical charge-per-exploration behaviour the golden timings
        pin).
        """
        paths = yield self.env.process(self.client.listdir(input_path))
        if not paths:
            # A single file rather than a directory?
            if self.client.pfs.mds.exists(input_path):
                paths = [self.client.pfs.mds.normalize(input_path)]
            else:
                return []
        explored: list[ExploredFile] = []
        for path in sorted(paths):
            if header_cache is not None and path in header_cache:
                explored.append(header_cache[path])
                continue
            inode = self.client.pfs.mds.lookup(path)
            if charge_io:
                probe = min(_PROBE_BYTES, inode.size)
                if probe:
                    yield self.env.process(
                        self.client.read(path, 0, probe))
            view = self.client.pfs.open_sync(path)
            fmt = detect_format(view)
            header = None
            if fmt != FORMAT_FLAT:
                view.seek(0)
                header = read_header(view)
                if charge_io:
                    remaining = header.data_start - min(
                        _PROBE_BYTES, inode.size)
                    if remaining > 0:
                        yield self.env.process(self.client.read(
                            path, _PROBE_BYTES, remaining))
            entry = ExploredFile(
                path=path, size=inode.size, format=fmt, header=header)
            if header_cache is not None:
                header_cache[path] = entry
            explored.append(entry)
        return explored
