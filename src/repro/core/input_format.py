"""SciDPInputFormat: the engine integration point (§IV-E.1).

The paper modifies Hadoop's ``FileInputFormat.addInputPath`` to intercept
paths carrying a PFS prefix (``gpfs://``, ``lustre://``) and ``MapTask``
to fetch through the PFS Reader. Our engine's extension point is the
input format, so this class does both jobs:

- ``get_splits``: PFS-prefixed paths run File Explorer + Data Mapper and
  yield one split per dummy block (no locations — the scheduler spreads
  them freely). Other paths fall through to a delegate input format, so
  "SciDP will behave as the original Hadoop and read data from HDFS".
- ``read_records``: dummy-block splits are served by a per-task
  :class:`PFSReader`; everything else delegates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.reader import PFSReader
from repro.io.registry import split_url
from repro.mapreduce.config import MapReduceError
from repro.mapreduce.input_format import InputSplit, TextInputFormat

__all__ = ["SciDPInputFormat"]


class SciDPInputFormat:
    def __init__(self, scidp, variables: Optional[list[str]] = None,
                 granularity: Optional[int] = None,
                 delegate=None, max_inflight: Optional[int] = None,
                 chunk_filter=None, filter_key: Optional[str] = None):
        """``scidp``: the :class:`repro.core.runtime.SciDP` runtime.
        ``variables``: variable-level subset for scientific inputs.
        ``granularity``: per-request read size (None = whole block, the
        SciDP default; 64 KiB = stock-Hadoop streaming for the ablation).
        ``delegate``: input format for non-PFS paths (TextInputFormat
        by default).
        ``max_inflight``: the readers' bounded request window (None =
        costs.PFS_MAX_INFLIGHT; 1 = strictly serial).
        ``chunk_filter``/``filter_key``: chunk-level mapping-time pruning
        (see :meth:`repro.core.runtime.SciDP.map_input`) — splits are
        only generated for chunks the filter keeps."""
        self.scidp = scidp
        self.variables = variables
        self.granularity = granularity
        self.delegate = delegate or TextInputFormat()
        self.max_inflight = max_inflight
        self.chunk_filter = chunk_filter
        self.filter_key = filter_key

    # -- splits ------------------------------------------------------------
    def get_splits(self, job, storage, client):
        """DES process returning list[InputSplit]."""
        splits: list[InputSplit] = []
        hdfs_paths = []
        for path in job.input_paths:
            scheme, pfs_path = split_url(path)
            if scheme and scheme == self.scidp.pfs_scheme:
                mapped = yield client.env.process(self.scidp.map_input(
                    pfs_path, variables=self.variables,
                    chunk_filter=self.chunk_filter,
                    filter_key=self.filter_key))
                for virtual_path, blocks in mapped:
                    for i, block in enumerate(blocks):
                        splits.append(InputSplit(
                            path=virtual_path,
                            index=i,
                            length=block.length,
                            locations=[],  # dummy blocks carry none
                            block=block,
                            meta={"virtual": block.virtual},
                        ))
            else:
                hdfs_paths.append(path)
        if hdfs_paths:
            sub_job = _JobView(job, hdfs_paths)
            splits.extend((yield client.env.process(
                self.delegate.get_splits(sub_job, storage, client))))
        if not splits:
            raise MapReduceError(f"no input found under {job.input_paths}")
        return splits

    # -- records ------------------------------------------------------------
    def read_records(self, split: InputSplit, client, ctx):
        """DES process returning records.

        Scientific dummy blocks produce a single record
        ``((source_path, variable, start), ndarray)``; flat dummy blocks
        produce ``((source_path, offset), bytes)``.
        """
        virtual = split.meta.get("virtual")
        if virtual is None:
            records = yield client.env.process(
                self.delegate.read_records(split, client, ctx))
            return records
        reader = PFSReader(
            self.scidp.pfs_client(ctx.node),
            granularity=self.granularity,
            track=getattr(ctx, "track", None),
            max_inflight=self.max_inflight,
            cache=getattr(ctx, "cache", None))
        data = yield client.env.process(reader.read_block(virtual))
        ctx.counters.increment("scidp", "blocks_read", 1)
        ctx.counters.increment("scidp", "bytes_fetched",
                               int(reader.bytes_fetched))
        ctx.counters.increment("scidp", "bytes_delivered",
                               int(reader.bytes_delivered))
        if virtual.hyperslab is None:
            key = (virtual.source_path, virtual.offset)
        else:
            key = (virtual.source_path, virtual.hyperslab["variable"],
                   tuple(virtual.hyperslab["start"]))
        return [(key, data)]

    # -- prefetch ------------------------------------------------------------
    def prefetch_split(self, split: InputSplit, client, cache, node):
        """Advisory background fetch of one split's stored bytes into
        ``node``'s read-ahead cache (the map runtime's double-buffering
        hook). DES process; non-PFS splits are a no-op."""
        virtual = split.meta.get("virtual") if split.meta else None
        if virtual is None or cache is None:
            return
        reader = PFSReader(
            self.scidp.pfs_client(node),
            granularity=self.granularity,
            track=f"{node.name}.prefetch",
            max_inflight=self.max_inflight,
            cache=cache)
        yield from reader.prefetch_block(virtual)


class _JobView:
    """A job facade with a restricted input path list for the delegate."""

    def __init__(self, job, input_paths):
        self._job = job
        self.input_paths = input_paths

    def __getattr__(self, name):
        return getattr(self._job, name)
