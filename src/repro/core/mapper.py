"""Data Mapper: the Virtual Mapping Table (§III-A.2, §III-B, Fig. 4).

Flat files map to fixed-size dummy blocks mirroring the file's segments
(128 MB by default). Scientific files map to a directory tree mirroring
the group structure, one virtual HDFS file per variable, with dummy
blocks aligned to the variable's compressed chunks. A user-tunable target
block size can split one chunk across several dummy blocks ("the second
chunk ... is mapped to two dummy blocks to split the workloads into two
tasks"); each sub-block's reader must then fetch the *whole* chunk —
the unaligned-access overhead §III-B warns about, and the subject of the
chunk-alignment ablation bench.

Dummy blocks carry no locations; only metadata reaches the NameNode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.explorer import ExploredFile
from repro.formats.container import VariableIndex
from repro.hdfs.block import DEFAULT_BLOCK_SIZE, VirtualBlock
from repro.hdfs.namenode import NameNode
from repro.io.plan import element_bytes

__all__ = ["DataMapper", "MappedFile", "VirtualMappingTable"]


@dataclass
class MappedFile:
    """One source file's mirror on HDFS."""

    source: ExploredFile
    virtual_paths: list[str] = field(default_factory=list)


class VirtualMappingTable:
    """virtual path -> (source file, variable path or None).

    The paper stores file/variable header information extracted via
    ``nc_inq``/``nc_inq_var`` here; our entries keep the parsed
    :class:`VariableIndex` so partitions are computed "without any
    indexing beforehand" (§III-A.2).
    """

    def __init__(self):
        self._entries: dict[str, tuple[ExploredFile, Optional[str]]] = {}

    def register(self, virtual_path: str, source: ExploredFile,
                 variable_path: Optional[str]) -> None:
        if virtual_path in self._entries:
            raise ValueError(f"virtual path {virtual_path!r} already mapped")
        self._entries[virtual_path] = (source, variable_path)

    def lookup(self, virtual_path: str) -> tuple[ExploredFile, Optional[str]]:
        return self._entries[virtual_path]

    def __contains__(self, virtual_path: str) -> bool:
        return virtual_path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def paths(self) -> list[str]:
        return list(self._entries)


def _leading_split(start: tuple[int, ...], count: tuple[int, ...],
                   pieces: int) -> list[tuple[tuple[int, ...],
                                              tuple[int, ...]]]:
    """Split a hyperslab into ``pieces`` along its first splittable axis.

    Chunks often have a leading extent of 1 (one z-level per chunk), so
    the split walks to the first axis with extent > 1.
    """
    if not count or pieces <= 1:
        return [(tuple(start), tuple(count))]
    axis = next((i for i, c in enumerate(count) if c > 1), None)
    if axis is None:
        return [(tuple(start), tuple(count))]
    lead = count[axis]
    pieces = min(pieces, lead)
    out = []
    base = lead // pieces
    extra = lead % pieces
    offset = start[axis]
    for i in range(pieces):
        extent = base + (1 if i < extra else 0)
        if extent == 0:
            continue
        sub_start = tuple(start[:axis]) + (offset,) + tuple(start[axis + 1:])
        sub_count = tuple(count[:axis]) + (extent,) + tuple(count[axis + 1:])
        out.append((sub_start, sub_count))
        offset += extent
    return out


class DataMapper:
    """Builds virtual files + dummy blocks from explored inputs."""

    def __init__(self, namenode: NameNode, mirror_root: str = "/scidp",
                 flat_block_size: int = DEFAULT_BLOCK_SIZE,
                 block_bytes: Optional[int] = None):
        """``block_bytes``: optional target raw bytes per dummy block for
        scientific variables (None = one block per chunk, the default
        chunk-aligned mapping)."""
        if flat_block_size < 1:
            raise ValueError("flat_block_size must be >= 1")
        if block_bytes is not None and block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        self.namenode = namenode
        self.mirror_root = mirror_root.rstrip("/")
        self.flat_block_size = flat_block_size
        self.block_bytes = block_bytes
        self.table = VirtualMappingTable()

    def _mirror_path(self, source_path: str,
                     variable_path: Optional[str] = None) -> str:
        base = f"{self.mirror_root}{source_path}"
        if variable_path:
            base = f"{base}{variable_path}"
        return base

    def map_files(self, explored: list[ExploredFile],
                  variables: Optional[list[str]] = None,
                  chunk_filter=None, path_suffix: str = ""):
        """DES process returning list[MappedFile].

        ``variables`` subsets scientific files at the variable level
        (§IV-B): entries match either the variable name or its full group
        path. Unrelated variables are skipped entirely, which also keeps
        the mapping table small ("minimize the time to build the mapping
        table", §III-B).

        ``chunk_filter``: optional ``(VariableIndex, ChunkRecord) ->
        bool`` predicate over a scientific variable's chunks; chunks it
        rejects get no dummy block, so their bytes never leave the PFS —
        the hook the SQL planner's zone-map pruning drives. Filtered
        mappings must pass a distinguishing ``path_suffix`` (appended to
        each virtual path) so they don't collide with — or get wrongly
        reused by — the unfiltered mapping of the same file in the
        Virtual Mapping Table.
        """
        mapped: list[MappedFile] = []
        for source in explored:
            record = MappedFile(source=source)
            if source.is_scientific:
                yield from self._map_scientific(
                    source, variables, record, chunk_filter, path_suffix)
            else:
                yield from self._map_flat(source, record)
            mapped.append(record)
        return mapped

    # -- flat ------------------------------------------------------------
    def _map_flat(self, source: ExploredFile, record: MappedFile):
        blocks = []
        pos = 0
        while pos < source.size:
            length = min(self.flat_block_size, source.size - pos)
            blocks.append(VirtualBlock(
                source_path=source.path, offset=pos, length=length))
            pos += length
        virtual_path = self._mirror_path(source.path)
        if virtual_path in self.table:  # reuse across jobs (§III-A.2)
            record.virtual_paths.append(virtual_path)
            return
        yield from self.namenode.rpc()
        self.namenode.create_virtual_file(virtual_path, blocks)
        self.table.register(virtual_path, source, None)
        record.virtual_paths.append(virtual_path)

    # -- scientific -------------------------------------------------------
    @staticmethod
    def _selected(var: VariableIndex,
                  variables: Optional[list[str]]) -> bool:
        if variables is None:
            return True
        return var.name in variables or var.path in variables

    def _variable_blocks(self, source: ExploredFile,
                         var: VariableIndex,
                         chunk_filter=None) -> list[VirtualBlock]:
        data_start = source.header.data_start
        blocks: list[VirtualBlock] = []
        for rec in var.chunks:
            if chunk_filter is not None and not chunk_filter(var, rec):
                continue
            slices = var.chunk_slices(rec.index)
            start = tuple(s.start for s in slices)
            count = tuple(s.stop - s.start for s in slices)
            pieces = 1
            if self.block_bytes is not None and \
                    rec.raw_nbytes > self.block_bytes:
                pieces = math.ceil(rec.raw_nbytes / self.block_bytes)
            chunk_meta = {
                "offset": data_start + rec.offset,
                "nbytes": rec.nbytes,
                "raw_nbytes": rec.raw_nbytes,
                "index": list(rec.index),
                "start": list(start),
                "count": list(count),
            }
            sub_slabs = _leading_split(start, count, pieces)
            for sub_start, sub_count in sub_slabs:
                raw_sub = element_bytes(var.dtype, sub_count,
                                        scalar_when_empty=True)
                frac = raw_sub / max(1, rec.raw_nbytes)
                blocks.append(VirtualBlock(
                    source_path=source.path,
                    offset=data_start + rec.offset,
                    length=max(1, int(rec.nbytes * frac)),
                    hyperslab={
                        "container": source.format,
                        "variable": var.path,
                        "dtype": var.dtype.str,
                        "shape": list(var.shape),
                        "start": list(sub_start),
                        "count": list(sub_count),
                        "compressed": var.compressed,
                        "chunks": [chunk_meta],
                        "aligned": len(sub_slabs) == 1,
                    },
                ))
        return blocks

    def _map_scientific(self, source: ExploredFile,
                        variables: Optional[list[str]],
                        record: MappedFile,
                        chunk_filter=None, path_suffix: str = ""):
        assert source.header is not None
        for var_path in source.header.variable_paths():
            var = source.header.variable(var_path)
            if not self._selected(var, variables):
                continue
            virtual_path = self._mirror_path(
                source.path, var.path) + path_suffix
            if virtual_path in self.table:  # reuse across jobs (§III-A.2)
                record.virtual_paths.append(virtual_path)
                continue
            blocks = self._variable_blocks(source, var, chunk_filter)
            if chunk_filter is not None and not blocks:
                continue  # every chunk pruned: no virtual file at all
            yield from self.namenode.rpc()
            self.namenode.create_virtual_file(virtual_path, blocks)
            self.table.register(virtual_path, source, var.path)
            record.virtual_paths.append(virtual_path)
