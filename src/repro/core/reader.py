"""PFS Reader: per-task direct PFS access (§III-A.3).

Each map task spawns one reader; readers on different tasks/nodes run in
parallel, which is where SciDP's aggregate bandwidth comes from (Fig. 6).
Two behaviours the paper calls out are modelled exactly:

- **Whole-block single request**: "The original Hadoop reads 64KB data at
  a time ... SciDP reads the entire block in a single I/O request to
  maximize the bandwidth." ``granularity=None`` issues one request;
  setting it to 64 KiB reproduces Hadoop's streaming behaviour for the
  ablation bench.
- **Decompression inside the read**: Fig. 6's SciDP bandwidth divides by
  an I/O time that "includes both the actual data access time and the
  decompression time".

The request machinery — granularity chopping, the bounded in-flight
window, and the read-ahead-cache join-in-flight protocol — is the
shared :class:`repro.io.planner.ReadPlanner` (``scidp`` scheme); this
class keeps only what is reader-specific: hyperslab reassembly,
decompression, and the fetched/delivered byte accounting.
``max_inflight=1`` restores the serial behaviour exactly.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from repro import costs
from repro.hdfs.block import VirtualBlock
from repro.io.plan import block_raw_bytes
from repro.io.planner import ReadPlanner
from repro.obs.trace import tracer_of
from repro.pfs.client import PFSClient
from repro.sim.cache import ReadAheadCache

__all__ = ["PFSReader"]


class PFSReader:
    """Reads dummy blocks' data straight from the PFS."""

    def __init__(self, client: PFSClient,
                 granularity: Optional[int] = None,
                 request_overhead: float = costs.PFS_REQUEST_OVERHEAD,
                 track: Optional[str] = None,
                 max_inflight: Optional[int] = None,
                 cache: Optional[ReadAheadCache] = None):
        if max_inflight is None:
            max_inflight = costs.PFS_MAX_INFLIGHT
        self.client = client
        self.env = client.env
        #: the shared planner: chopping, window, cache join-in-flight
        self.planner = ReadPlanner(
            client.env, scheme="scidp", granularity=granularity,
            request_overhead=request_overhead, max_inflight=max_inflight,
            cache=cache)
        #: trace swimlane for this reader's spans (the owning task's)
        self.track = track or f"{client.node.name}.pfs"
        #: stored (possibly compressed) bytes fetched
        self.bytes_fetched = 0
        #: raw bytes delivered after decompression
        self.bytes_delivered = 0

    # -- planner passthroughs (legacy surface) -----------------------------
    @property
    def granularity(self) -> Optional[int]:
        return self.planner.granularity

    @property
    def request_overhead(self) -> float:
        return self.planner.request_overhead

    @property
    def max_inflight(self) -> int:
        return self.planner.max_inflight

    @property
    def cache(self) -> Optional[ReadAheadCache]:
        return self.planner.cache

    def _fetch(self, path: str):
        """The piece-fetch thunk handed to the planner."""
        return lambda pos, n: self.client.read(path, pos, n)

    # -- public API ----------------------------------------------------------
    def read_block(self, block: VirtualBlock):
        """DES process returning bytes (flat) or ndarray (scientific)."""
        fetched0, delivered0 = self.bytes_fetched, self.bytes_delivered
        with tracer_of(self.env).span(
                "pfs.read_block", cat="storage", track=self.track,
                path=block.source_path) as span:
            if block.hyperslab is None:
                data = yield from self._read_flat(block)
            else:
                data = yield from self._read_hyperslab(block)
            span.set(fetched=int(self.bytes_fetched - fetched0),
                     delivered=int(self.bytes_delivered - delivered0))
        return data

    def prefetch_block(self, block: VirtualBlock):
        """Fetch a block's stored bytes (into the cache) without
        decompressing or assembling — the map runtime's double-buffered
        read-ahead. DES process; advisory, the data is discarded."""
        with tracer_of(self.env).span(
                "pfs.prefetch_block", cat="storage", track=self.track,
                path=block.source_path):
            if block.hyperslab is None:
                ranges = [(block.offset, block.length)]
            else:
                ranges = [(chunk["offset"], chunk["nbytes"])
                          for chunk in block.hyperslab["chunks"]]
            pieces = self.planner.plan(ranges).pieces
            yield from self.planner.fetch_pieces(
                block.source_path, pieces, self._fetch(block.source_path),
                prefetching=True)

    def _read_flat(self, block: VirtualBlock):
        data = yield self.env.process(self.planner.fetch_range(
            block.source_path, block.offset, block.length,
            self._fetch(block.source_path)))
        self.bytes_fetched += len(data)
        self.bytes_delivered += len(data)
        return data

    def _read_hyperslab(self, block: VirtualBlock):
        slab = block.hyperslab
        dtype = np.dtype(slab["dtype"])
        start = tuple(slab["start"])
        count = tuple(slab["count"])
        out = np.empty(count, dtype=dtype)
        chunks = slab["chunks"]
        fetch = self._fetch(block.source_path)

        if self.max_inflight == 1 or len(chunks) == 1:
            # Serial (or single-request) path: fetch chunk by chunk, the
            # exact event sequence of the pre-pipelining reader.
            stored_chunks = []
            for chunk in chunks:
                stored_chunks.append((yield self.env.process(
                    self.planner.fetch_range(
                        block.source_path, chunk["offset"],
                        chunk["nbytes"], fetch))))
        else:
            # Pipelined path: every chunk's request pieces share one
            # bounded in-flight window across the whole block.
            spans = []
            pieces: list[tuple[int, int]] = []
            for chunk in chunks:
                chopped = self.planner.plan(
                    [(chunk["offset"], chunk["nbytes"])]).pieces
                spans.append((len(pieces), len(pieces) + len(chopped)))
                pieces.extend(chopped)
            parts = yield from self.planner.fetch_pieces(
                block.source_path, pieces, fetch)
            stored_chunks = [
                parts[lo] if hi - lo == 1 else b"".join(parts[lo:hi])
                for lo, hi in spans
            ]

        raw_total = 0
        for chunk, stored in zip(chunks, stored_chunks):
            self.bytes_fetched += len(stored)
            raw = zlib.decompress(stored) if slab["compressed"] else stored
            if len(raw) != chunk["raw_nbytes"]:
                raise ValueError(
                    f"chunk payload mismatch for {block.source_path}: "
                    f"{len(raw)} != {chunk['raw_nbytes']}")
            raw_total += len(raw)
            chunk_start = tuple(chunk["start"])
            chunk_count = tuple(chunk["count"])
            arr = np.frombuffer(raw, dtype=dtype).reshape(chunk_count)
            src, dst = [], []
            for cs, cc, bs, bc in zip(chunk_start, chunk_count,
                                      start, count):
                lo = max(cs, bs)
                hi = min(cs + cc, bs + bc)
                src.append(slice(lo - cs, hi - cs))
                dst.append(slice(lo - bs, hi - bs))
            out[tuple(dst)] = arr[tuple(src)]

        if slab["compressed"] and raw_total:
            yield self.env.timeout(
                raw_total / costs.DECOMPRESS_BYTES_PER_SEC)
        self.bytes_delivered += out.nbytes
        return out

    # -- diagnostics -----------------------------------------------------------
    @staticmethod
    def block_raw_bytes(block: VirtualBlock) -> int:
        """Uncompressed payload size of a dummy block.

        Delegates to the shared byte-counting helper
        :func:`repro.io.plan.block_raw_bytes`, so reader-side and
        planner-side byte accounting can never drift.
        """
        return block_raw_bytes(block)
