"""PFS Reader: per-task direct PFS access (§III-A.3).

Each map task spawns one reader; readers on different tasks/nodes run in
parallel, which is where SciDP's aggregate bandwidth comes from (Fig. 6).
Two behaviours the paper calls out are modelled exactly:

- **Whole-block single request**: "The original Hadoop reads 64KB data at
  a time ... SciDP reads the entire block in a single I/O request to
  maximize the bandwidth." ``granularity=None`` issues one request;
  setting it to 64 KiB reproduces Hadoop's streaming behaviour for the
  ablation bench.
- **Decompression inside the read**: Fig. 6's SciDP bandwidth divides by
  an I/O time that "includes both the actual data access time and the
  decompression time".
"""

from __future__ import annotations

import math
import zlib
from typing import Optional

import numpy as np

from repro import costs
from repro.hdfs.block import VirtualBlock
from repro.obs.trace import tracer_of
from repro.pfs.client import PFSClient

__all__ = ["PFSReader"]


class PFSReader:
    """Reads dummy blocks' data straight from the PFS."""

    def __init__(self, client: PFSClient,
                 granularity: Optional[int] = None,
                 request_overhead: float = costs.PFS_REQUEST_OVERHEAD,
                 track: Optional[str] = None):
        if granularity is not None and granularity < 1:
            raise ValueError("granularity must be >= 1")
        self.client = client
        self.env = client.env
        self.granularity = granularity
        self.request_overhead = request_overhead
        #: trace swimlane for this reader's spans (the owning task's)
        self.track = track or f"{client.node.name}.pfs"
        #: stored (possibly compressed) bytes fetched
        self.bytes_fetched = 0
        #: raw bytes delivered after decompression
        self.bytes_delivered = 0

    # -- low-level fetch ---------------------------------------------------
    def _fetch_range(self, path: str, offset: int, length: int):
        """Fetch one byte range, whole or chopped. DES process."""
        if self.granularity is None:
            yield self.env.timeout(self.request_overhead)
            data = yield self.env.process(
                self.client.read(path, offset, length))
            return data
        parts = []
        pos = offset
        end = offset + length
        while pos < end:
            piece = min(self.granularity, end - pos)
            yield self.env.timeout(self.request_overhead)
            parts.append((yield self.env.process(
                self.client.read(path, pos, piece))))
            pos += piece
        return b"".join(parts)

    # -- public API ----------------------------------------------------------
    def read_block(self, block: VirtualBlock):
        """DES process returning bytes (flat) or ndarray (scientific)."""
        fetched0, delivered0 = self.bytes_fetched, self.bytes_delivered
        with tracer_of(self.env).span(
                "pfs.read_block", cat="storage", track=self.track,
                path=block.source_path) as span:
            if block.hyperslab is None:
                data = yield from self._read_flat(block)
            else:
                data = yield from self._read_hyperslab(block)
            span.set(fetched=int(self.bytes_fetched - fetched0),
                     delivered=int(self.bytes_delivered - delivered0))
        return data

    def _read_flat(self, block: VirtualBlock):
        data = yield self.env.process(self._fetch_range(
            block.source_path, block.offset, block.length))
        self.bytes_fetched += len(data)
        self.bytes_delivered += len(data)
        return data

    def _read_hyperslab(self, block: VirtualBlock):
        slab = block.hyperslab
        dtype = np.dtype(slab["dtype"])
        start = tuple(slab["start"])
        count = tuple(slab["count"])
        out = np.empty(count, dtype=dtype)

        raw_total = 0
        for chunk in slab["chunks"]:
            stored = yield self.env.process(self._fetch_range(
                block.source_path, chunk["offset"], chunk["nbytes"]))
            self.bytes_fetched += len(stored)
            raw = zlib.decompress(stored) if slab["compressed"] else stored
            if len(raw) != chunk["raw_nbytes"]:
                raise ValueError(
                    f"chunk payload mismatch for {block.source_path}: "
                    f"{len(raw)} != {chunk['raw_nbytes']}")
            raw_total += len(raw)
            chunk_start = tuple(chunk["start"])
            chunk_count = tuple(chunk["count"])
            arr = np.frombuffer(raw, dtype=dtype).reshape(chunk_count)
            src, dst = [], []
            for cs, cc, bs, bc in zip(chunk_start, chunk_count,
                                      start, count):
                lo = max(cs, bs)
                hi = min(cs + cc, bs + bc)
                src.append(slice(lo - cs, hi - cs))
                dst.append(slice(lo - bs, hi - bs))
            out[tuple(dst)] = arr[tuple(src)]

        if slab["compressed"] and raw_total:
            yield self.env.timeout(
                raw_total / costs.DECOMPRESS_BYTES_PER_SEC)
        self.bytes_delivered += out.nbytes
        return out

    # -- diagnostics -----------------------------------------------------------
    @staticmethod
    def block_raw_bytes(block: VirtualBlock) -> int:
        """Uncompressed payload size of a dummy block."""
        if block.hyperslab is None:
            return block.length
        slab = block.hyperslab
        return (np.dtype(slab["dtype"]).itemsize
                * math.prod(slab["count"]) if slab["count"] else
                np.dtype(slab["dtype"]).itemsize)
