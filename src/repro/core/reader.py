"""PFS Reader: per-task direct PFS access (§III-A.3).

Each map task spawns one reader; readers on different tasks/nodes run in
parallel, which is where SciDP's aggregate bandwidth comes from (Fig. 6).
Two behaviours the paper calls out are modelled exactly:

- **Whole-block single request**: "The original Hadoop reads 64KB data at
  a time ... SciDP reads the entire block in a single I/O request to
  maximize the bandwidth." ``granularity=None`` issues one request;
  setting it to 64 KiB reproduces Hadoop's streaming behaviour for the
  ablation bench.
- **Decompression inside the read**: Fig. 6's SciDP bandwidth divides by
  an I/O time that "includes both the actual data access time and the
  decompression time".

When a block decomposes into several requests (multiple compressed
chunks, or a granularity-chopped range), the reader issues them as a
bounded in-flight window (``max_inflight``) instead of strictly
serially, with the per-request overhead accounted concurrently —
the pipelined parallel data path. ``max_inflight=1`` restores the
serial behaviour exactly. An optional per-node
:class:`~repro.sim.cache.ReadAheadCache` serves repeated or prefetched
ranges without refetching.
"""

from __future__ import annotations

import math
import zlib
from typing import Optional

import numpy as np

from repro import costs
from repro.hdfs.block import VirtualBlock
from repro.obs.trace import tracer_of
from repro.pfs.client import PFSClient
from repro.sim.cache import ReadAheadCache
from repro.sim.pipeline import bounded_fanout

__all__ = ["PFSReader"]


class PFSReader:
    """Reads dummy blocks' data straight from the PFS."""

    def __init__(self, client: PFSClient,
                 granularity: Optional[int] = None,
                 request_overhead: float = costs.PFS_REQUEST_OVERHEAD,
                 track: Optional[str] = None,
                 max_inflight: Optional[int] = None,
                 cache: Optional[ReadAheadCache] = None):
        if granularity is not None and granularity < 1:
            raise ValueError("granularity must be >= 1")
        if max_inflight is None:
            max_inflight = costs.PFS_MAX_INFLIGHT
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 = unbounded)")
        self.client = client
        self.env = client.env
        self.granularity = granularity
        self.request_overhead = request_overhead
        #: in-flight request window; 1 = serial, 0 = unbounded
        self.max_inflight = max_inflight
        #: optional node-level read-ahead cache of stored byte ranges
        self.cache = cache
        #: trace swimlane for this reader's spans (the owning task's)
        self.track = track or f"{client.node.name}.pfs"
        #: stored (possibly compressed) bytes fetched
        self.bytes_fetched = 0
        #: raw bytes delivered after decompression
        self.bytes_delivered = 0

    # -- low-level fetch ---------------------------------------------------
    def _chop(self, offset: int, length: int) -> list[tuple[int, int]]:
        """(pos, nbytes) request pieces for one byte range."""
        if self.granularity is None:
            return [(offset, length)]
        pieces = []
        pos = offset
        end = offset + length
        while pos < end:
            piece = min(self.granularity, end - pos)
            pieces.append((pos, piece))
            pos += piece
        return pieces

    def _fetch_piece(self, path: str, pos: int, length: int,
                     prefetching: bool = False):
        """Fetch one request-sized piece, through the cache when present.
        DES (sub)process — drive with ``yield from`` or ``env.process``."""
        cache = self.cache
        if cache is not None:
            key = (path, pos, length)
            data = cache.get(key)
            if data is not None:
                return data
            waiter = cache.join(key)
            if waiter is not None:
                data = yield waiter
                return data
            reservation = cache.reserve(key)
            try:
                yield self.env.timeout(self.request_overhead)
                data = yield self.env.process(
                    self.client.read(path, pos, length))
            except BaseException as exc:
                reservation.abort(exc)
                raise
            reservation.fill(data, prefetched=prefetching)
            return data
        yield self.env.timeout(self.request_overhead)
        data = yield self.env.process(self.client.read(path, pos, length))
        return data

    def _fetch_range(self, path: str, offset: int, length: int):
        """Fetch one byte range, whole or chopped. DES process."""
        pieces = self._chop(offset, length)
        if len(pieces) == 1:
            data = yield from self._fetch_piece(path, *pieces[0])
            return data
        if self.max_inflight == 1:
            parts = []
            for pos, n in pieces:
                parts.append((yield from self._fetch_piece(path, pos, n)))
        else:
            parts = yield from bounded_fanout(
                self.env,
                [lambda pos=pos, n=n: self._fetch_piece(path, pos, n)
                 for pos, n in pieces],
                self.max_inflight)
        return b"".join(parts)

    # -- public API ----------------------------------------------------------
    def read_block(self, block: VirtualBlock):
        """DES process returning bytes (flat) or ndarray (scientific)."""
        fetched0, delivered0 = self.bytes_fetched, self.bytes_delivered
        with tracer_of(self.env).span(
                "pfs.read_block", cat="storage", track=self.track,
                path=block.source_path) as span:
            if block.hyperslab is None:
                data = yield from self._read_flat(block)
            else:
                data = yield from self._read_hyperslab(block)
            span.set(fetched=int(self.bytes_fetched - fetched0),
                     delivered=int(self.bytes_delivered - delivered0))
        return data

    def prefetch_block(self, block: VirtualBlock):
        """Fetch a block's stored bytes (into the cache) without
        decompressing or assembling — the map runtime's double-buffered
        read-ahead. DES process; advisory, the data is discarded."""
        with tracer_of(self.env).span(
                "pfs.prefetch_block", cat="storage", track=self.track,
                path=block.source_path):
            if block.hyperslab is None:
                ranges = [(block.offset, block.length)]
            else:
                ranges = [(chunk["offset"], chunk["nbytes"])
                          for chunk in block.hyperslab["chunks"]]
            pieces = [piece for off, length in ranges
                      for piece in self._chop(off, length)]
            if self.max_inflight == 1 or len(pieces) == 1:
                for pos, n in pieces:
                    yield from self._fetch_piece(
                        block.source_path, pos, n, prefetching=True)
            else:
                yield from bounded_fanout(
                    self.env,
                    [lambda pos=pos, n=n: self._fetch_piece(
                        block.source_path, pos, n, prefetching=True)
                     for pos, n in pieces],
                    self.max_inflight)

    def _read_flat(self, block: VirtualBlock):
        data = yield self.env.process(self._fetch_range(
            block.source_path, block.offset, block.length))
        self.bytes_fetched += len(data)
        self.bytes_delivered += len(data)
        return data

    def _read_hyperslab(self, block: VirtualBlock):
        slab = block.hyperslab
        dtype = np.dtype(slab["dtype"])
        start = tuple(slab["start"])
        count = tuple(slab["count"])
        out = np.empty(count, dtype=dtype)
        chunks = slab["chunks"]

        if self.max_inflight == 1 or len(chunks) == 1:
            # Serial (or single-request) path: fetch chunk by chunk, the
            # exact event sequence of the pre-pipelining reader.
            stored_chunks = []
            for chunk in chunks:
                stored_chunks.append((yield self.env.process(
                    self._fetch_range(block.source_path, chunk["offset"],
                                      chunk["nbytes"]))))
        else:
            # Pipelined path: every chunk's request pieces share one
            # bounded in-flight window across the whole block.
            spans = []
            pieces: list[tuple[int, int]] = []
            for chunk in chunks:
                chopped = self._chop(chunk["offset"], chunk["nbytes"])
                spans.append((len(pieces), len(pieces) + len(chopped)))
                pieces.extend(chopped)
            parts = yield from bounded_fanout(
                self.env,
                [lambda pos=pos, n=n: self._fetch_piece(
                    block.source_path, pos, n) for pos, n in pieces],
                self.max_inflight)
            stored_chunks = [
                parts[lo] if hi - lo == 1 else b"".join(parts[lo:hi])
                for lo, hi in spans
            ]

        raw_total = 0
        for chunk, stored in zip(chunks, stored_chunks):
            self.bytes_fetched += len(stored)
            raw = zlib.decompress(stored) if slab["compressed"] else stored
            if len(raw) != chunk["raw_nbytes"]:
                raise ValueError(
                    f"chunk payload mismatch for {block.source_path}: "
                    f"{len(raw)} != {chunk['raw_nbytes']}")
            raw_total += len(raw)
            chunk_start = tuple(chunk["start"])
            chunk_count = tuple(chunk["count"])
            arr = np.frombuffer(raw, dtype=dtype).reshape(chunk_count)
            src, dst = [], []
            for cs, cc, bs, bc in zip(chunk_start, chunk_count,
                                      start, count):
                lo = max(cs, bs)
                hi = min(cs + cc, bs + bc)
                src.append(slice(lo - cs, hi - cs))
                dst.append(slice(lo - bs, hi - bs))
            out[tuple(dst)] = arr[tuple(src)]

        if slab["compressed"] and raw_total:
            yield self.env.timeout(
                raw_total / costs.DECOMPRESS_BYTES_PER_SEC)
        self.bytes_delivered += out.nbytes
        return out

    # -- diagnostics -----------------------------------------------------------
    @staticmethod
    def block_raw_bytes(block: VirtualBlock) -> int:
        """Uncompressed payload size of a dummy block.

        A zero-dimensional hyperslab (empty ``count``) selects nothing
        and reports 0 bytes.
        """
        if block.hyperslab is None:
            return block.length
        slab = block.hyperslab
        if not slab["count"]:
            return 0
        return np.dtype(slab["dtype"]).itemsize * math.prod(slab["count"])
