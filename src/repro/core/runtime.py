"""The SciDP facade: wiring PFS, HDFS, engine, and the R layer together."""

from __future__ import annotations

from typing import Optional

from repro.core.explorer import FileExplorer
from repro.core.mapper import DataMapper
from repro.core.input_format import SciDPInputFormat
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.io.registry import StorageRegistry, split_url
from repro.pfs.client import PFSClient

__all__ = ["SciDP"]


class SciDP:
    """One SciDP deployment over a compute cluster.

    Parameters mirror the paper's configuration surface: the PFS prefix
    added at job submission (§IV-E.1), the flat-file dummy block size
    (128 MB default), and the optional target block size for splitting
    variable chunks (§III-B block-size tuning).
    """

    def __init__(self, env, nodes, pfs, hdfs, network,
                 prefix: str = "pfs://",
                 mirror_root: str = "/scidp",
                 flat_block_size: int = DEFAULT_BLOCK_SIZE,
                 block_bytes: Optional[int] = None):
        self.env = env
        self.nodes = list(nodes)
        self.pfs = pfs
        self.hdfs = hdfs
        self.network = network
        self.prefix = prefix
        #: scheme the job-submission prefix names (``pfs://`` → ``pfs``;
        #: site-specific prefixes like ``gpfs://`` alias the same PFS)
        self.pfs_scheme = split_url(prefix)[0] or "pfs"
        #: the unified storage registry: scheme-less paths are HDFS (the
        #: "SciDP will behave as the original Hadoop" fallback)
        self.storage = StorageRegistry(default_scheme="hdfs")
        self.storage.register("hdfs", hdfs)
        self.storage.register("pfs", pfs)
        if self.pfs_scheme != "pfs":
            self.storage.register(self.pfs_scheme, pfs)
        self.mapper = DataMapper(
            hdfs.namenode, mirror_root=mirror_root,
            flat_block_size=flat_block_size, block_bytes=block_bytes)
        self._pfs_clients: dict[str, PFSClient] = {}
        #: mapping cache: (pfs_path, variables key) -> mapped entries
        self._mapped: dict[tuple, list] = {}

    # -- clients ---------------------------------------------------------
    def pfs_client(self, node) -> PFSClient:
        if node.name not in self._pfs_clients:
            self._pfs_clients[node.name] = PFSClient(self.pfs, node)
        return self._pfs_clients[node.name]

    def pfs_reader(self, node, granularity: Optional[int] = None,
                   max_inflight: Optional[int] = None, cache=None,
                   track: Optional[str] = None):
        """A :class:`~repro.core.reader.PFSReader` bound to ``node``'s
        PFS client — the sanctioned way for engines above the I/O plane
        (e.g. :mod:`repro.sparklike`) to read dummy blocks without
        importing storage internals."""
        from repro.core.reader import PFSReader
        return PFSReader(self.pfs_client(node), granularity=granularity,
                         max_inflight=max_inflight, cache=cache,
                         track=track)

    # -- mapping -----------------------------------------------------------
    def map_input(self, pfs_path: str,
                  variables: Optional[list[str]] = None,
                  chunk_filter=None, filter_key: Optional[str] = None,
                  header_cache: Optional[dict] = None):
        """Explore + map one PFS input path. DES process returning
        ``[(virtual_path, [BlockInfo, ...]), ...]``. Cached: repeated jobs
        over the same input reuse the Virtual Mapping Table.

        ``chunk_filter`` prunes individual variable chunks at mapping
        time (see :meth:`DataMapper.map_files`); it must come with a
        ``filter_key`` naming the predicate, which suffixes the virtual
        paths (``...@key``) and keys the mapping cache so differently
        filtered mappings of the same input never alias. ``header_cache``
        optionally shares parsed headers across explorations
        (see :meth:`FileExplorer.explore`).
        """
        if chunk_filter is not None and not filter_key:
            raise ValueError("chunk_filter requires a filter_key")
        key = (pfs_path, tuple(sorted(variables)) if variables else None,
               filter_key)
        if key in self._mapped:
            return self._mapped[key]
        explorer = FileExplorer(self.pfs_client(self.nodes[0]))
        explored = yield self.env.process(explorer.explore(
            pfs_path, header_cache=header_cache))
        mapped = yield self.env.process(self.mapper.map_files(
            explored, variables=variables, chunk_filter=chunk_filter,
            path_suffix=f"@{filter_key}" if filter_key else ""))
        entries = []
        for record in mapped:
            for virtual_path in record.virtual_paths:
                blocks = self.hdfs.namenode.get_block_locations(virtual_path)
                entries.append((virtual_path, blocks))
        self._mapped[key] = entries
        return entries

    # -- engine glue -----------------------------------------------------
    def input_format(self, variables: Optional[list[str]] = None,
                     granularity: Optional[int] = None,
                     delegate=None,
                     max_inflight: Optional[int] = None,
                     chunk_filter=None,
                     filter_key: Optional[str] = None) -> SciDPInputFormat:
        return SciDPInputFormat(
            self, variables=variables, granularity=granularity,
            delegate=delegate, max_inflight=max_inflight,
            chunk_filter=chunk_filter, filter_key=filter_key)

    def rmr_session(self, master_node=None):
        """An rmr2-style session whose jobs run on this deployment."""
        from repro.rlang.rmr import RMRSession
        return RMRSession(self.env, self.nodes, self.hdfs, self.network,
                          master_node=master_node)

    def run_job(self, job):
        """Run a JobConf on this deployment. DES process -> JobResult."""
        from repro.mapreduce.runtime import JobRunner
        runner = JobRunner(self.env, self.nodes, self.hdfs,
                           self.network, job)
        result = yield self.env.process(runner.run())
        return result
