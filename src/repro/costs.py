"""Calibration constants for the performance layer.

Single source of truth for every simulated compute rate. Device rates
(disk, NIC) live in :mod:`repro.cluster.spec`; these are the *software*
costs. Values are anchored to figures stated in the paper or to ordinary
hardware behaviour, and each experiment's sensitivity to them is noted in
EXPERIMENTS.md.

The paper's anchors:

- §IV-B: converted text is ~33x the compressed netCDF size; converting
  14 GB takes over an hour → conversion ≈ a few MB/s.
- §V-D (Fig. 7): baselines' R ``read.table`` Convert dominates the task;
  SciDP's binary→R conversion is "a very short time".
- §V-D: Read ≈ 2 s/task for the baselines, 0.035 s/level for SciDP;
  Plot ≈ equal across parallel solutions.
- netCDF-4/zlib behaviour: decompression ~400 MB/s, compression slower.
"""

from __future__ import annotations

MB = 1024.0 * 1024.0

#: zlib inflate throughput (decompressing SCNC chunks), bytes/s.
DECOMPRESS_BYTES_PER_SEC = 400 * MB

#: zlib deflate throughput (the conversion path compresses nothing, but
#: synthetic data generation and any re-chunking pay this), bytes/s.
COMPRESS_BYTES_PER_SEC = 80 * MB

#: R ``read.table``: sequential text→typed-columns parsing, bytes of text
#: per second. R is famously slow here (~10-20 MB/s without colClasses);
#: 12 MB/s also reproduces the paper's Fig. 5 solution ordering and its
#: 284.63x naive-vs-SciDP extreme (we measure ~269x at this rate).
TEXT_PARSE_BYTES_PER_SEC = 12 * MB

#: Binary ndarray → R data.frame conversion (SciDP path): a typed copy.
BINARY_CONVERT_BYTES_PER_SEC = 2000 * MB

#: netCDF/scientific-format → text dump rate (offline conversion step the
#: baselines need; §V-A measures >1 h for 14 GB ⇒ ~4 MB/s of source data).
FORMAT_CONVERT_BYTES_PER_SEC = 4 * MB

#: SQL engine throughput for the Anlys workload, rows/s. A top-k scan is
#: a single vectorised pass; Fig. 9 requires the highlight query to be
#: nearly free next to the ~0.06 s plot, which 5e7 rows/s delivers for a
#: 1.56M-row level.
SQL_ROWS_PER_SEC = 5.0e7

#: Per-SQL-query fixed planning cost, seconds.
SQL_QUERY_OVERHEAD = 0.002

#: Hadoop's streaming read granularity (§III-A.3: "The original Hadoop
#: reads 64KB data at a time"); SciDP reads the whole block in one
#: request. Used by the read-granularity ablation.
HADOOP_STREAM_READ_BYTES = 64 * 1024

#: Per-read-request software overhead at the PFS client (RPC handling),
#: seconds. Multiplies up under 64 KB streaming, vanishes for SciDP's
#: single whole-block request.
PFS_REQUEST_OVERHEAD = 0.0008

#: Default bounded in-flight window for a PFS Reader's chunk and
#: granularity-chopped range requests. 1 = strictly serial (the
#: pre-pipelining behaviour); Lustre clients default to a handful of
#: RPCs in flight per target.
PFS_MAX_INFLIGHT = 4

#: Default per-OST-run fan-out bound in ``PFSClient.read_extents``.
#: 0 = unbounded (every coalesced run issued at once), the historical
#: behaviour; large collective reads can bound it to model client RPC
#: slot limits.
PFS_CLIENT_MAX_INFLIGHT = 0

#: Default node read-ahead cache capacity (bytes) when a job enables
#: prefetch without sizing ``readahead_cache_bytes`` itself.
READAHEAD_CACHE_BYTES = 256 * 1024 * 1024

#: HDFS write-pipeline packet size (real DataNode pipelines stream
#: 64 KB packets down the replication chain, so hop N→N+1 overlaps hop
#: N−1→N). Clients default to ``None`` = legacy whole-block
#: store-and-forward; this is the size to use when enabling it.
HDFS_PACKET_BYTES = 64 * 1024

#: Default window of concurrent in-flight blocks in ``DFSClient.write``.
#: 1 = strictly sequential blocks (the stock output-stream behaviour);
#: >1 or 0 pushes that many block pipelines at once.
HDFS_WRITE_PARALLEL_BLOCKS = 1

#: Default bounded fan-out window for ``PFSClient.write`` stripe pushes.
#: 0 = unbounded (every extent pushed at once), the historical shape.
PFS_WRITE_MAX_INFLIGHT = 0

#: Chunk granularity for PFS write pushes when chunking is enabled
#: (Lustre's native 1 MB bulk RPC). Clients default to ``None`` =
#: legacy whole-extent pushes.
PFS_WRITE_CHUNK_BYTES = 1024 * 1024


# --------------------------------------------------------------------------
# Experiment scaling
# --------------------------------------------------------------------------
# The experiments run on data scaled down by a factor S from the paper's
# 98 GB (memory + wall-clock budget). Dividing every *throughput* constant
# by S makes a byte of scaled data take exactly as long as S bytes of real
# data, while fixed latencies (seeks, RPCs, task startup) stay at their
# true magnitude — time-equivalent to running the full-size dataset.
# Device bandwidths are scaled the same way by the bench harness when it
# builds NodeSpecs (see repro.bench.calibration.scaled_spec).

_RATE_NAMES = [
    "DECOMPRESS_BYTES_PER_SEC",
    "COMPRESS_BYTES_PER_SEC",
    "TEXT_PARSE_BYTES_PER_SEC",
    "BINARY_CONVERT_BYTES_PER_SEC",
    "FORMAT_CONVERT_BYTES_PER_SEC",
    "SQL_ROWS_PER_SEC",
]
#: mutated only by tests that recalibrate; captured at import
_BASE_RATES = {name: globals()[name] for name in _RATE_NAMES}
_SCALE = 1.0


def set_scale(factor: float) -> None:
    """Scale all software throughput constants for data shrunk by
    ``factor``. Call before building an experiment world; pair with
    :func:`repro.bench.calibration.scaled_spec` for the devices."""
    global _SCALE
    if factor <= 0:
        raise ValueError("scale factor must be > 0")
    _SCALE = float(factor)
    for name in _RATE_NAMES:
        globals()[name] = _BASE_RATES[name] / _SCALE


def get_scale() -> float:
    return _SCALE


def reset_scale() -> None:
    """Restore unscaled constants (test isolation)."""
    set_scale(1.0)
