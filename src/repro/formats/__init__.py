"""Scientific data formats.

- :mod:`repro.formats.scinc` — "SCNC", the netCDF-4 stand-in: a
  self-describing container with named dimensions, attributes, groups, and
  chunked zlib-compressed variables, plus a netCDF-C-style inquiry API
  (``nc_open``, ``nc_inq_var``, ``nc_get_vara``, ...).
- :mod:`repro.formats.sdf5` — "SDF5", the HDF5 stand-in: the same
  container with a different magic and deeper group nesting conventions
  (netCDF-4 really is an HDF5 profile, so sharing the container is
  faithful).
- :mod:`repro.formats.text` — netCDF→CSV conversion (the "33× larger"
  path the baselines must pay) and the CSV reader.
- :mod:`repro.formats.detect` — the format sniffing used by SciDP's
  Sci-format Head Reader.
"""

from repro.formats.model import Dataset, Group, Variable
from repro.formats.detect import detect_format

__all__ = ["Dataset", "Group", "Variable", "detect_format"]
