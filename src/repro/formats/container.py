"""Shared binary container for SCNC and SDF5.

Layout::

    magic (6 bytes)  | uint64 LE header length | header JSON (utf-8) | data

The header describes the group tree: dimensions, attributes and, for each
variable, its dtype, dims, shape, chunk shape, and a chunk index whose
offsets are **relative to the start of the data region** (so the header
length doesn't feed back into itself). Chunks are zlib-compressed,
concatenated in C order of the chunk grid, one file region per variable.

The reader takes any file-like object supporting ``seek``/``read`` — real
files in tests and examples, simulated PFS/HDFS file handles in the
experiments.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, BinaryIO, Optional

import numpy as np

from repro.formats.model import Dataset, Group, Variable

__all__ = [
    "ChunkRecord",
    "ContainerHeader",
    "ContainerReader",
    "FormatError",
    "VariableIndex",
    "chunk_stats",
    "read_header",
    "write_container",
]

MAGIC_LEN = 6
_LEN_STRUCT = struct.Struct("<Q")
DEFAULT_COMPRESSION_LEVEL = 4


class FormatError(Exception):
    """Malformed or foreign container data."""


@dataclass(frozen=True)
class ChunkRecord:
    """One stored chunk of one variable."""

    index: tuple[int, ...]   # chunk grid coordinate
    offset: int              # bytes from the start of the data region
    nbytes: int              # stored (compressed) size
    raw_nbytes: int          # uncompressed size
    #: optional zone map ``(min, max, count)`` over the chunk's non-NaN
    #: values; ``(None, None, 0)`` for an all-NaN chunk, ``None`` when the
    #: writer recorded no statistics (the default — the stats knob grows
    #: the header, so it is opt-in to keep legacy file bytes stable)
    stats: Optional[tuple[Optional[float], Optional[float], int]] = None


@dataclass
class VariableIndex:
    """Everything the reader needs to serve hyperslabs of one variable."""

    path: str                # e.g. "/grp/var"
    name: str
    dtype: np.dtype
    dims: tuple[str, ...]
    shape: tuple[int, ...]
    chunk_shape: tuple[int, ...]
    attrs: dict[str, Any]
    chunks: list[ChunkRecord]
    compressed: bool

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize \
            if self.shape else self.dtype.itemsize

    @property
    def stored_nbytes(self) -> int:
        return sum(c.nbytes for c in self.chunks)

    @property
    def has_stats(self) -> bool:
        """True when every chunk carries a zone map — the reader can
        range-prune this variable from the header alone."""
        return bool(self.chunks) and all(
            c.stats is not None for c in self.chunks)

    def chunk_grid(self) -> tuple[int, ...]:
        return tuple(
            -(-s // c) for s, c in zip(self.shape, self.chunk_shape))

    def chunk_slices(self, index: tuple[int, ...]) -> tuple[slice, ...]:
        return tuple(
            slice(i * c, min((i + 1) * c, s))
            for i, c, s in zip(index, self.chunk_shape, self.shape))


@dataclass
class ContainerHeader:
    """Parsed header: the group tree plus per-variable chunk indexes."""

    magic: bytes
    root: dict[str, Any]             # raw JSON group tree
    data_start: int                  # absolute offset of the data region
    variables: dict[str, VariableIndex]  # keyed by path

    def variable(self, path: str) -> VariableIndex:
        norm = "/" + path.strip("/")
        try:
            return self.variables[norm]
        except KeyError:
            raise FormatError(f"no variable {path!r} in container") from None

    def variable_paths(self) -> list[str]:
        return list(self.variables)


# --------------------------------------------------------------------------
# Writing
# --------------------------------------------------------------------------

def _group_to_json(group: Group,
                   chunk_offsets: dict[int, list[ChunkRecord]]) -> dict:
    return {
        "name": group.name,
        "attrs": group.attrs,
        "dims": group.dims,
        "variables": [
            {
                "name": var.name,
                "dtype": var.dtype.str,
                "dims": list(var.dims),
                "shape": list(var.shape),
                "chunk_shape": list(var.chunk_shape),
                "attrs": var.attrs,
                "chunks": [
                    [list(rec.index), rec.offset, rec.nbytes,
                     rec.raw_nbytes]
                    + ([list(rec.stats)] if rec.stats is not None else [])
                    for rec in chunk_offsets[id(var)]
                ],
            }
            for var in group.variables.values()
        ],
        "groups": [
            _group_to_json(sub, chunk_offsets)
            for sub in group.groups.values()
        ],
    }


def chunk_stats(chunk: np.ndarray
                ) -> Optional[tuple[Optional[float], Optional[float], int]]:
    """Zone-map statistics ``(min, max, count)`` for one chunk's values.

    ``count`` is the number of non-NaN elements; an all-NaN chunk yields
    ``(None, None, 0)``. Non-numeric (string/object/complex) chunks have
    no zone map and return ``None`` — predicates cannot range-prune them.
    """
    if chunk.dtype.kind not in "iufb":
        return None
    if chunk.dtype.kind == "f":
        valid = ~np.isnan(chunk)
        count = int(valid.sum())
        if count == 0:
            return (None, None, 0)
        values = chunk[valid]
        return (float(values.min()), float(values.max()), count)
    return (float(chunk.min()), float(chunk.max()), int(chunk.size))


def write_container(fileobj: BinaryIO, dataset: Dataset, magic: bytes,
                    compression_level: int = DEFAULT_COMPRESSION_LEVEL,
                    stats: bool = False) -> int:
    """Serialize ``dataset`` to ``fileobj``; returns total bytes written.

    ``compression_level`` 0 stores chunks raw (still chunked — this is the
    knob the NU-WRF generator uses to hit the paper's ~3.3× ratio exactly).

    ``stats=True`` records a per-chunk ``[min, max, count]`` zone map for
    numeric variables in the header's chunk index, letting readers prune
    chunks against range predicates without touching chunk payloads. Off
    by default: the extra header bytes shift ``data_start`` and every
    absolute chunk offset, which the perf-smoke golden timings pin.
    """
    if len(magic) != MAGIC_LEN:
        raise ValueError(f"magic must be {MAGIC_LEN} bytes")
    blobs: list[bytes] = []
    chunk_offsets: dict[int, list[ChunkRecord]] = {}
    cursor = 0
    for _path, var in dataset.all_variables():
        if var.data is None:
            raise FormatError(
                f"variable {var.name!r} has no data to write")
        data = np.ascontiguousarray(var.data)
        records: list[ChunkRecord] = []
        for index in var.iter_chunk_indices():
            chunk = np.ascontiguousarray(data[var.chunk_slices(index)])
            raw = chunk.tobytes()
            stored = (zlib.compress(raw, compression_level)
                      if compression_level > 0 else raw)
            records.append(ChunkRecord(
                index=index, offset=cursor, nbytes=len(stored),
                raw_nbytes=len(raw),
                stats=chunk_stats(chunk) if stats else None))
            blobs.append(stored)
            cursor += len(stored)
        chunk_offsets[id(var)] = records

    header = {
        "version": 1,
        "compressed": compression_level > 0,
        "root": _group_to_json(dataset, chunk_offsets),
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")).encode()
    fileobj.write(magic)
    fileobj.write(_LEN_STRUCT.pack(len(header_bytes)))
    fileobj.write(header_bytes)
    for blob in blobs:
        fileobj.write(blob)
    return MAGIC_LEN + _LEN_STRUCT.size + len(header_bytes) + cursor


# --------------------------------------------------------------------------
# Reading
# --------------------------------------------------------------------------

def _index_from_json(node: dict, prefix: str, compressed: bool,
                     out: dict[str, VariableIndex]) -> None:
    path = f"{prefix}/{node['name']}" if node["name"] else prefix
    for vj in node["variables"]:
        vpath = f"{path}/{vj['name']}"
        out[vpath] = VariableIndex(
            path=vpath,
            name=vj["name"],
            dtype=np.dtype(vj["dtype"]),
            dims=tuple(vj["dims"]),
            shape=tuple(vj["shape"]),
            chunk_shape=tuple(vj["chunk_shape"]),
            attrs=vj["attrs"],
            chunks=[
                # entry[4], when present, is the optional zone map
                # [min, max, count]; four-element entries are the legacy
                # stats-less layout and parse unchanged
                ChunkRecord(
                    tuple(entry[0]), entry[1], entry[2], entry[3],
                    stats=tuple(entry[4]) if len(entry) > 4 else None)
                for entry in vj["chunks"]
            ],
            compressed=compressed,
        )
    for sub in node["groups"]:
        _index_from_json(sub, path, compressed, out)


def read_header(fileobj: BinaryIO,
                expect_magic: Optional[bytes] = None) -> ContainerHeader:
    """Parse the container header; raises :class:`FormatError` on mismatch."""
    fileobj.seek(0)
    magic = fileobj.read(MAGIC_LEN)
    if len(magic) != MAGIC_LEN:
        raise FormatError("truncated file: no magic")
    if expect_magic is not None and magic != expect_magic:
        raise FormatError(
            f"magic mismatch: {magic!r} != {expect_magic!r}")
    raw_len = fileobj.read(_LEN_STRUCT.size)
    if len(raw_len) != _LEN_STRUCT.size:
        raise FormatError("truncated file: no header length")
    (header_len,) = _LEN_STRUCT.unpack(raw_len)
    header_bytes = fileobj.read(header_len)
    if len(header_bytes) != header_len:
        raise FormatError("truncated file: short header")
    try:
        header = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        raise FormatError(f"corrupt header JSON: {exc}") from exc
    if header.get("version") != 1:
        raise FormatError(f"unsupported version {header.get('version')!r}")
    variables: dict[str, VariableIndex] = {}
    _index_from_json(header["root"], "", header["compressed"], variables)
    return ContainerHeader(
        magic=magic,
        root=header["root"],
        data_start=MAGIC_LEN + _LEN_STRUCT.size + header_len,
        variables=variables,
    )


class ContainerReader:
    """Hyperslab reads over a parsed container.

    The reader only touches the byte ranges of chunks that intersect the
    requested slab — the property SciDP's chunk-aligned dummy blocks
    exploit (§III-B).
    """

    def __init__(self, fileobj: BinaryIO,
                 expect_magic: Optional[bytes] = None):
        self._file = fileobj
        self.header = read_header(fileobj, expect_magic)

    # -- inquiry ---------------------------------------------------------
    def variable_paths(self) -> list[str]:
        return self.header.variable_paths()

    def variable(self, path: str) -> VariableIndex:
        return self.header.variable(path)

    # -- chunk access ----------------------------------------------------
    def read_chunk(self, var: VariableIndex,
                   record: ChunkRecord) -> np.ndarray:
        """Read and decode one chunk as an ndarray of its chunk shape."""
        self._file.seek(self.header.data_start + record.offset)
        stored = self._file.read(record.nbytes)
        if len(stored) != record.nbytes:
            raise FormatError("truncated chunk data")
        raw = zlib.decompress(stored) if var.compressed else stored
        if len(raw) != record.raw_nbytes:
            raise FormatError("chunk payload size mismatch")
        slices = var.chunk_slices(record.index)
        shape = tuple(s.stop - s.start for s in slices)
        return np.frombuffer(raw, dtype=var.dtype).reshape(shape)

    def chunks_for_slab(self, var: VariableIndex,
                        start: tuple[int, ...],
                        count: tuple[int, ...]) -> list[ChunkRecord]:
        """Chunk records intersecting the hyperslab [start, start+count)."""
        if len(start) != len(var.shape) or len(count) != len(var.shape):
            raise ValueError("start/count rank mismatch")
        for s, c, extent in zip(start, count, var.shape):
            if s < 0 or c < 0 or s + c > extent:
                raise ValueError(
                    f"slab [{start}+{count}) outside shape {var.shape}")
        lo = tuple(s // cs for s, cs in zip(start, var.chunk_shape))
        hi = tuple(
            (s + c - 1) // cs if c > 0 else s // cs
            for s, c, cs in zip(start, count, var.chunk_shape))
        wanted = []
        for rec in var.chunks:
            if all(l <= i <= h for i, l, h in zip(rec.index, lo, hi)):
                wanted.append(rec)
        return wanted

    def get_vara(self, path: str, start: Optional[tuple[int, ...]] = None,
                 count: Optional[tuple[int, ...]] = None) -> np.ndarray:
        """netCDF-style hyperslab read of ``count`` items from ``start``."""
        var = self.variable(path)
        if start is None:
            start = (0,) * len(var.shape)
        if count is None:
            count = tuple(s - st for s, st in zip(var.shape, start))
        if any(c == 0 for c in count):
            return np.empty(count, dtype=var.dtype)
        out = np.empty(count, dtype=var.dtype)
        for rec in self.chunks_for_slab(var, tuple(start), tuple(count)):
            chunk = self.read_chunk(var, rec)
            chunk_slc = var.chunk_slices(rec.index)
            # Intersection of the chunk's extent with the slab, expressed
            # both in chunk-local and output-local coordinates.
            src, dst = [], []
            for (cs, st, ct) in zip(chunk_slc, start, count):
                lo = max(cs.start, st)
                hi = min(cs.stop, st + ct)
                src.append(slice(lo - cs.start, hi - cs.start))
                dst.append(slice(lo - st, hi - st))
            out[tuple(dst)] = chunk[tuple(src)]
        return out
