"""Format sniffing — the Sci-format Head Reader's decision procedure.

§III-A.1: files that cannot be recognised by any supported scientific
format library are marked *flat*; recognised files are handed to the
format-specific mapper. The registry is modular, matching the paper's
"users only need to provide a file structure explorer and a corresponding
reader to add support of arbitrary file formats" (§III-B).
"""

from __future__ import annotations

from typing import BinaryIO, Callable

from repro.formats import scinc, sdf5

__all__ = ["FORMAT_FLAT", "detect_format", "register_format"]

FORMAT_FLAT = "flat"

#: Probe registry: name -> predicate. Order matters; first hit wins.
_PROBES: list[tuple[str, Callable[[BinaryIO], bool]]] = [
    ("scinc", scinc.is_scinc),
    ("sdf5", sdf5.h5f_is_hdf5),
]


def register_format(name: str, probe: Callable[[BinaryIO], bool]) -> None:
    """Add a new scientific format probe (modularity hook, §III-B)."""
    if any(n == name for n, _ in _PROBES):
        raise ValueError(f"format {name!r} already registered")
    _PROBES.append((name, probe))


def detect_format(fileobj: BinaryIO) -> str:
    """Return the format name, or :data:`FORMAT_FLAT` if none matches."""
    for name, probe in _PROBES:
        if probe(fileobj):
            return name
    return FORMAT_FLAT
