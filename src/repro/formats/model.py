"""In-memory data model shared by the SCNC and SDF5 containers.

A :class:`Dataset` is a root :class:`Group`; groups own named dimensions,
attributes, variables, and subgroups — the tree structure SciDP's File
Explorer mirrors onto HDFS directories (§III-A.1).
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Optional

import numpy as np

__all__ = ["Dataset", "Group", "Variable", "default_chunk_shape"]

#: Attribute values we can round-trip through the JSON header.
_ATTR_TYPES = (str, int, float, bool)


def _check_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise TypeError(f"attribute name must be str, got {key!r}")
        if isinstance(value, (list, tuple)):
            if not all(isinstance(v, _ATTR_TYPES) for v in value):
                raise TypeError(f"unsupported attribute value {value!r}")
        elif not isinstance(value, _ATTR_TYPES):
            raise TypeError(f"unsupported attribute value {value!r}")
    return dict(attrs)


def default_chunk_shape(shape: tuple[int, ...],
                        target_bytes: int = 4 * 1024 * 1024,
                        itemsize: int = 4) -> tuple[int, ...]:
    """Pick a chunk shape along netCDF-4's default heuristic: whole trailing
    dimensions, split the leading one so chunks land near ``target_bytes``.
    """
    if not shape:
        return ()
    inner = math.prod(shape[1:]) * itemsize
    if inner == 0:
        return tuple(shape)
    lead = max(1, min(shape[0], target_bytes // max(1, inner)))
    return (lead,) + tuple(shape[1:])


class Variable:
    """A typed multi-dimensional array bound to named dimensions."""

    def __init__(self, name: str, dims: tuple[str, ...],
                 data: Optional[np.ndarray] = None,
                 dtype: Optional[np.dtype] = None,
                 shape: Optional[tuple[int, ...]] = None,
                 attrs: Optional[dict[str, Any]] = None,
                 chunk_shape: Optional[tuple[int, ...]] = None):
        if not name or "/" in name:
            raise ValueError(f"invalid variable name {name!r}")
        self.name = name
        self.dims = tuple(dims)
        if data is not None:
            data = np.asarray(data)
            if shape is not None and tuple(shape) != data.shape:
                raise ValueError("shape disagrees with data")
            if dtype is not None and np.dtype(dtype) != data.dtype:
                data = data.astype(dtype)
            self.data: Optional[np.ndarray] = data
            self.shape = data.shape
            self.dtype = data.dtype
        else:
            if shape is None or dtype is None:
                raise ValueError("lazy variable needs shape and dtype")
            self.data = None
            self.shape = tuple(int(s) for s in shape)
            self.dtype = np.dtype(dtype)
        if len(self.dims) != len(self.shape):
            raise ValueError(
                f"variable {name!r}: {len(self.dims)} dims for "
                f"{len(self.shape)}-d shape")
        self.attrs = _check_attrs(attrs or {})
        if chunk_shape is None:
            chunk_shape = default_chunk_shape(
                self.shape, itemsize=self.dtype.itemsize)
        self.chunk_shape = tuple(int(c) for c in chunk_shape)
        if len(self.chunk_shape) != len(self.shape):
            raise ValueError("chunk_shape rank mismatch")
        for c, s in zip(self.chunk_shape, self.shape):
            if c < 1 or c > max(s, 1):
                raise ValueError(
                    f"chunk extent {c} out of range for dim size {s}")

    @property
    def size(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Raw (uncompressed) payload size."""
        return self.size * self.dtype.itemsize

    def chunk_grid(self) -> tuple[int, ...]:
        """Number of chunks along each dimension."""
        return tuple(
            -(-s // c) for s, c in zip(self.shape, self.chunk_shape))

    def iter_chunk_indices(self) -> Iterator[tuple[int, ...]]:
        """All chunk grid coordinates in C order."""
        grid = self.chunk_grid()
        if not grid:
            yield ()
            return
        idx = [0] * len(grid)
        while True:
            yield tuple(idx)
            for axis in reversed(range(len(grid))):
                idx[axis] += 1
                if idx[axis] < grid[axis]:
                    break
                idx[axis] = 0
            else:
                return

    def chunk_slices(self, index: tuple[int, ...]) -> tuple[slice, ...]:
        """Array slices covered by the chunk at grid coordinate ``index``."""
        return tuple(
            slice(i * c, min((i + 1) * c, s))
            for i, c, s in zip(index, self.chunk_shape, self.shape))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Variable {self.name} {self.dtype} "
                f"{'x'.join(map(str, self.shape))}>")


class Group:
    """A node in the dataset tree."""

    def __init__(self, name: str = "", attrs: Optional[dict[str, Any]] = None):
        if "/" in name:
            raise ValueError(f"invalid group name {name!r}")
        self.name = name
        self.attrs = _check_attrs(attrs or {})
        self.dims: dict[str, int] = {}
        self.variables: dict[str, Variable] = {}
        self.groups: dict[str, "Group"] = {}

    def create_dim(self, name: str, size: int) -> None:
        if size < 0:
            raise ValueError("dimension size must be >= 0")
        if name in self.dims and self.dims[name] != size:
            raise ValueError(
                f"dimension {name!r} redefined: {self.dims[name]} != {size}")
        self.dims[name] = int(size)

    def create_group(self, name: str) -> "Group":
        if name in self.groups:
            raise ValueError(f"group {name!r} already exists")
        grp = Group(name)
        self.groups[name] = grp
        return grp

    def add_variable(self, var: Variable) -> Variable:
        if var.name in self.variables:
            raise ValueError(f"variable {var.name!r} already exists")
        for dim_name, extent in zip(var.dims, var.shape):
            known = self._lookup_dim(dim_name)
            if known is None:
                self.create_dim(dim_name, extent)
            elif known != extent:
                raise ValueError(
                    f"variable {var.name!r}: dim {dim_name!r} has size "
                    f"{known}, data has {extent}")
        self.variables[var.name] = var
        return var

    def create_variable(self, name: str, dims: tuple[str, ...],
                        data: np.ndarray, **kwargs) -> Variable:
        return self.add_variable(Variable(name, dims, data=data, **kwargs))

    def _lookup_dim(self, name: str) -> Optional[int]:
        return self.dims.get(name)

    def walk(self, prefix: str = "") -> Iterator[tuple[str, "Group"]]:
        """Yield (path, group) for this group and all descendants."""
        path = f"{prefix}/{self.name}" if self.name else prefix
        yield path or "/", self
        for sub in self.groups.values():
            yield from sub.walk(path)

    def all_variables(self) -> Iterator[tuple[str, Variable]]:
        """Yield (path, variable) across the whole subtree."""
        for gpath, grp in self.walk():
            for var in grp.variables.values():
                vpath = f"{gpath.rstrip('/')}/{var.name}"
                yield vpath, var

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Group {self.name or '/'} vars={list(self.variables)} "
                f"groups={list(self.groups)}>")


class Dataset(Group):
    """Root group of a file."""

    def __init__(self, attrs: Optional[dict[str, Any]] = None):
        super().__init__("", attrs)
