"""SCNC — the netCDF-4 stand-in format.

``write`` / ``Reader`` are the Pythonic interface; :mod:`capi` exposes the
netCDF-C-style functions (``nc_open``, ``nc_inq``, ``nc_get_vara``, ...)
that the paper's Sci-format Head Reader and PFS Reader call (§III, §IV-E).
"""

from repro.formats.scinc.io import MAGIC, Reader, is_scinc, write
from repro.formats.scinc import capi

__all__ = ["MAGIC", "Reader", "capi", "is_scinc", "write"]
