"""netCDF-C style API over SCNC.

The paper implements its Sci-format Head Reader and PFS Reader against the
netCDF C interface (``nc_open``, ``nc_inq``, ``nc_inq_var``,
``nc_get_vara``, ``nc_close`` — §III-B, §IV-E.1). This module provides the
same call shapes over SCNC: integer dataset ids, integer variable ids, and
(start, count) hyperslabs, so the SciDP core reads exactly like the paper
describes.
"""

from __future__ import annotations

from typing import BinaryIO, Optional

import numpy as np

from repro.formats.container import FormatError, VariableIndex
from repro.formats.scinc.io import Reader

__all__ = [
    "nc_close",
    "nc_get_att",
    "nc_get_var",
    "nc_get_vara",
    "nc_inq",
    "nc_inq_att",
    "nc_inq_dim",
    "nc_inq_var",
    "nc_inq_varid",
    "nc_open",
]

_open_files: dict[int, Reader] = {}
_next_id = 0


def nc_open(fileobj: BinaryIO) -> int:
    """Open an SCNC container; returns an integer ncid.

    Raises :class:`FormatError` if the file is not SCNC — callers use this
    exactly as the paper uses ``nc_open`` for format detection.
    """
    global _next_id
    reader = Reader(fileobj)  # may raise FormatError
    ncid = _next_id
    _next_id += 1
    _open_files[ncid] = reader
    return ncid


def _reader(ncid: int) -> Reader:
    try:
        return _open_files[ncid]
    except KeyError:
        raise FormatError(f"bad ncid {ncid}") from None


def nc_inq(ncid: int) -> dict:
    """Dataset-level inquiry: variable paths and count."""
    reader = _reader(ncid)
    paths = reader.variable_paths()
    return {"nvars": len(paths), "variables": paths}


def nc_inq_varid(ncid: int, path: str) -> int:
    """Resolve a variable path to its integer varid (its index)."""
    paths = _reader(ncid).variable_paths()
    norm = "/" + path.strip("/")
    try:
        return paths.index(norm)
    except ValueError:
        raise FormatError(f"no variable {path!r}") from None


def _var(ncid: int, varid: int) -> tuple[Reader, VariableIndex]:
    reader = _reader(ncid)
    paths = reader.variable_paths()
    if not 0 <= varid < len(paths):
        raise FormatError(f"bad varid {varid}")
    return reader, reader.variable(paths[varid])


def nc_inq_var(ncid: int, varid: int) -> dict:
    """Variable-level inquiry: name, dtype, dims, shape, chunking, attrs."""
    _, var = _var(ncid, varid)
    return {
        "name": var.name,
        "path": var.path,
        "dtype": var.dtype.str,
        "dims": var.dims,
        "shape": var.shape,
        "chunk_shape": var.chunk_shape,
        "nchunks": len(var.chunks),
        "attrs": dict(var.attrs),
    }


def nc_get_vara(ncid: int, varid: int, start: tuple[int, ...],
                count: tuple[int, ...]) -> np.ndarray:
    """Hyperslab read (`nc_get_vara` in the C API)."""
    reader, var = _var(ncid, varid)
    return reader.get_vara(var.path, tuple(start), tuple(count))


def nc_get_var(ncid: int, varid: int) -> np.ndarray:
    """Whole-variable read (`nc_get_var`)."""
    reader, var = _var(ncid, varid)
    return reader.get_vara(var.path)


def nc_inq_dim(ncid: int, varid: int, dim_index: int) -> dict:
    """Dimension inquiry by position within a variable (`nc_inq_dim`)."""
    _, var = _var(ncid, varid)
    if not 0 <= dim_index < len(var.dims):
        raise FormatError(
            f"bad dim index {dim_index} for {var.name!r}")
    return {"name": var.dims[dim_index], "size": var.shape[dim_index]}


def nc_inq_att(ncid: int, varid: int, name: str) -> dict:
    """Attribute inquiry (`nc_inq_att`): type tag and length."""
    value = nc_get_att(ncid, varid, name)
    if isinstance(value, str):
        return {"type": "char", "length": len(value)}
    if isinstance(value, bool):
        return {"type": "byte", "length": 1}
    if isinstance(value, int):
        return {"type": "int64", "length": 1}
    if isinstance(value, float):
        return {"type": "double", "length": 1}
    return {"type": "list", "length": len(value)}


def nc_get_att(ncid: int, varid: int, name: str):
    """Attribute read (`nc_get_att`)."""
    _, var = _var(ncid, varid)
    try:
        return var.attrs[name]
    except KeyError:
        raise FormatError(
            f"variable {var.name!r} has no attribute {name!r}") from None


def nc_close(ncid: int) -> None:
    """Release the ncid. The underlying file object is the caller's."""
    if ncid not in _open_files:
        raise FormatError(f"bad ncid {ncid}")
    del _open_files[ncid]
