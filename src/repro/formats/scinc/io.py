"""SCNC container read/write."""

from __future__ import annotations

from typing import BinaryIO

from repro.formats.container import (
    ContainerReader,
    FormatError,
    write_container,
)
from repro.formats.model import Dataset

__all__ = ["MAGIC", "Reader", "is_scinc", "write"]

MAGIC = b"SCNC\x01\x00"


def write(fileobj: BinaryIO, dataset: Dataset,
          compression_level: int = 4, stats: bool = False) -> int:
    """Write ``dataset`` as an SCNC file; returns bytes written.

    ``stats=True`` records per-chunk ``[min, max, count]`` zone maps for
    numeric variables in the header (see
    :func:`repro.formats.container.write_container`) — the chunk index
    the SQL planner prunes against. Off by default so default-written
    files keep the byte layout the golden timings pin.
    """
    return write_container(fileobj, dataset, MAGIC, compression_level,
                           stats=stats)


class Reader(ContainerReader):
    """SCNC reader — rejects files whose magic is not SCNC."""

    def __init__(self, fileobj: BinaryIO):
        super().__init__(fileobj, expect_magic=MAGIC)


def is_scinc(fileobj: BinaryIO) -> bool:
    """Format check mirroring ``nc_open``-probing (§IV-E.1)."""
    try:
        pos = fileobj.tell()
    except (OSError, AttributeError):
        pos = None
    try:
        fileobj.seek(0)
        head = fileobj.read(len(MAGIC))
        return head == MAGIC
    except (OSError, FormatError):
        return False
    finally:
        if pos is not None:
            fileobj.seek(pos)
