"""SDF5 — the HDF5 stand-in format.

Shares the SCNC container (faithfully: real netCDF-4 *is* an HDF5 profile)
under a different magic, and exposes the HDF5-style check the paper's
Sci-format Head Reader calls (``H5Fis_hdf5``, §IV-E.1). Deeply nested
groups are first-class here, exercising SciDP's "deeper directory
structures" mapping path (§III-A.1).
"""

from repro.formats.sdf5.io import MAGIC, Reader, h5f_is_hdf5, write

__all__ = ["MAGIC", "Reader", "h5f_is_hdf5", "write"]
