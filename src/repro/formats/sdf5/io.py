"""SDF5 container read/write."""

from __future__ import annotations

from typing import BinaryIO

from repro.formats.container import ContainerReader, write_container
from repro.formats.model import Dataset

__all__ = ["MAGIC", "Reader", "h5f_is_hdf5", "write"]

MAGIC = b"SDF5\x01\x00"


def write(fileobj: BinaryIO, dataset: Dataset,
          compression_level: int = 4) -> int:
    """Write ``dataset`` as an SDF5 file; returns bytes written."""
    return write_container(fileobj, dataset, MAGIC, compression_level)


class Reader(ContainerReader):
    """SDF5 reader — rejects files whose magic is not SDF5."""

    def __init__(self, fileobj: BinaryIO):
        super().__init__(fileobj, expect_magic=MAGIC)


def h5f_is_hdf5(fileobj: BinaryIO) -> bool:
    """Format check mirroring ``H5Fis_hdf5`` (§IV-E.1)."""
    try:
        pos = fileobj.tell()
    except (OSError, AttributeError):
        pos = None
    try:
        fileobj.seek(0)
        return fileobj.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
    finally:
        if pos is not None:
            fileobj.seek(pos)
