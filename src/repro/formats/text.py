"""netCDF→text conversion and text parsing.

This is the data path the paper's Naive / Vanilla Hadoop / PortHadoop
baselines are forced through (§II-B, §IV-B): every array element becomes a
CSV row ``variable,i0,i1,...,value``, inflating float32 data by roughly an
order of magnitude (the paper measured ~33× against the *compressed*
netCDF size). ``read_table`` mirrors R's ``read.table`` — the sequential
text-to-binary conversion that dominates Fig. 7 for the baselines.
"""

from __future__ import annotations

import io
from typing import BinaryIO, Iterator

import numpy as np

from repro.formats.container import ContainerReader

__all__ = [
    "convert_to_csv",
    "convert_to_csv_fast",
    "csv_rows",
    "estimate_csv_size",
    "parse_csv_fast",
    "read_table",
]


def convert_to_csv(reader: ContainerReader, out: BinaryIO,
                   variables: list[str] | None = None) -> int:
    """Convert container variables to CSV rows; returns bytes written.

    One row per element: ``name,idx0,idx1,...,value``. Values are printed
    with full float32 round-trip precision (9 significant digits), like
    the generic dump tools the paper's baselines rely on.
    """
    total = 0
    paths = variables if variables is not None else reader.variable_paths()
    for path in paths:
        var = reader.variable(path)
        data = reader.get_vara(path)
        name = var.name
        flat = data.reshape(-1)
        for flat_idx, value in enumerate(flat):
            idx = np.unravel_index(flat_idx, data.shape) if data.shape else ()
            row = (f"{name},"
                   + ",".join(str(int(i)) for i in idx)
                   + f",{value:.9g}\n").encode()
            out.write(row)
            total += len(row)
    return total


def estimate_csv_size(raw_nbytes: int, itemsize: int = 4,
                      rank: int = 4) -> int:
    """Predict the CSV size for a raw binary payload without converting.

    Per element: name (~3 chars) + rank index fields (~4 chars each incl.
    comma) + value (~13 chars incl. sign/point/exponent) + newline. For
    float32 4-D data this lands near 33 bytes/element ≈ 8.2× the raw
    binary and ≈ 33× the paper's ~4× compressed form — matching §IV-B.
    """
    elements = raw_nbytes // itemsize
    per_element = 3 + 1 + 4 * rank + 13 + 1
    return elements * per_element


def convert_to_csv_fast(reader: ContainerReader, out: BinaryIO,
                        variables: list[str] | None = None) -> int:
    """Vectorised CSV dump used by the experiment pipeline.

    Same information as :func:`convert_to_csv` but with numeric variable
    ids (a ``#vars:`` header maps them back) so both dumping and parsing
    stay in NumPy's C formatting paths — needed to materialise real text
    baselines' inputs at bench scale in reasonable wall-clock time.
    """
    paths = variables if variables is not None else reader.variable_paths()
    names = [reader.variable(p).name for p in paths]
    header = ("#vars:" + ",".join(names) + "\n").encode()
    out.write(header)
    total = len(header)
    for var_id, path in enumerate(paths):
        data = reader.get_vara(path)
        flat = data.reshape(-1)
        idx = np.unravel_index(np.arange(flat.size), data.shape) \
            if data.shape else ()
        columns = [np.full(flat.size, var_id)]
        columns.extend(idx)
        parts = [np.char.mod("%d", col.astype(np.int64))
                 for col in columns]
        # Full-width scientific notation, as generic dump tools emit —
        # this is what makes text ~33x the compressed binary (§IV-B).
        parts.append(np.char.mod("%.8e", flat.astype(np.float64)))
        rows = parts[0]
        for part in parts[1:]:
            rows = np.char.add(np.char.add(rows, ","), part)
        blob = "\n".join(rows.tolist()).encode() + b"\n"
        out.write(blob)
        total += len(blob)
    return total


def parse_csv_fast(data: bytes) -> dict[str, np.ndarray]:
    """Vectorised parse of :func:`convert_to_csv_fast` output.

    Accepts a whole dump or any block of full lines from one (header
    optional — ids then map to ``var<id>`` names). Returns dense arrays
    with shapes inferred from the max index per axis.
    """
    names: list[str] = []
    if data.startswith(b"#vars:"):
        eol = data.index(b"\n")
        names = data[len(b"#vars:"):eol].decode().split(",")
        data = data[eol + 1:]
    if not data.strip():
        return {}
    table = np.loadtxt(io.BytesIO(data), delimiter=",", ndmin=2,
                       dtype=np.float64)
    var_ids = table[:, 0].astype(np.int64)
    out: dict[str, np.ndarray] = {}
    for vid in np.unique(var_ids):
        rows = table[var_ids == vid]
        idx = rows[:, 1:-1].astype(np.int64)
        values = rows[:, -1].astype(np.float32)
        shape = tuple(idx.max(axis=0) + 1) if idx.size else ()
        arr = np.zeros(shape, dtype=np.float32)
        arr[tuple(idx.T)] = values
        name = names[vid] if vid < len(names) else f"var{vid}"
        out[name] = arr
    return out


def csv_rows(fileobj: BinaryIO) -> Iterator[list[str]]:
    """Stream CSV rows as string fields."""
    text = io.TextIOWrapper(fileobj, encoding="utf-8", newline="")
    for line in text:
        line = line.strip()
        if line:
            yield line.split(",")
    text.detach()


def read_table(fileobj: BinaryIO) -> dict[str, np.ndarray]:
    """Parse a CSV dump back into dense arrays, R ``read.table`` style.

    Sequential and allocation-heavy by design — this models the baselines'
    dominant Convert cost. Returns ``{variable name: ndarray}``; shapes are
    inferred from the maximum index seen per axis.
    """
    raw: dict[str, list[tuple[tuple[int, ...], float]]] = {}
    for fields in csv_rows(fileobj):
        name = fields[0]
        idx = tuple(int(f) for f in fields[1:-1])
        value = float(fields[-1])
        raw.setdefault(name, []).append((idx, value))
    out: dict[str, np.ndarray] = {}
    for name, entries in raw.items():
        if not entries:
            continue
        rank = len(entries[0][0])
        shape = tuple(
            max(idx[axis] for idx, _ in entries) + 1 for axis in range(rank))
        arr = np.zeros(shape, dtype=np.float32)
        for idx, value in entries:
            arr[idx] = value
        out[name] = arr
    return out
