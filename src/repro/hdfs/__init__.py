"""Hadoop Distributed File System model.

- :class:`~repro.hdfs.namenode.NameNode` — namespace, block map, block
  placement, and the **virtual (dummy) block** support SciDP's Data Mapper
  relies on (§III-A.2: placeholder blocks with no location information,
  carrying the mapped PFS segment/hyperslab metadata).
- :class:`~repro.hdfs.datanode.DataNode` — per-node block store on the
  node's local disk (real bytes).
- :class:`~repro.hdfs.client.DFSClient` — write pipeline with replication
  and locality-aware reads (local replica → pure disk; remote → disk +
  network), the behaviour that wins Fig. 2 for native HDFS.
- :class:`~repro.hdfs.connector.PFSConnector` — the "HDFS Transparency" /
  Lustre-connector style unified-file-system baseline (Fig. 1(b), Fig. 2):
  an HDFS-compatible facade whose reads and writes all go to the PFS.
"""

from repro.hdfs.block import BlockInfo, VirtualBlock
from repro.hdfs.namenode import FileEntry, HDFSError, NameNode
from repro.hdfs.datanode import DataNode
from repro.hdfs.client import DFSClient
from repro.hdfs.filesystem import HDFS
from repro.hdfs.connector import PFSConnector

__all__ = [
    "BlockInfo",
    "DFSClient",
    "DataNode",
    "FileEntry",
    "HDFS",
    "HDFSError",
    "NameNode",
    "PFSConnector",
    "VirtualBlock",
]
