"""HDFS block metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["BlockInfo", "VirtualBlock", "DEFAULT_BLOCK_SIZE"]

#: Cloudera Hadoop default block size used in the paper (§III-A.3).
DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024


@dataclass(frozen=True)
class VirtualBlock:
    """Metadata a dummy block carries instead of data (§III-A.2).

    For flat files: ``source_path``/``offset``/``length`` name a PFS file
    segment. For scientific files, ``hyperslab`` additionally carries the
    variable path and (start, count) plus the chunk records covering it,
    so the PFS Reader can issue a single whole-block request.
    """

    source_path: str
    offset: int = 0
    length: int = 0
    hyperslab: Optional[dict[str, Any]] = None

    def __post_init__(self):
        if self.offset < 0 or self.length < 0:
            raise ValueError("offset/length must be >= 0")


@dataclass
class BlockInfo:
    """One block of one HDFS file.

    ``locations`` lists DataNode names holding replicas; dummy blocks have
    an empty list ("there is no location information in the dummy blocks",
    §III-A.2) and a non-None ``virtual`` payload.
    """

    block_id: int
    length: int
    locations: list[str] = field(default_factory=list)
    virtual: Optional[VirtualBlock] = None

    @property
    def is_virtual(self) -> bool:
        return self.virtual is not None
