"""DFSClient: write pipeline and locality-aware reads."""

from __future__ import annotations

from typing import Optional

from repro.cluster.node import Node
from repro.hdfs.block import BlockInfo
from repro.hdfs.namenode import HDFSError
from repro.obs.trace import tracer_of
from repro.sim.pipeline import bounded_fanout

__all__ = ["DFSClient"]


class DFSClient:
    """HDFS client bound to one cluster node.

    All public operations are DES processes. Reads prefer a replica on
    this node (pure local-disk path, no network) — the design point the
    paper credits for native HDFS's Fig. 2 win: "HDFS minimizes latency
    and interference by maximizing local access".
    """

    def __init__(self, hdfs, node: Node):
        self.hdfs = hdfs
        self.node = node
        self.env = hdfs.env
        #: trace swimlane for this client's spans
        self.track = f"{node.name}.hdfs"
        #: payload bytes read/written by this client
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # -- write --------------------------------------------------------------
    def _write_block(self, path: str, chunk: bytes):
        """Allocate one block and push it down the replication pipeline."""
        namenode = self.hdfs.namenode
        yield from namenode.rpc()
        block = namenode.add_block(path, len(chunk), writer=self.node.name)
        prev_node = self.node
        for target_name in block.locations:
            datanode = self.hdfs.datanode(target_name)
            yield self.hdfs.network.transfer(
                prev_node, datanode.node, len(chunk))
            yield self.env.process(datanode.write(block.block_id, chunk))
            prev_node = datanode.node
        return block

    def write(self, path: str, data: bytes,
              block_size: Optional[int] = None,
              replication: Optional[int] = None):
        """Create ``path`` and write ``data`` through the pipeline.

        Blocks are written sequentially, as a real output stream does.
        DES process; returns the FileEntry.
        """
        with tracer_of(self.env).span(
                "hdfs.write", cat="storage", track=self.track,
                path=path, bytes=len(data)):
            namenode = self.hdfs.namenode
            yield from namenode.rpc()
            entry = namenode.create_file(path, block_size, replication)
            pos = 0
            while pos < len(data):
                chunk = data[pos:pos + entry.block_size]
                yield self.env.process(self._write_block(entry.path, chunk))
                pos += len(chunk)
            namenode.complete_file(entry.path)
            self.bytes_written += len(data)
            return entry

    # -- read ---------------------------------------------------------------
    def _pick_replica(self, block: BlockInfo) -> str:
        """Prefer a local live replica, then any live replica — the
        failover real DFSInputStreams perform when a datanode dies."""
        if not block.locations:
            raise HDFSError(
                f"block {block.block_id} has no locations "
                f"({'virtual block' if block.is_virtual else 'corrupt'})")
        live = [name for name in block.locations
                if self.hdfs.datanode(name).alive]
        if not live:
            raise HDFSError(
                f"block {block.block_id}: all replicas unreachable "
                f"({block.locations})")
        for name in live:
            if name == self.node.name:
                return name
        return live[0]

    def read_block(self, block: BlockInfo, offset: int = 0,
                   length: int = -1):
        """Read one block, preferring a local replica. DES process."""
        replica = self._pick_replica(block)
        datanode = self.hdfs.datanode(replica)
        local = datanode.node is self.node
        with tracer_of(self.env).span(
                "hdfs.read_block", cat="storage", track=self.track,
                block=block.block_id, replica=replica,
                locality="node_local" if local else "remote") as span:
            data = yield self.env.process(
                datanode.read(block.block_id, offset, length))
            if not local:
                yield self.hdfs.network.transfer(
                    datanode.node, self.node, len(data))
            self.bytes_read += len(data)
            span.set(bytes=len(data))
        return data

    def read(self, path: str, max_inflight: int = 1):
        """Read a whole file, block by block. DES process.

        ``max_inflight > 1`` keeps that many block reads in flight at a
        time (0 = all blocks at once); the default streams serially, the
        stock ``DFSInputStream`` behaviour.
        """
        namenode = self.hdfs.namenode
        yield from namenode.rpc()
        blocks = namenode.get_block_locations(path)
        if max_inflight != 1 and len(blocks) > 1:
            parts = yield from bounded_fanout(
                self.env,
                [lambda b=b: self.read_block(b) for b in blocks],
                max_inflight)
        else:
            parts = []
            for block in blocks:
                parts.append(
                    (yield self.env.process(self.read_block(block))))
        return b"".join(parts)

    # -- metadata -------------------------------------------------------------
    def get_block_locations(self, path: str):
        """Block list with locations (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.get_block_locations(path)

    def listdir(self, path: str):
        """Directory listing (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.listdir(path)

    def exists(self, path: str):
        """Existence check (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.exists(path)

    def delete(self, path: str):
        """Remove a file and its replicas (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        entry = self.hdfs.namenode.delete(path)
        for block in entry.blocks:
            for name in block.locations:
                self.hdfs.datanode(name).drop(block.block_id)
