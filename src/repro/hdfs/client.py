"""DFSClient: write pipeline and locality-aware reads.

Implements the :class:`repro.io.protocol.StorageClient` protocol; block
fan-out is delegated to the shared :class:`repro.io.planner.ReadPlanner`
and writes to the :class:`repro.io.write.WritePlanner` (``hdfs``
scheme), which roll this client's traffic into the per-scheme datapath
metrics.

The write path has two replication disciplines:

- **store-and-forward** (``packet_bytes=None``, the default): each
  block is shipped whole to replica N, written, then shipped on to
  replica N+1 — the frozen legacy shape
  (:func:`repro.io._legacy.legacy_hdfs_write`).
- **packet pipeline** (``packet_bytes`` set, e.g.
  ``costs.HDFS_PACKET_BYTES``): the block is split into packets that
  stream down the replica chain like a real DataNode pipeline, so hop
  N→N+1 overlaps hop N−1→N and each replica's disk writes overlap the
  network streams.

Independently, ``write_parallel_blocks`` bounds how many block
pipelines of one file are in flight at once (1 = legacy sequential
output stream).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.node import Node
from repro.hdfs.block import BlockInfo
from repro.hdfs.namenode import HDFSError
from repro.io.planner import ReadPlanner, chop_range
from repro.io.write import WritePlanner
from repro.obs.trace import tracer_of
from repro.sim import AllOf, Event

__all__ = ["DFSClient"]


class DFSClient:
    """HDFS client bound to one cluster node.

    All public operations are DES processes. Reads prefer a replica on
    this node (pure local-disk path, no network) — the design point the
    paper credits for native HDFS's Fig. 2 win: "HDFS minimizes latency
    and interference by maximizing local access".
    """

    def __init__(self, hdfs, node: Node,
                 packet_bytes: Optional[int] = None,
                 write_parallel_blocks: Optional[int] = None):
        self.hdfs = hdfs
        self.node = node
        self.env = hdfs.env
        #: the shared read planner (block fan-out + per-scheme metrics)
        self.planner = ReadPlanner(self.env, scheme="hdfs")
        #: the shared write planner (block fan-out + per-scheme metrics)
        self.write_planner = WritePlanner(self.env, scheme="hdfs")
        #: replication pipeline packet size; None = whole-block
        #: store-and-forward (the legacy shape)
        self.packet_bytes = (
            getattr(hdfs, "packet_bytes", None)
            if packet_bytes is None else packet_bytes)
        #: concurrent block pipelines per write; 1 = sequential stream
        self.write_parallel_blocks = (
            getattr(hdfs, "write_parallel_blocks", 1)
            if write_parallel_blocks is None else write_parallel_blocks)
        #: trace swimlane for this client's spans
        self.track = f"{node.name}.hdfs"
        #: payload bytes read/written by this client
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # -- write --------------------------------------------------------------
    def _write_block(self, path: str, chunk: bytes):
        """Allocate one block and push it down the replication pipeline."""
        namenode = self.hdfs.namenode
        yield from namenode.rpc()
        block = namenode.add_block(path, len(chunk), writer=self.node.name)
        yield from self._push_block(block, chunk)
        return block

    def _push_block(self, block: BlockInfo, chunk: bytes):
        """Push one allocated block's bytes down the replica chain. DES
        generator; dispatches on the configured replication discipline."""
        if self.packet_bytes is None or not block.locations:
            yield from self._store_and_forward(block, chunk)
        else:
            yield from self._push_block_pipelined(block, chunk)
        self.write_planner.account(len(chunk))

    def _store_and_forward(self, block: BlockInfo, chunk: bytes):
        """Whole-block replication: ship to replica N, write, ship on to
        replica N+1 — the frozen legacy discipline. DES generator."""
        prev_node = self.node
        for target_name in block.locations:
            datanode = self.hdfs.datanode(target_name)
            yield self.hdfs.network.transfer(
                prev_node, datanode.node, len(chunk))
            yield self.env.process(datanode.write(block.block_id, chunk))
            prev_node = datanode.node

    def _push_block_pipelined(self, block: BlockInfo, chunk: bytes):
        """Packet-pipelined replication: the block streams down the
        replica chain in ``packet_bytes`` packets, so hop N→N+1 overlaps
        hop N−1→N and replica disks overlap the network streams. DES
        generator.

        One link process per hop; ``ready[h][k]`` fires when packet k
        has fully arrived at replica h, releasing hop h+1's send of that
        packet. Each arrival also forks the replica's packet disk write;
        the block is sealed on every replica once all links and disk
        writes have landed.
        """
        env = self.env
        pieces = chop_range(0, len(chunk), self.packet_bytes)
        targets = [self.hdfs.datanode(name) for name in block.locations]
        ready = [[Event(env) for _ in pieces] for _ in targets]
        disk_writes: list = []

        def link(h):
            src = self.node if h == 0 else targets[h - 1].node
            dst = targets[h]
            for k, (off, n) in enumerate(pieces):
                if h > 0:
                    yield ready[h - 1][k]
                yield self.hdfs.network.transfer(src, dst.node, n)
                ready[h][k].succeed()
                disk_writes.append(env.process(dst.write_packet(
                    block.block_id, chunk[off:off + n], off)))

        links = [env.process(link(h)) for h in range(len(targets))]
        yield AllOf(env, links)
        if disk_writes:
            yield AllOf(env, disk_writes)
        for dst in targets:
            dst.commit_block(block.block_id)

    def write(self, path: str, data: bytes,
              block_size: Optional[int] = None,
              replication: Optional[int] = None):
        """Create ``path`` and write ``data`` through the pipeline.

        With ``write_parallel_blocks == 1`` (the default) blocks are
        written sequentially, as a real output stream does. A larger (or
        0 = unbounded) window allocates every block up front — namenode
        placement stays in file order — and keeps that many block
        pipelines in flight at once.

        DES process; returns the FileEntry.
        """
        with tracer_of(self.env).span(
                "hdfs.write", cat="storage", track=self.track,
                path=path, bytes=len(data)):
            namenode = self.hdfs.namenode
            yield from namenode.rpc()
            entry = namenode.create_file(path, block_size, replication)
            window = self.write_parallel_blocks
            pos = 0
            if window == 1:
                while pos < len(data):
                    chunk = data[pos:pos + entry.block_size]
                    yield self.env.process(
                        self._write_block(entry.path, chunk))
                    pos += len(chunk)
            else:
                allocated: list[tuple[BlockInfo, bytes]] = []
                while pos < len(data):
                    chunk = data[pos:pos + entry.block_size]
                    yield from namenode.rpc()
                    allocated.append((
                        namenode.add_block(
                            entry.path, len(chunk), writer=self.node.name),
                        chunk))
                    pos += len(chunk)
                yield from self.write_planner.fan_out_blocks(
                    [lambda b=b, c=c: self._push_block(b, c)
                     for b, c in allocated],
                    window)
            namenode.complete_file(entry.path)
            self.bytes_written += len(data)
            return entry

    # -- read ---------------------------------------------------------------
    def _pick_replica(self, block: BlockInfo) -> str:
        """Prefer a local live replica, then any live replica — the
        failover real DFSInputStreams perform when a datanode dies."""
        if not block.locations:
            raise HDFSError(
                f"block {block.block_id} has no locations "
                f"({'virtual block' if block.is_virtual else 'corrupt'})")
        live = [name for name in block.locations
                if self.hdfs.datanode(name).alive]
        if not live:
            raise HDFSError(
                f"block {block.block_id}: all replicas unreachable "
                f"({block.locations})")
        for name in live:
            if name == self.node.name:
                return name
        return live[0]

    def read_block(self, block: BlockInfo, offset: int = 0,
                   length: int = -1, max_inflight: Optional[int] = None):
        """Read one block, preferring a local replica. DES process.

        ``max_inflight`` is accepted for the unified ``read_block``
        surface; a single HDFS block is one datanode stream, so it has
        nothing to fan out.
        """
        del max_inflight  # one replica stream; kwarg kept for uniformity
        replica = self._pick_replica(block)
        datanode = self.hdfs.datanode(replica)
        local = datanode.node is self.node
        with tracer_of(self.env).span(
                "hdfs.read_block", cat="storage", track=self.track,
                block=block.block_id, replica=replica,
                locality="node_local" if local else "remote") as span:
            data = yield self.env.process(
                datanode.read(block.block_id, offset, length))
            if not local:
                yield self.hdfs.network.transfer(
                    datanode.node, self.node, len(data))
            self.bytes_read += len(data)
            self.planner.account(len(data))
            span.set(bytes=len(data))
        return data

    @staticmethod
    def _block_pieces(blocks: list[BlockInfo], offset: int,
                      length: int) -> list[tuple[BlockInfo, int, int]]:
        """``(block, in-block offset, nbytes)`` pieces covering a logical
        file range, in file order."""
        pieces: list[tuple[BlockInfo, int, int]] = []
        pos = 0
        end = offset + length
        for block in blocks:
            lo = max(offset, pos)
            hi = min(end, pos + block.length)
            if lo < hi:
                pieces.append((block, lo - pos, hi - lo))
            pos += block.length
        if pos < end:
            raise HDFSError(
                f"read past EOF: {offset}+{length} > {pos}")
        return pieces

    def read(self, path: str, offset: int = 0, length: Optional[int] = None,
             max_inflight: int = 1):
        """Read a byte range (default: the whole file). DES process.

        ``max_inflight > 1`` keeps that many block reads in flight at a
        time (0 = all blocks at once); the default streams serially, the
        stock ``DFSInputStream`` behaviour.
        """
        namenode = self.hdfs.namenode
        yield from namenode.rpc()
        blocks = namenode.get_block_locations(path)
        if offset == 0 and length is None:
            factories = [lambda b=b: self.read_block(b) for b in blocks]
        else:
            if length is None:
                length = sum(b.length for b in blocks) - offset
            factories = [
                lambda b=b, o=o, n=n: self.read_block(b, o, n)
                for b, o, n in self._block_pieces(blocks, offset, length)]
        parts = yield from self.planner.fan_out_blocks(
            factories, max_inflight)
        return b"".join(parts)

    def read_extents(self, path: str, extents,
                     max_inflight: Optional[int] = None):
        """Fetch arbitrary ``(offset, length)`` ranges of a file. DES
        process; returns the requested bytes ordered by file offset.

        ``max_inflight`` bounds how many block pieces are in flight at
        once (default: serial, the stock streaming discipline).
        """
        namenode = self.hdfs.namenode
        yield from namenode.rpc()
        blocks = namenode.get_block_locations(path)
        pieces = [piece
                  for offset, length in sorted(extents)
                  for piece in self._block_pieces(blocks, offset, length)]
        parts = yield from self.planner.fan_out_blocks(
            [lambda b=b, o=o, n=n: self.read_block(b, o, n)
             for b, o, n in pieces],
            max_inflight)
        return b"".join(parts)

    # -- metadata -------------------------------------------------------------
    def stat(self, path: str):
        """Lookup a file entry (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.lookup(path)

    def get_block_locations(self, path: str):
        """Block list with locations (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.get_block_locations(path)

    def listdir(self, path: str):
        """Directory listing (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.listdir(path)

    def exists(self, path: str):
        """Existence check (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        return self.hdfs.namenode.exists(path)

    def delete(self, path: str):
        """Remove a file and its replicas (one RPC). DES process."""
        yield from self.hdfs.namenode.rpc()
        entry = self.hdfs.namenode.delete(path)
        for block in entry.blocks:
            for name in block.locations:
                self.hdfs.datanode(name).drop(block.block_id)
