"""PFS-backed HDFS connector — the unified-file-system baseline.

Models IBM's HDFS Transparency / Seagate's Lustre connector (Fig. 1(b)):
an HDFS-compatible facade whose storage is the PFS. Every "block" read or
write crosses the network to the storage servers and is issued in
RPC-sized requests, each paying a distributed-lock round trip — the
access-pattern mismatch the paper blames for the connector losing Fig. 2
by ~221% ("reading from PFS is not optimal since the PFS is optimized in
favor of HPC workloads instead of BD analysis").
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.node import Node
from repro.hdfs.block import DEFAULT_BLOCK_SIZE, BlockInfo
from repro.hdfs.namenode import HDFSError
from repro.io.planner import ReadPlanner
from repro.io.write import WritePlanner
from repro.pfs.client import PFSClient
from repro.pfs.filesystem import PFS
from repro.pfs.server import PFSError

__all__ = ["ConnectorClient", "PFSConnector"]

#: Lustre client RPC size: reads are chopped into requests of this size.
CONNECTOR_RPC_SIZE = 1024 * 1024
#: Per-request distributed lock (LDLM-style) round trip.
CONNECTOR_LOCK_LATENCY = 0.002


class PFSConnector:
    """HDFS-compatible namespace whose data lives on a PFS."""

    def __init__(self, pfs: PFS,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 rpc_size: int = CONNECTOR_RPC_SIZE,
                 lock_latency: float = CONNECTOR_LOCK_LATENCY,
                 write_max_inflight: Optional[int] = None,
                 write_chunk: Optional[int] = None):
        self.pfs = pfs
        self.env = pfs.env
        self.network = pfs.network
        self.block_size = block_size
        self.rpc_size = rpc_size
        self.lock_latency = lock_latency
        #: stripe-push window/granularity for the backing PFS clients
        #: (None/None = the legacy PFS write shape)
        self.write_max_inflight = write_max_inflight
        self.write_chunk = write_chunk
        # Synthetic block ids must be resolvable by ANY client of this
        # connector (the scheduler enumerates splits with one client,
        # map tasks read with others), so the registry lives here.
        self._next_block_id = -1
        self._block_registry: dict[int, tuple[str, int]] = {}
        self._blocks_by_path: dict[str, list[BlockInfo]] = {}

    # HDFS-facade metadata: blocks are synthesized from the PFS file size;
    # they carry no locations (nothing is node-local behind a connector).
    def get_blocks(self, path: str) -> list[BlockInfo]:
        norm = self.pfs.mds.normalize(path)
        inode = self.pfs.mds.lookup(norm)
        cached = self._blocks_by_path.get(norm)
        if cached is not None and sum(b.length for b in cached) == inode.size:
            return list(cached)
        blocks = []
        pos = 0
        while pos < inode.size:
            length = min(self.block_size, inode.size - pos)
            block = BlockInfo(
                block_id=self._next_block_id,
                length=length,
                locations=[],
            )
            self._block_registry[block.block_id] = (norm, pos)
            self._next_block_id -= 1
            blocks.append(block)
            pos += length
        self._blocks_by_path[norm] = blocks
        return list(blocks)

    def resolve_block(self, block_id: int) -> tuple[str, int]:
        try:
            return self._block_registry[block_id]
        except KeyError:
            raise HDFSError(
                f"unknown connector block {block_id}") from None

    def exists(self, path: str) -> bool:
        return self.pfs.mds.exists(path)

    def listdir(self, path: str) -> list[str]:
        return self.pfs.mds.listdir(path)

    def store_file_sync(self, path: str, data: bytes, **_kwargs) -> None:
        self.pfs.store_file(path, data)

    def read_file_sync(self, path: str) -> bytes:
        return self.pfs.read_file_sync(path)

    def client(self, node: Node) -> "ConnectorClient":
        return ConnectorClient(self, node)


class ConnectorClient:
    """DFSClient-shaped access that actually talks to the PFS.

    The RPC-granular, lock-per-request access pattern is expressed as a
    :class:`repro.io.planner.ReadPlanner` configuration: granularity =
    the Lustre RPC size, per-request overhead = the distributed-lock
    round trip, serial window — the connector's mismatch with BD access
    patterns is literally just a bad planner config.
    """

    def __init__(self, connector: PFSConnector, node: Node):
        self.connector = connector
        self.node = node
        self.env = connector.env
        self._pfs_client = PFSClient(
            connector.pfs, node,
            write_max_inflight=connector.write_max_inflight,
            write_chunk=connector.write_chunk)
        #: the shared read planner (RPC chopping + lock latency)
        self.planner = ReadPlanner(
            self.env, scheme="connector",
            granularity=connector.rpc_size,
            request_overhead=connector.lock_latency,
            max_inflight=1)
        #: write accounting under the ``connector`` scheme (the inner
        #: PFS pushes additionally account under ``pfs``, mirroring the
        #: read side)
        self.write_planner = WritePlanner(self.env, scheme="connector")
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    def get_block_locations(self, path: str):
        """Synthesized block list (one metadata RPC). DES process."""
        yield from self.connector.pfs.mds.rpc()
        return self.connector.get_blocks(path)

    def stat(self, path: str):
        """Lookup the backing PFS inode (one metadata RPC). DES process."""
        yield from self.connector.pfs.mds.rpc()
        try:
            return self.connector.pfs.mds.lookup(path)
        except PFSError as exc:
            raise HDFSError(str(exc)) from exc

    def _read_range(self, path: str, offset: int, length: int,
                    max_inflight: Optional[int] = None):
        """RPC-granular read with a lock round trip per request."""
        data = yield from self.planner.fetch_range(
            path, offset, length,
            lambda pos, n: self._pfs_client.read(path, pos, n),
            max_inflight)
        self.bytes_read += len(data)
        return data

    def read_block(self, block: BlockInfo, offset: int = 0,
                   length: int = -1, max_inflight: Optional[int] = None):
        """Read one synthesized block. DES process."""
        path, base = self.connector.resolve_block(block.block_id)
        if length < 0:
            length = block.length - offset
        if offset + length > block.length:
            raise HDFSError("read past end of block")
        data = yield self.env.process(
            self._read_range(path, base + offset, length, max_inflight))
        return data

    def read(self, path: str, offset: int = 0,
             length: Optional[int] = None,
             max_inflight: Optional[int] = None):
        """Read a byte range (default: the whole file). DES process."""
        yield from self.connector.pfs.mds.rpc()
        try:
            inode = self.connector.pfs.mds.lookup(path)
        except PFSError as exc:
            raise HDFSError(str(exc)) from exc
        if length is None:
            length = inode.size - offset
        data = yield self.env.process(
            self._read_range(path, offset, length, max_inflight))
        return data

    def read_extents(self, path: str, extents,
                     max_inflight: Optional[int] = None):
        """Fetch ``(offset, length)`` ranges, each RPC-chopped. DES
        process; returns the requested bytes ordered by file offset."""
        parts = []
        for offset, length in sorted(extents):
            parts.append((yield self.env.process(
                self._read_range(path, offset, length, max_inflight))))
        return b"".join(parts)

    def write(self, path: str, data: bytes, **_kwargs):
        """Write a file through the connector (RPC-granular). DES process."""
        pos = 0
        requests = 0
        while pos < len(data):
            chunk = data[pos:pos + self.connector.rpc_size]
            yield self.env.timeout(self.connector.lock_latency)
            yield self.env.process(
                self._pfs_client.write(path, chunk, offset=pos))
            pos += len(chunk)
            requests += 1
        self.bytes_written += len(data)
        self.write_planner.account(len(data), requests=requests)

    def listdir(self, path: str):
        """Directory listing (one metadata RPC). DES process."""
        yield from self.connector.pfs.mds.rpc()
        return self.connector.listdir(path)

    def exists(self, path: str):
        """Existence check (one metadata RPC). DES process."""
        yield from self.connector.pfs.mds.rpc()
        return self.connector.exists(path)

    def delete(self, path: str):
        """Remove a file (one metadata RPC). DES process."""
        yield from self.connector.pfs.mds.rpc()
        self.connector.pfs.unlink(path)
