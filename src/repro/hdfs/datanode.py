"""DataNode: per-node block storage on the local disk."""

from __future__ import annotations

from repro.cluster.node import Node
from repro.hdfs.namenode import HDFSError
from repro.sim import Environment

__all__ = ["DataNode"]


class DataNode:
    """Block store bound to one cluster node.

    Blocks are real byte strings. Reads and writes charge the node's
    local disk; shipping bytes to another node is the client's concern
    (that is where the local-read advantage comes from).
    """

    def __init__(self, env: Environment, node: Node):
        self.env = env
        self.node = node
        self.name = node.name
        self.alive = True
        self._blocks: dict[int, bytes] = {}
        #: packet-streamed blocks being assembled (pipelined writes)
        self._partial: dict[int, bytearray] = {}

    def kill(self) -> None:
        """Take the datanode down (failure injection). Blocks stay on
        disk but are unreachable until :meth:`revive`."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def store_sync(self, block_id: int, data: bytes) -> None:
        """Zero-time store (setup path)."""
        self._blocks[block_id] = bytes(data)

    def read_sync(self, block_id: int) -> bytes:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise HDFSError(
                f"datanode {self.name}: no block {block_id}") from None

    def write(self, block_id: int, data: bytes):
        """Timed local write. DES process."""
        if not self.alive:
            raise HDFSError(f"datanode {self.name} is down")
        yield self.node.disk.write(len(data))
        self._blocks[block_id] = bytes(data)

    def write_packet(self, block_id: int, data: bytes, offset: int):
        """Timed local write of one pipeline packet at ``offset`` within
        a block under assembly. DES process.

        Packets land at explicit offsets so out-of-order disk-write
        completions (the pipelined path forks one write per packet)
        still assemble the exact block bytes.
        """
        if not self.alive:
            raise HDFSError(f"datanode {self.name} is down")
        yield self.node.disk.write(len(data))
        buf = self._partial.get(block_id)
        if buf is None:
            buf = self._partial[block_id] = bytearray()
        end = offset + len(data)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data

    def commit_block(self, block_id: int) -> None:
        """Seal a packet-streamed block into the block store (sync)."""
        self._blocks[block_id] = bytes(self._partial.pop(block_id))

    def read(self, block_id: int, offset: int = 0, length: int = -1):
        """Timed local read. DES process."""
        if not self.alive:
            raise HDFSError(f"datanode {self.name} is down")
        data = self.read_sync(block_id)
        if length < 0:
            length = len(data) - offset
        if offset + length > len(data):
            raise HDFSError("read past end of block")
        yield self.node.disk.read(length)
        return data[offset:offset + length]

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)
