"""HDFS assembly: NameNode + DataNodes on a cluster."""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.client import DFSClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import HDFSError, NameNode
from repro.sim import Environment

__all__ = ["HDFS"]


class HDFS:
    """One HDFS instance.

    ``store_file_sync`` is the zero-time setup path: blocks are spread
    round-robin over DataNodes (as a balanced cluster would hold them)
    without charging simulated time — used to set up experiment inputs.
    """

    def __init__(self, env: Environment, network: Network,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = 1,
                 packet_bytes: Optional[int] = None,
                 write_parallel_blocks: int = 1):
        self.env = env
        self.network = network
        self.namenode = NameNode(env, block_size, replication)
        #: replication pipeline packet size inherited by clients;
        #: None = whole-block store-and-forward (legacy)
        self.packet_bytes = packet_bytes
        #: concurrent block pipelines per client write; 1 = sequential
        self.write_parallel_blocks = write_parallel_blocks
        self._datanodes: dict[str, DataNode] = {}
        self._rr = 0

    def add_datanode(self, node: Node) -> DataNode:
        datanode = DataNode(self.env, node)
        self.namenode.register_datanode(datanode.name)
        self._datanodes[datanode.name] = datanode
        return datanode

    def datanode(self, name: str) -> DataNode:
        try:
            return self._datanodes[name]
        except KeyError:
            raise HDFSError(f"unknown datanode {name!r}") from None

    @property
    def datanodes(self) -> list[DataNode]:
        return list(self._datanodes.values())

    def client(self, node: Node,
               packet_bytes: Optional[int] = None,
               write_parallel_blocks: Optional[int] = None) -> DFSClient:
        """A client on ``node``; write knobs default to the filesystem's."""
        return DFSClient(self, node, packet_bytes=packet_bytes,
                         write_parallel_blocks=write_parallel_blocks)

    # -- sync metadata (StorageFacade surface, shared with the connector)
    def listdir(self, path: str) -> list[str]:
        return self.namenode.listdir(path)

    def get_blocks(self, path: str):
        return self.namenode.get_block_locations(path)

    # -- setup helpers -------------------------------------------------------
    def store_file_sync(self, path: str, data: bytes,
                        block_size: Optional[int] = None,
                        replication: Optional[int] = None) -> None:
        """Place a file instantly, blocks balanced round-robin."""
        entry = self.namenode.create_file(path, block_size, replication)
        names = self.namenode.datanodes
        if not names:
            raise HDFSError("no datanodes registered")
        pos = 0
        while pos < len(data):
            chunk = data[pos:pos + entry.block_size]
            block = self.namenode.add_block(entry.path, len(chunk))
            # Override writer-affinity placement with pure round-robin so
            # pre-loaded data is balanced like a real ingested dataset.
            block.locations = []
            repl = min(entry.replication, len(names))
            for r in range(repl):
                block.locations.append(names[(self._rr + r) % len(names)])
            self._rr += 1
            for name in block.locations:
                self._datanodes[name].store_sync(block.block_id, chunk)
            pos += len(chunk)
        self.namenode.complete_file(entry.path)

    def decommission(self, name: str):
        """Gracefully drain a datanode. DES process.

        Every replica it holds is copied to another live datanode (disk
        read, network transfer, disk write), the block map is updated,
        and the node is removed from placement — the standard HDFS
        decommissioning flow. Returns the number of blocks moved.
        """
        source = self.datanode(name)
        blocks = self.namenode.blocks_on(name)
        self.namenode.unregister_datanode(name)
        moved = 0
        for block in blocks:
            holders = set(block.locations)
            candidates = [
                dn for dn in self._datanodes.values()
                if dn.alive and dn.name != name
                and self.namenode.has_datanode(dn.name)
                and dn.name not in holders
            ]
            if not candidates:
                raise HDFSError(
                    f"no live target to re-replicate block "
                    f"{block.block_id}")
            target = min(candidates, key=lambda dn: dn.used_bytes)
            data = yield self.env.process(
                source.read(block.block_id, 0, block.length))
            yield self.network.transfer(source.node, target.node,
                                        len(data))
            yield self.env.process(target.write(block.block_id, data))
            block.locations = [target.name if loc == name else loc
                               for loc in block.locations]
            source.drop(block.block_id)
            moved += 1
        return moved

    def read_file_sync(self, path: str) -> bytes:
        """Assemble a file with no simulated time (verification path)."""
        parts = []
        for block in self.namenode.get_block_locations(path):
            if block.is_virtual:
                raise HDFSError(
                    "virtual blocks hold no HDFS data; read via SciDP")
            datanode = self._datanodes[block.locations[0]]
            parts.append(datanode.read_sync(block.block_id))
        return b"".join(parts)
