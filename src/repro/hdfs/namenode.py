"""NameNode: namespace, block map, and placement policy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdfs.block import DEFAULT_BLOCK_SIZE, BlockInfo, VirtualBlock
from repro.sim import Environment

__all__ = ["FileEntry", "HDFSError", "NameNode"]

#: One NameNode RPC (create/add-block/get-locations).
NAMENODE_RPC_LATENCY = 0.0003


class HDFSError(Exception):
    """HDFS-level errors."""


@dataclass
class FileEntry:
    """Namespace record for one file."""

    path: str
    block_size: int
    replication: int
    blocks: list[BlockInfo] = field(default_factory=list)
    complete: bool = False

    @property
    def size(self) -> int:
        return sum(b.length for b in self.blocks)

    @property
    def is_virtual(self) -> bool:
        return any(b.is_virtual for b in self.blocks)


class NameNode:
    """Master metadata service.

    Placement policy: first replica on the writer's DataNode when it is
    one, remaining replicas round-robin — deterministic, locality-first,
    matching stock HDFS behaviour closely enough for the experiments.
    """

    def __init__(self, env: Environment,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = 1):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.env = env
        self.block_size = block_size
        self.replication = replication
        self._files: dict[str, FileEntry] = {}
        #: registration-ordered list (drives round-robin placement) plus
        #: a mirror set for O(1) membership — the list alone made every
        #: registration / placement / decommission check O(n)
        self._datanodes: list[str] = []
        self._datanode_set: set[str] = set()
        self._next_block_id = 1
        self._rr = 0  # round-robin cursor

    # -- registration ------------------------------------------------------
    def register_datanode(self, name: str) -> None:
        if name in self._datanode_set:
            raise HDFSError(f"datanode {name!r} already registered")
        self._datanodes.append(name)
        self._datanode_set.add(name)

    def has_datanode(self, name: str) -> bool:
        """O(1) membership test — preferred over scanning ``datanodes``."""
        return name in self._datanode_set

    @property
    def datanodes(self) -> list[str]:
        return list(self._datanodes)

    @staticmethod
    def normalize(path: str) -> str:
        return "/" + "/".join(p for p in path.split("/") if p)

    def rpc(self):
        """One NameNode round trip. DES process."""
        yield self.env.timeout(NAMENODE_RPC_LATENCY)

    # -- namespace ----------------------------------------------------------
    def create_file(self, path: str,
                    block_size: Optional[int] = None,
                    replication: Optional[int] = None) -> FileEntry:
        norm = self.normalize(path)
        if norm in self._files:
            raise HDFSError(f"file exists: {norm}")
        entry = FileEntry(
            path=norm,
            block_size=block_size or self.block_size,
            replication=replication or self.replication,
        )
        self._files[norm] = entry
        return entry

    def create_virtual_file(self, path: str,
                            blocks: list[VirtualBlock]) -> FileEntry:
        """Create a dummy-block file mapping to PFS data (§III-A.2).

        No DataNode storage is allocated; each block's length is the
        mapped segment's length and its location list is empty.
        """
        entry = self.create_file(path)
        for vb in blocks:
            entry.blocks.append(BlockInfo(
                block_id=self._next_block_id,
                length=vb.length,
                locations=[],
                virtual=vb,
            ))
            self._next_block_id += 1
        entry.complete = True
        return entry

    def lookup(self, path: str) -> FileEntry:
        norm = self.normalize(path)
        try:
            return self._files[norm]
        except KeyError:
            raise HDFSError(f"no such file: {norm}") from None

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._files

    def delete(self, path: str) -> FileEntry:
        norm = self.normalize(path)
        try:
            return self._files.pop(norm)
        except KeyError:
            raise HDFSError(f"no such file: {norm}") from None

    def listdir(self, path: str) -> list[str]:
        prefix = self.normalize(path)
        if prefix != "/":
            prefix += "/"
        out = []
        for p in self._files:
            if p.startswith(prefix):
                rest = p[len(prefix):]
                if "/" not in rest:
                    out.append(p)
        return sorted(out)

    def glob_dir(self, path: str) -> list[FileEntry]:
        return [self._files[p] for p in self.listdir(path)]

    # -- blocks --------------------------------------------------------------
    def choose_targets(self, writer: Optional[str],
                       replication: int) -> list[str]:
        if not self._datanodes:
            raise HDFSError("no datanodes registered")
        replication = min(replication, len(self._datanodes))
        targets: list[str] = []
        if writer is not None and writer in self._datanode_set:
            targets.append(writer)
        while len(targets) < replication:
            candidate = self._datanodes[self._rr % len(self._datanodes)]
            self._rr += 1
            if candidate not in targets:
                targets.append(candidate)
        return targets

    def add_block(self, path: str, length: int,
                  writer: Optional[str] = None) -> BlockInfo:
        entry = self.lookup(path)
        if entry.complete:
            raise HDFSError(f"file {path!r} is complete")
        if length < 0 or length > entry.block_size:
            raise HDFSError(
                f"bad block length {length} (block_size {entry.block_size})")
        block = BlockInfo(
            block_id=self._next_block_id,
            length=length,
            locations=self.choose_targets(writer, entry.replication),
        )
        self._next_block_id += 1
        entry.blocks.append(block)
        return block

    def complete_file(self, path: str) -> None:
        self.lookup(path).complete = True

    def get_block_locations(self, path: str) -> list[BlockInfo]:
        entry = self.lookup(path)
        if not entry.complete:
            raise HDFSError(f"file {path!r} is not complete")
        return list(entry.blocks)

    def blocks_on(self, datanode_name: str) -> list[BlockInfo]:
        """All blocks holding a replica on ``datanode_name``."""
        out = []
        for entry in self._files.values():
            for block in entry.blocks:
                if datanode_name in block.locations:
                    out.append(block)
        return out

    def unregister_datanode(self, name: str) -> None:
        """Remove a datanode from placement decisions."""
        if name not in self._datanode_set:
            raise HDFSError(f"unknown datanode {name!r}")
        self._datanode_set.discard(name)
        self._datanodes.remove(name)
