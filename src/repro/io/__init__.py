"""`repro.io` — the unified extent-based data plane.

One storage abstraction for every backend (PAPER.md §III: one framework
reads both HDFS blocks and PFS-resident scientific data):

- :mod:`repro.io.plan` — the :class:`Extent`/:class:`ReadPlan` model and
  the shared byte-counting helpers.
- :mod:`repro.io.protocol` — the :class:`StorageClient` /
  :class:`StorageFacade` protocols every backend client implements.
- :mod:`repro.io.registry` — the scheme registry (``hdfs://``,
  ``pfs://``, ``scidp://``): open any backend by path.
- :mod:`repro.io.planner` — the single :class:`ReadPlanner` owning
  granularity chopping, per-device extent coalescing, bounded fan-out,
  and read-ahead-cache join-in-flight for all backends.
- :mod:`repro.io.write` — the write-side twin: the
  :class:`WritePlanner` owning payload-contiguous coalescing, chunk
  chopping, bounded push fan-out and per-scheme ``io.write.*``
  accounting, plus the :class:`WriteBehindFlusher` async output commit.

Backend adapters (``repro.hdfs.client``, ``repro.pfs.client``,
``repro.hdfs.connector``, ``repro.core.reader``) keep their historical
import paths and delegate their data paths here. New backends implement
:class:`StorageClient` and register a scheme — one adapter file, not a
fourth fork of the read path (see DESIGN.md §9 for the layering rules
and the shim deprecation policy).
"""

from repro.io.plan import (
    Extent,
    ReadPlan,
    ScanPlan,
    WritePlan,
    block_raw_bytes,
    element_bytes,
)
from repro.io.planner import ReadPlanner, chop_range, coalesce_extents
from repro.io.protocol import READ_BLOCK_KWARGS, StorageClient, StorageFacade
from repro.io.write import (
    WriteBehindFlusher,
    WritePlanner,
    chop_extents,
    coalesce_payload_runs,
)
from repro.io.registry import (
    SchemeAlreadyRegisteredError,
    StorageRegistry,
    UnknownSchemeError,
    join_url,
    split_url,
)

__all__ = [
    "Extent",
    "READ_BLOCK_KWARGS",
    "ReadPlan",
    "ReadPlanner",
    "ScanPlan",
    "SchemeAlreadyRegisteredError",
    "StorageClient",
    "StorageFacade",
    "StorageRegistry",
    "UnknownSchemeError",
    "WriteBehindFlusher",
    "WritePlan",
    "WritePlanner",
    "block_raw_bytes",
    "chop_extents",
    "chop_range",
    "coalesce_extents",
    "coalesce_payload_runs",
    "element_bytes",
    "join_url",
    "split_url",
]
