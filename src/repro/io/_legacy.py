"""Frozen pre-planner read paths, kept only for equivalence tests.

The mirror of :mod:`repro.sim._legacy`: when the data plane collapsed
into :mod:`repro.io.planner`, the duplicated chopping/coalescing/fan-out
copies that used to live in ``PFSReader``, ``PFSClient.read_extents``,
and ``ConnectorClient._read_range`` were deleted from the production
modules and their exact shapes preserved here, so
``tests/io/test_planner_equivalence.py`` can hold the planner to the
legacy event sequences (identical simulated timings *and* byte streams)
on randomized workloads.

Do not use these from production code.
"""

from __future__ import annotations

from typing import Optional

from repro.io.plan import Extent
from repro.sim.engine import AllOf
from repro.sim.pipeline import bounded_fanout

__all__ = [
    "LegacyRangeReader",
    "legacy_chop",
    "legacy_coalesce_extents",
    "legacy_read_extents",
]


def legacy_chop(offset: int, length: int,
                granularity: Optional[int]) -> list[tuple[int, int]]:
    """``PFSReader._chop`` as of PR 2."""
    if granularity is None:
        return [(offset, length)]
    pieces = []
    pos = offset
    end = offset + length
    while pos < end:
        piece = min(granularity, end - pos)
        pieces.append((pos, piece))
        pos += piece
    return pieces


def legacy_coalesce_extents(extents: list[Extent]) -> dict[int, list[Extent]]:
    """``repro.pfs.client.coalesce_extents`` as of PR 2."""
    per_ost: dict[int, list[Extent]] = {}
    for ext in sorted(extents, key=lambda e: (e.ost_index, e.object_offset)):
        runs = per_ost.setdefault(ext.ost_index, [])
        if runs:
            last = runs[-1]
            if last.object_offset + last.length == ext.object_offset:
                runs[-1] = Extent(
                    ost_index=last.ost_index,
                    object_offset=last.object_offset,
                    file_offset=last.file_offset,
                    length=last.length + ext.length)
                continue
        runs.append(ext)
    return per_ost


def legacy_read_extents(client, inode, extents: list[Extent],
                        max_inflight: Optional[int] = None):
    """``PFSClient.read_extents`` as of PR 2. DES process.

    ``client`` is a live :class:`~repro.pfs.client.PFSClient`; only its
    ``_fetch_run`` transfer primitive is reused, the planning and
    reassembly above it are the frozen legacy copies.
    """
    env = client.env
    window = client.max_inflight if max_inflight is None else max_inflight
    per_ost = legacy_coalesce_extents(extents)
    results: dict = {}
    all_runs = [run for runs in per_ost.values() for run in runs]
    if 0 < window < len(all_runs):
        yield from bounded_fanout(
            env,
            [lambda run=run: client._fetch_run(inode, run, results)
             for run in all_runs],
            window)
    else:
        fetchers = [
            env.process(client._fetch_run(inode, run, results))
            for run in all_runs
        ]
        if fetchers:
            yield AllOf(env, fetchers)
    run_data: dict[int, list[tuple[Extent, bytes]]] = {}
    for run, data in results.values():
        run_data.setdefault(run.ost_index, []).append((run, data))
    pieces: list[tuple[int, bytes]] = []
    for ext in extents:
        for run, data in run_data[ext.ost_index]:
            if (run.object_offset <= ext.object_offset
                    and ext.object_offset + ext.length
                    <= run.object_offset + run.length):
                lo = ext.object_offset - run.object_offset
                pieces.append((ext.file_offset, data[lo:lo + ext.length]))
                break
        else:  # pragma: no cover - coalesce invariant violated
            raise RuntimeError("extent not covered by any coalesced run")
    ordered = b"".join(data for _off, data in sorted(pieces))
    return ordered


class LegacyRangeReader:
    """``PFSReader``'s chop/fetch machinery as of PR 2 (flat ranges).

    Drives ``client.read`` with the legacy ``_chop`` + ``_fetch_piece``
    + ``_fetch_range`` event sequences, including the read-ahead-cache
    join-in-flight protocol, for side-by-side comparison with
    :class:`~repro.io.planner.ReadPlanner.fetch_range`.
    """

    def __init__(self, client, granularity: Optional[int] = None,
                 request_overhead: float = 0.0,
                 max_inflight: int = 1, cache=None):
        self.client = client
        self.env = client.env
        self.granularity = granularity
        self.request_overhead = request_overhead
        self.max_inflight = max_inflight
        self.cache = cache

    def _fetch_piece(self, path: str, pos: int, length: int,
                     prefetching: bool = False):
        cache = self.cache
        if cache is not None:
            key = (path, pos, length)
            data = cache.get(key)
            if data is not None:
                return data
            waiter = cache.join(key)
            if waiter is not None:
                data = yield waiter
                return data
            reservation = cache.reserve(key)
            try:
                yield self.env.timeout(self.request_overhead)
                data = yield self.env.process(
                    self.client.read(path, pos, length))
            except BaseException as exc:
                reservation.abort(exc)
                raise
            reservation.fill(data, prefetched=prefetching)
            return data
        yield self.env.timeout(self.request_overhead)
        data = yield self.env.process(self.client.read(path, pos, length))
        return data

    def fetch_range(self, path: str, offset: int, length: int):
        """Legacy ``PFSReader._fetch_range``. DES process."""
        pieces = legacy_chop(offset, length, self.granularity)
        if len(pieces) == 1:
            data = yield from self._fetch_piece(path, *pieces[0])
            return data
        if self.max_inflight == 1:
            parts = []
            for pos, n in pieces:
                parts.append((yield from self._fetch_piece(path, pos, n)))
        else:
            parts = yield from bounded_fanout(
                self.env,
                [lambda pos=pos, n=n: self._fetch_piece(path, pos, n)
                 for pos, n in pieces],
                self.max_inflight)
        return b"".join(parts)
