"""Frozen pre-planner read *and write* paths, kept only for tests.

The mirror of :mod:`repro.sim._legacy`: when the data plane collapsed
into :mod:`repro.io.planner`, the duplicated chopping/coalescing/fan-out
copies that used to live in ``PFSReader``, ``PFSClient.read_extents``,
and ``ConnectorClient._read_range`` were deleted from the production
modules and their exact shapes preserved here, so
``tests/io/test_planner_equivalence.py`` can hold the planner to the
legacy event sequences (identical simulated timings *and* byte streams)
on randomized workloads.

The ``legacy_*_write*`` functions are the write-side freeze: the seed
``DFSClient.write`` (sequential blocks, whole-block store-and-forward
replication), ``PFSClient.write`` (one push per stripe extent under an
unbounded ``AllOf``) and ``MPIFile.write_at_all`` (two-phase exchange
whose aggregators call the legacy PFS write), exactly as they stood
before the :class:`~repro.io.write.WritePlanner` port.
``tests/io/test_write_equivalence.py`` holds the default-knob
production writers to these event sequences.

Do not use these from production code.
"""

from __future__ import annotations

from typing import Optional

from repro.io.plan import Extent
from repro.sim.engine import AllOf
from repro.sim.pipeline import bounded_fanout

__all__ = [
    "LegacyRangeReader",
    "legacy_chop",
    "legacy_coalesce_extents",
    "legacy_hdfs_write",
    "legacy_pfs_write",
    "legacy_read_extents",
    "legacy_write_at_all",
]


def legacy_chop(offset: int, length: int,
                granularity: Optional[int]) -> list[tuple[int, int]]:
    """``PFSReader._chop`` as of PR 2."""
    if granularity is None:
        return [(offset, length)]
    pieces = []
    pos = offset
    end = offset + length
    while pos < end:
        piece = min(granularity, end - pos)
        pieces.append((pos, piece))
        pos += piece
    return pieces


def legacy_coalesce_extents(extents: list[Extent]) -> dict[int, list[Extent]]:
    """``repro.pfs.client.coalesce_extents`` as of PR 2."""
    per_ost: dict[int, list[Extent]] = {}
    for ext in sorted(extents, key=lambda e: (e.ost_index, e.object_offset)):
        runs = per_ost.setdefault(ext.ost_index, [])
        if runs:
            last = runs[-1]
            if last.object_offset + last.length == ext.object_offset:
                runs[-1] = Extent(
                    ost_index=last.ost_index,
                    object_offset=last.object_offset,
                    file_offset=last.file_offset,
                    length=last.length + ext.length)
                continue
        runs.append(ext)
    return per_ost


def legacy_read_extents(client, inode, extents: list[Extent],
                        max_inflight: Optional[int] = None):
    """``PFSClient.read_extents`` as of PR 2. DES process.

    ``client`` is a live :class:`~repro.pfs.client.PFSClient`; only its
    ``_fetch_run`` transfer primitive is reused, the planning and
    reassembly above it are the frozen legacy copies.
    """
    env = client.env
    window = client.max_inflight if max_inflight is None else max_inflight
    per_ost = legacy_coalesce_extents(extents)
    results: dict = {}
    all_runs = [run for runs in per_ost.values() for run in runs]
    if 0 < window < len(all_runs):
        yield from bounded_fanout(
            env,
            [lambda run=run: client._fetch_run(inode, run, results)
             for run in all_runs],
            window)
    else:
        fetchers = [
            env.process(client._fetch_run(inode, run, results))
            for run in all_runs
        ]
        if fetchers:
            yield AllOf(env, fetchers)
    run_data: dict[int, list[tuple[Extent, bytes]]] = {}
    for run, data in results.values():
        run_data.setdefault(run.ost_index, []).append((run, data))
    pieces: list[tuple[int, bytes]] = []
    for ext in extents:
        for run, data in run_data[ext.ost_index]:
            if (run.object_offset <= ext.object_offset
                    and ext.object_offset + ext.length
                    <= run.object_offset + run.length):
                lo = ext.object_offset - run.object_offset
                pieces.append((ext.file_offset, data[lo:lo + ext.length]))
                break
        else:  # pragma: no cover - coalesce invariant violated
            raise RuntimeError("extent not covered by any coalesced run")
    ordered = b"".join(data for _off, data in sorted(pieces))
    return ordered


class LegacyRangeReader:
    """``PFSReader``'s chop/fetch machinery as of PR 2 (flat ranges).

    Drives ``client.read`` with the legacy ``_chop`` + ``_fetch_piece``
    + ``_fetch_range`` event sequences, including the read-ahead-cache
    join-in-flight protocol, for side-by-side comparison with
    :class:`~repro.io.planner.ReadPlanner.fetch_range`.
    """

    def __init__(self, client, granularity: Optional[int] = None,
                 request_overhead: float = 0.0,
                 max_inflight: int = 1, cache=None):
        self.client = client
        self.env = client.env
        self.granularity = granularity
        self.request_overhead = request_overhead
        self.max_inflight = max_inflight
        self.cache = cache

    def _fetch_piece(self, path: str, pos: int, length: int,
                     prefetching: bool = False):
        cache = self.cache
        if cache is not None:
            key = (path, pos, length)
            data = cache.get(key)
            if data is not None:
                return data
            waiter = cache.join(key)
            if waiter is not None:
                data = yield waiter
                return data
            reservation = cache.reserve(key)
            try:
                yield self.env.timeout(self.request_overhead)
                data = yield self.env.process(
                    self.client.read(path, pos, length))
            except BaseException as exc:
                reservation.abort(exc)
                raise
            reservation.fill(data, prefetched=prefetching)
            return data
        yield self.env.timeout(self.request_overhead)
        data = yield self.env.process(self.client.read(path, pos, length))
        return data

    def fetch_range(self, path: str, offset: int, length: int):
        """Legacy ``PFSReader._fetch_range``. DES process."""
        pieces = legacy_chop(offset, length, self.granularity)
        if len(pieces) == 1:
            data = yield from self._fetch_piece(path, *pieces[0])
            return data
        if self.max_inflight == 1:
            parts = []
            for pos, n in pieces:
                parts.append((yield from self._fetch_piece(path, pos, n)))
        else:
            parts = yield from bounded_fanout(
                self.env,
                [lambda pos=pos, n=n: self._fetch_piece(path, pos, n)
                 for pos, n in pieces],
                self.max_inflight)
        return b"".join(parts)


def _legacy_hdfs_write_block(client, path: str, chunk: bytes):
    """``DFSClient._write_block`` as of PR 4: one namenode RPC, block
    allocation, then the whole-block store-and-forward replication
    chain. DES generator."""
    namenode = client.hdfs.namenode
    yield from namenode.rpc()
    block = namenode.add_block(path, len(chunk), writer=client.node.name)
    prev_node = client.node
    for target_name in block.locations:
        datanode = client.hdfs.datanode(target_name)
        yield client.hdfs.network.transfer(
            prev_node, datanode.node, len(chunk))
        yield client.env.process(datanode.write(block.block_id, chunk))
        prev_node = datanode.node
    return block


def legacy_hdfs_write(client, path: str, data: bytes,
                      block_size: Optional[int] = None,
                      replication: Optional[int] = None):
    """``DFSClient.write`` as of PR 4: strictly sequential blocks, each
    through the whole-block replication chain. DES process.

    ``client`` is a live :class:`~repro.hdfs.client.DFSClient`; only
    its environment/namenode/datanode handles are reused — the write
    discipline above them is the frozen legacy copy.
    """
    namenode = client.hdfs.namenode
    yield from namenode.rpc()
    entry = namenode.create_file(path, block_size, replication)
    pos = 0
    while pos < len(data):
        chunk = data[pos:pos + entry.block_size]
        yield client.env.process(
            _legacy_hdfs_write_block(client, entry.path, chunk))
        pos += len(chunk)
    namenode.complete_file(entry.path)
    client.bytes_written += len(data)
    return entry


def legacy_pfs_write(client, path: str, data: bytes, offset: int = 0,
                     layout=None):
    """``PFSClient.write`` as of PR 4: one push per stripe extent (no
    coalescing, no chunking) under an unbounded ``AllOf``. DES process.

    Only the client's ``_push_run`` transfer primitive is reused; the
    planning above it is the frozen legacy copy.
    """
    env = client.env
    yield from client.pfs.mds.rpc()
    if client.pfs.mds.exists(path):
        inode = client.pfs.mds.lookup(path)
    else:
        inode = client.pfs.create(path, layout)
    extents = inode.layout.map_range(offset, len(data))
    writers = []
    for ext in extents:
        chunk = data[ext.file_offset - offset:
                     ext.file_offset - offset + ext.length]
        writers.append(
            env.process(client._push_run(inode, ext, chunk)))
    if writers:
        yield AllOf(env, writers)
    inode.size = max(inode.size, offset + len(data))
    return inode


def legacy_write_at_all(handle, requests):
    """``MPIFile.write_at_all`` as of PR 4: two-phase collective write
    whose phase-2 aggregators issue :func:`legacy_pfs_write` calls in
    parallel. DES process. ``handle`` is a live
    :class:`~repro.pfs.mpiio.MPIFile`.
    """
    from repro.pfs.mpiio import merge_ranges, partition_domains
    from repro.pfs.server import PFSError

    env = handle.env
    if len(requests) != handle.nranks:
        raise PFSError("one request entry per rank required")
    live = [(rank, off, data) for rank, req in enumerate(requests)
            if req is not None and len(req[1]) > 0
            for off, data in [req]]
    if not live:
        return
    spans = sorted((off, off + len(data)) for _r, off, data in live)
    for (lo_a, hi_a), (lo_b, _hi_b) in zip(spans, spans[1:]):
        if lo_b < hi_a:
            raise PFSError("overlapping collective writes")

    merged = merge_ranges([(off, len(data)) for _r, off, data in live])
    domains = partition_domains(merged, handle.nranks)

    payloads: dict[int, list[tuple[int, bytes]]] = {}
    shuffles = []
    for agg_rank, domain in enumerate(domains):
        for d_off, d_len in domain:
            d_end = d_off + d_len
            for w_rank, w_off, w_data in live:
                lo = max(d_off, w_off)
                hi = min(d_end, w_off + len(w_data))
                if lo >= hi:
                    continue
                piece = w_data[lo - w_off:hi - w_off]
                payloads.setdefault(agg_rank, []).append((lo, piece))
                if w_rank != agg_rank:
                    shuffles.append(handle.pfs.network.transfer(
                        handle.clients[w_rank].node,
                        handle.clients[agg_rank].node, len(piece)))
    if shuffles:
        yield AllOf(env, shuffles)

    writers = []
    for agg_rank, pieces in payloads.items():
        pieces.sort()
        runs: list[tuple[int, bytes]] = []
        for off, piece in pieces:
            if runs and runs[-1][0] + len(runs[-1][1]) == off:
                runs[-1] = (runs[-1][0], runs[-1][1] + piece)
            else:
                runs.append((off, piece))
        for off, blob in runs:
            writers.append(env.process(legacy_pfs_write(
                handle.clients[agg_rank], handle.path, blob, offset=off)))
    if writers:
        yield AllOf(env, writers)
    handle._inode = handle.pfs.mds.lookup(handle.path)
