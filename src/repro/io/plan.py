"""Extent and read-plan model for the unified data plane.

:class:`Extent` is the canonical placement unit: a contiguous run of one
file's bytes on one device object (an OST object for the PFS, a block
replica for HDFS). It lives here so every backend and the planner speak
the same structure; :mod:`repro.pfs.layout` re-exports it for the legacy
import path.

:class:`ReadPlan` is what the :class:`~repro.io.planner.ReadPlanner`
produces from a logical byte-range request: the ordered request pieces a
backend will actually issue, after granularity chopping.

:func:`element_bytes` / :func:`block_raw_bytes` are the single
byte-counting helpers shared by the PFS Reader, the Data Mapper, and
planner accounting, so datapath counters cannot drift between backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

__all__ = [
    "Extent",
    "ReadPlan",
    "ScanPlan",
    "WritePlan",
    "block_raw_bytes",
    "element_bytes",
]


@dataclass(frozen=True)
class Extent:
    """A contiguous run of bytes of one file on one device object.

    ``ost_index`` names the device slot within the file's device list —
    an OST for striped PFS files; HDFS adapters use the block's ordinal.
    """

    ost_index: int      # index into the file's device (OST) list
    object_offset: int  # offset within the per-device object
    file_offset: int    # offset within the logical file
    length: int

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("extent length must be > 0")


@dataclass(frozen=True)
class ReadPlan:
    """The request pieces one logical read decomposes into.

    ``pieces`` are ``(offset, length)`` pairs in file order, already
    chopped to the planner's granularity. ``granularity`` records the
    chop size used (None = whole-range single requests).
    """

    pieces: tuple[tuple[int, int], ...]
    granularity: Optional[int] = None

    @property
    def n_requests(self) -> int:
        return len(self.pieces)

    @property
    def total_bytes(self) -> int:
        return sum(n for _pos, n in self.pieces)

    def __iter__(self):
        return iter(self.pieces)

    def __len__(self) -> int:
        return len(self.pieces)


@dataclass(frozen=True)
class ScanPlan:
    """A pruned table/variable scan: what will be read, and what the
    planner proved it may skip.

    ``pieces`` are the surviving ``(offset, length)`` ranges (the
    :class:`ReadPlan` shape); ``skipped`` carries the ranges projection
    or zone-map pruning excluded, so byte-reduction accounting
    (``ReadPlanner.account_skipped``) reports exactly what the eager
    path would have moved.
    """

    pieces: tuple[tuple[int, int], ...]
    skipped: tuple[tuple[int, int], ...] = ()
    granularity: Optional[int] = None

    @property
    def n_requests(self) -> int:
        return len(self.pieces)

    @property
    def total_bytes(self) -> int:
        return sum(n for _pos, n in self.pieces)

    @property
    def skipped_bytes(self) -> int:
        return sum(n for _pos, n in self.skipped)

    def __iter__(self):
        return iter(self.pieces)

    def __len__(self) -> int:
        return len(self.pieces)


@dataclass(frozen=True)
class WritePlan:
    """The push requests one logical write decomposes into.

    The write-side twin of :class:`ReadPlan`: ``extents`` are the
    per-device runs a backend will actually push, in payload order,
    after payload-contiguous coalescing and chunk chopping. ``chunk``
    records the chop size used (None = whole-extent single pushes).
    """

    extents: tuple[Extent, ...]
    chunk: Optional[int] = None

    @property
    def n_requests(self) -> int:
        return len(self.extents)

    @property
    def total_bytes(self) -> int:
        return sum(ext.length for ext in self.extents)

    def __iter__(self):
        return iter(self.extents)

    def __len__(self) -> int:
        return len(self.extents)


def element_bytes(dtype: Any, count: Sequence[int], *,
                  scalar_when_empty: bool = False) -> int:
    """Raw payload bytes of ``count``-shaped elements of ``dtype``.

    The one place raw-byte math lives: an empty ``count`` selects
    nothing (0 bytes) unless ``scalar_when_empty`` — the Data Mapper's
    convention for scalar sub-slabs.
    """
    import numpy as np

    itemsize = np.dtype(dtype).itemsize
    if not count:
        return itemsize if scalar_when_empty else 0
    return itemsize * math.prod(count)


def block_raw_bytes(block) -> int:
    """Uncompressed payload size of a dummy block (flat or hyperslab).

    A zero-dimensional hyperslab (empty ``count``) selects nothing and
    reports 0 bytes.
    """
    if block.hyperslab is None:
        return block.length
    return element_bytes(block.hyperslab["dtype"], block.hyperslab["count"])
