"""The one read planner: chopping, coalescing, fan-out, cache joining.

Every storage backend routes its data path through this module. What
used to be four private copies of the same machinery — granularity
chopping in ``PFSReader._chop``, per-OST run coalescing in
``repro.pfs.client.coalesce_extents``, RPC-size chopping in
``ConnectorClient._read_range``, and per-backend bounded fan-out — now
lives here once, so a new backend is a thin adapter and the datapath
counters stay comparable across schemes.

Timing discipline
-----------------
The perf-smoke golden numbers pin the simulated physics to 1e-9, so the
planner reproduces each historical fan-out shape *exactly*:

- :meth:`ReadPlanner.fetch_range` — the PFS Reader / connector shape:
  one piece is fetched inline, a serial window (``max_inflight == 1``)
  loops inline, anything else rides :func:`bounded_fanout`.
- :meth:`ReadPlanner.fan_out_runs` — the PFS client shape: a window
  strictly between 0 and the run count bounds the fan-out, otherwise
  every run is issued up front and awaited with one ``AllOf``.
- :meth:`ReadPlanner.fan_out_blocks` — the DFS client shape: windowed
  only for ``max_inflight != 1`` over multiple blocks, otherwise a
  serial process-per-block loop (stock ``DFSInputStream`` streaming).

Changing any of these disciplines changes event creation order and is a
behaviour change, not a refactor; the equivalence tests in
``tests/io/test_planner_equivalence.py`` hold them to the legacy paths.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.io.plan import Extent, ReadPlan
from repro.obs.metrics import metrics_of
from repro.sim.cache import ReadAheadCache
from repro.sim.engine import AllOf
from repro.sim.pipeline import bounded_fanout

__all__ = ["ReadPlanner", "chop_range", "coalesce_extents"]


def chop_range(offset: int, length: int,
               granularity: Optional[int]) -> list[tuple[int, int]]:
    """(pos, nbytes) request pieces for one byte range.

    ``granularity=None`` keeps the range whole (SciDP's single
    whole-block request); otherwise pieces are at most ``granularity``
    bytes (Hadoop's 64 KiB streaming, the connector's RPC size).
    """
    if granularity is None:
        return [(offset, length)]
    pieces = []
    pos = offset
    end = offset + length
    while pos < end:
        piece = min(granularity, end - pos)
        pieces.append((pos, piece))
        pos += piece
    return pieces


def coalesce_extents(extents: list[Extent]) -> dict[int, list[Extent]]:
    """Group extents by device and merge object-adjacent runs into one
    bulk request.

    Real clients build one bulk RPC per device per contiguous object
    range; this is what makes large aligned reads cheap (one seek) and
    scattered small reads expensive (a seek each) — the asymmetry behind
    Fig. 6.
    """
    per_device: dict[int, list[Extent]] = {}
    for ext in sorted(extents, key=lambda e: (e.ost_index, e.object_offset)):
        runs = per_device.setdefault(ext.ost_index, [])
        if runs:
            last = runs[-1]
            if last.object_offset + last.length == ext.object_offset:
                runs[-1] = Extent(
                    ost_index=last.ost_index,
                    object_offset=last.object_offset,
                    file_offset=last.file_offset,
                    length=last.length + ext.length)
                continue
        runs.append(ext)
    return per_device


class ReadPlanner:
    """Plans and drives one backend's read requests.

    One planner per client instance, tagged with the backend ``scheme``
    (``hdfs``, ``pfs``, ``scidp``, ``connector``) so the metrics
    registry can report per-scheme read rows uniformly.

    ``fetch`` callbacks passed to the drive methods are thunks
    ``fetch(pos, nbytes)`` returning a DES generator that performs the
    backend's actual timed transfer.
    """

    def __init__(self, env, scheme: str = "",
                 granularity: Optional[int] = None,
                 request_overhead: float = 0.0,
                 max_inflight: int = 1,
                 cache: Optional[ReadAheadCache] = None):
        if granularity is not None and granularity < 1:
            raise ValueError("granularity must be >= 1")
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 = unbounded)")
        self.env = env
        self.scheme = scheme
        self.granularity = granularity
        #: per-request software overhead charged before each piece fetch
        self.request_overhead = request_overhead
        #: in-flight request window; 1 = serial, 0 = unbounded
        self.max_inflight = max_inflight
        #: optional node-level read-ahead cache of stored byte ranges
        self.cache = cache

    # -- planning ----------------------------------------------------------
    def plan(self, ranges: Sequence[tuple[int, int]]) -> ReadPlan:
        """Chop logical ``(offset, length)`` ranges into request pieces."""
        pieces: list[tuple[int, int]] = []
        for offset, length in ranges:
            pieces.extend(chop_range(offset, length, self.granularity))
        return ReadPlan(pieces=tuple(pieces), granularity=self.granularity)

    def plan_runs(self, extents: Sequence[Extent]) -> dict[int, list[Extent]]:
        """Coalesce mapped extents into per-device bulk-request runs."""
        return coalesce_extents(list(extents))

    # -- accounting --------------------------------------------------------
    def account(self, nbytes: int, requests: int = 1,
                cache_hits: int = 0) -> None:
        """Roll a completed read into the per-scheme metrics counters.

        Pure-Python counters: no simulated events, so instrumentation
        never shifts timings.
        """
        registry = metrics_of(self.env)
        if registry is None:
            return
        prefix = f"io.read.{self.scheme or 'unknown'}"
        if nbytes:
            registry.counter(f"{prefix}.bytes").inc(nbytes)
        if requests:
            registry.counter(f"{prefix}.requests").inc(requests)
        if cache_hits:
            registry.counter(f"{prefix}.cache_hits").inc(cache_hits)

    def account_skipped(self, nbytes: int, chunks: int = 1) -> None:
        """Roll bytes a scan *proved it need not read* (projection or
        zone-map pruning) into ``io.read.<scheme>.skipped_bytes`` /
        ``.skipped_chunks`` — the denominators behind the planner's
        bytes-scanned reduction claims."""
        registry = metrics_of(self.env)
        if registry is None:
            return
        prefix = f"io.read.{self.scheme or 'unknown'}"
        if nbytes:
            registry.counter(f"{prefix}.skipped_bytes").inc(nbytes)
        if chunks:
            registry.counter(f"{prefix}.skipped_chunks").inc(chunks)

    # -- piece fetch with cache join-in-flight ----------------------------
    def fetch_piece(self, path: str, pos: int, nbytes: int,
                    fetch: Callable, prefetching: bool = False):
        """Fetch one request-sized piece, through the cache when present.

        DES (sub)process — drive with ``yield from`` or ``env.process``.
        The cache protocol (hit → bytes; join an in-flight fetch; else
        reserve, fetch, fill) is the join-in-flight semantics the map
        runtime's double-buffered prefetch relies on.
        """
        cache = self.cache
        if cache is not None:
            key = (path, pos, nbytes)
            data = cache.get(key)
            if data is not None:
                self.account(len(data), requests=0, cache_hits=1)
                return data
            waiter = cache.join(key)
            if waiter is not None:
                data = yield waiter
                self.account(len(data), requests=0, cache_hits=1)
                return data
            reservation = cache.reserve(key)
            try:
                yield self.env.timeout(self.request_overhead)
                data = yield self.env.process(fetch(pos, nbytes))
            except BaseException as exc:
                reservation.abort(exc)
                raise
            reservation.fill(data, prefetched=prefetching)
            self.account(len(data))
            return data
        yield self.env.timeout(self.request_overhead)
        data = yield self.env.process(fetch(pos, nbytes))
        self.account(len(data))
        return data

    # -- range / piece drivers --------------------------------------------
    def fetch_range(self, path: str, offset: int, length: int,
                    fetch: Callable,
                    max_inflight: Optional[int] = None):
        """Fetch one byte range, whole or chopped. DES process.

        The reader discipline: a single piece is fetched inline; a
        serial window loops inline (the exact pre-pipelining event
        sequence); otherwise pieces share one bounded in-flight window.
        """
        window = self.max_inflight if max_inflight is None else max_inflight
        pieces = chop_range(offset, length, self.granularity)
        if len(pieces) == 1:
            data = yield from self.fetch_piece(path, *pieces[0], fetch)
            return data
        if window == 1:
            parts = []
            for pos, n in pieces:
                parts.append(
                    (yield from self.fetch_piece(path, pos, n, fetch)))
        else:
            parts = yield from bounded_fanout(
                self.env,
                [lambda pos=pos, n=n: self.fetch_piece(path, pos, n, fetch)
                 for pos, n in pieces],
                window)
        return b"".join(parts)

    def fetch_pieces(self, path: str, pieces: Sequence[tuple[int, int]],
                     fetch: Callable, prefetching: bool = False,
                     max_inflight: Optional[int] = None):
        """Fetch pre-chopped pieces under one shared window. DES process.

        The prefetch/hyperslab discipline: strictly serial loops stay
        inline, everything else rides one bounded fan-out across the
        whole piece list. Returns the parts in input order.
        """
        window = self.max_inflight if max_inflight is None else max_inflight
        if window == 1 or len(pieces) == 1:
            parts = []
            for pos, n in pieces:
                parts.append((yield from self.fetch_piece(
                    path, pos, n, fetch, prefetching=prefetching)))
            return parts
        parts = yield from bounded_fanout(
            self.env,
            [lambda pos=pos, n=n: self.fetch_piece(
                path, pos, n, fetch, prefetching=prefetching)
             for pos, n in pieces],
            window)
        return parts

    # -- fan-out disciplines ----------------------------------------------
    def fan_out_runs(self, factories: Sequence[Callable],
                     max_inflight: Optional[int] = None):
        """Drive coalesced-run fetchers, PFS-client style. DES process.

        ``0 < window < n`` bounds the fan-out; anything else issues all
        runs up front and awaits them with a single ``AllOf`` (the
        historical unbounded shape). Results come back in input order.
        """
        window = self.max_inflight if max_inflight is None else max_inflight
        factories = list(factories)
        if 0 < window < len(factories):
            results = yield from bounded_fanout(self.env, factories, window)
            return results
        procs = [self.env.process(factory()) for factory in factories]
        if not procs:
            return []
        done = yield AllOf(self.env, procs)
        return [done[proc] for proc in procs]

    def fan_out_blocks(self, factories: Sequence[Callable],
                       max_inflight: Optional[int] = None):
        """Drive whole-block fetchers, DFS-client style. DES process.

        ``max_inflight != 1`` over multiple blocks keeps that many block
        reads in flight; the default streams serially (one process per
        block), the stock ``DFSInputStream`` behaviour.
        """
        window = self.max_inflight if max_inflight is None else max_inflight
        factories = list(factories)
        if window != 1 and len(factories) > 1:
            results = yield from bounded_fanout(self.env, factories, window)
            return results
        results = []
        for factory in factories:
            results.append((yield self.env.process(factory())))
        return results
