"""The `StorageClient` protocol: one client surface for every backend.

SciDP's premise (PAPER.md §III) is one framework reading both HDFS
blocks and PFS-resident scientific data through a single virtual-block
abstraction. This module is that abstraction's client contract: the
DFS client, the PFS client, and the connector client all implement it,
so any layer — the MapReduce runtime, the spark-like context, the R
wrappers — can hold "a storage client" without knowing which backend is
behind it, and a new backend (memory tier, object store, burst buffer)
is one adapter file.

All data/metadata operations are DES processes: drive them with
``data = yield env.process(client.read(path))``.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

__all__ = [
    "READ_BLOCK_KWARGS",
    "StorageClient",
    "StorageFacade",
]

#: The unified keyword surface of ``read_block`` across backends; the
#: protocol-conformance tests hold every registered client to it.
READ_BLOCK_KWARGS = ("offset", "length", "max_inflight")


@runtime_checkable
class StorageClient(Protocol):
    """Node-bound timed access to one storage backend.

    Implementations: :class:`repro.hdfs.client.DFSClient`,
    :class:`repro.pfs.client.PFSClient`,
    :class:`repro.hdfs.connector.ConnectorClient`.

    Conventions:

    - every method is a DES process (generator);
    - ``stat`` returns a backend handle exposing at least ``.size``;
    - ``read_extents`` takes logical ``(offset, length)`` ranges and
      returns the requested bytes in file order;
    - ``read_block`` accepts the unified ``(block, offset, length,
      max_inflight)`` signature (:data:`READ_BLOCK_KWARGS`);
    - ``max_inflight`` follows the datapath convention: ``None`` =
      the client's default window, ``1`` = serial, ``0`` = unbounded.
    """

    env: object
    node: object
    bytes_read: float

    def stat(self, path: str): ...

    def listdir(self, path: str): ...

    def exists(self, path: str): ...

    def delete(self, path: str): ...

    def read(self, path: str, offset: int = 0,
             length: Optional[int] = None): ...

    def read_extents(self, path, extents,
                     max_inflight: Optional[int] = None): ...

    def write(self, path: str, data: bytes): ...


@runtime_checkable
class StorageFacade(Protocol):
    """A mounted backend: mints node-bound clients and offers the
    zero-time setup/verification surface the experiment harnesses use.

    Implementations: :class:`repro.hdfs.filesystem.HDFS`,
    :class:`repro.pfs.filesystem.PFS`,
    :class:`repro.hdfs.connector.PFSConnector`.
    """

    def client(self, node) -> StorageClient: ...

    def store_file_sync(self, path: str, data: bytes, **kwargs) -> None: ...

    def read_file_sync(self, path: str) -> bytes: ...
