"""Scheme-based storage registry: open any backend by path.

A :class:`StorageRegistry` maps URL schemes (``hdfs://``, ``pfs://``,
``scidp://``) to mounted backend facades, so any layer can resolve a
path to a node-bound :class:`~repro.io.protocol.StorageClient` without
importing concrete client classes — the integration point the paper's
``FileInputFormat.addInputPath`` prefix interception (§IV-E.1) implies.

``scidp://<block_id>`` URLs name synthesized virtual blocks; they
resolve through the registered backend's ``resolve_block`` (the
:class:`~repro.hdfs.connector.PFSConnector` registry) back to a
``(source path, offset)`` pair.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "SchemeAlreadyRegisteredError",
    "StorageRegistry",
    "UnknownSchemeError",
    "join_url",
    "split_url",
]


class UnknownSchemeError(KeyError):
    """No backend is registered for the URL's scheme."""


class SchemeAlreadyRegisteredError(ValueError):
    """A backend is already registered for this scheme."""


def split_url(url: str) -> tuple[str, str]:
    """``"pfs://data/a.nc"`` → ``("pfs", "/data/a.nc")``.

    Scheme-less paths come back as ``("", path)`` untouched. The path
    part always gains a leading slash, matching every backend's
    normalized namespace.
    """
    if "://" not in url:
        return "", url
    scheme, _sep, rest = url.partition("://")
    if not rest.startswith("/"):
        rest = "/" + rest
    return scheme, rest


def join_url(scheme: str, path: str) -> str:
    """Inverse of :func:`split_url` (``("pfs", "/a")`` → ``"pfs:///a"``
    normalized to ``"pfs://a"`` conventions: one scheme, one path)."""
    if not scheme:
        return path
    return f"{scheme}://{path.lstrip('/')}"


class StorageRegistry:
    """Scheme → backend facade map with clear failure modes.

    Backends are anything implementing the
    :class:`~repro.io.protocol.StorageFacade` shape (``client(node)``
    plus the sync setup surface). Double registration is rejected —
    replacing a mounted backend silently is how layering erodes.
    """

    def __init__(self, default_scheme: str = ""):
        self._backends: dict[str, object] = {}
        #: scheme assumed for scheme-less paths ("" = refuse them)
        self.default_scheme = default_scheme

    # -- registration ------------------------------------------------------
    def register(self, scheme: str, backend) -> None:
        if not scheme:
            raise ValueError("scheme must be non-empty")
        if scheme in self._backends:
            raise SchemeAlreadyRegisteredError(
                f"scheme {scheme!r} already registered "
                f"(to {type(self._backends[scheme]).__name__})")
        self._backends[scheme] = backend

    @property
    def schemes(self) -> list[str]:
        return sorted(self._backends)

    def backend(self, scheme: str):
        try:
            return self._backends[scheme]
        except KeyError:
            raise UnknownSchemeError(
                f"no backend registered for scheme {scheme!r}; "
                f"known schemes: {self.schemes or '(none)'}") from None

    # -- resolution --------------------------------------------------------
    def resolve(self, url: str) -> tuple[object, str]:
        """``url`` → ``(backend facade, backend-local path)``."""
        scheme, path = split_url(url)
        if not scheme:
            if not self.default_scheme:
                raise UnknownSchemeError(
                    f"path {url!r} carries no scheme and the registry "
                    f"has no default; known schemes: "
                    f"{self.schemes or '(none)'}")
            scheme = self.default_scheme
        return self.backend(scheme), path

    def open(self, url: str, node) -> tuple[object, str]:
        """``url`` + compute node → ``(StorageClient, local path)``."""
        backend, path = self.resolve(url)
        return backend.client(node), path

    def resolve_virtual(self, url: str) -> tuple[str, int]:
        """``scidp://<block_id>`` → the backing ``(path, offset)``.

        Round-trips the registered backend's ``resolve_block`` — the
        synthesized-block registry a :class:`PFSConnector` keeps.
        """
        scheme, rest = split_url(url)
        backend = self.backend(scheme)
        resolver = getattr(backend, "resolve_block", None)
        if resolver is None:
            raise UnknownSchemeError(
                f"backend for scheme {scheme!r} cannot resolve virtual "
                f"blocks (no resolve_block)")
        block_id = rest.lstrip("/")
        try:
            block_id = int(block_id)
        except ValueError:
            raise UnknownSchemeError(
                f"virtual block URL {url!r} does not name a block id"
            ) from None
        return resolver(block_id)
