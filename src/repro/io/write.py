"""The one write planner: chunking, coalescing, fan-out, write-behind.

The write-side twin of :mod:`repro.io.planner`. Every storage backend
routes its write path through this module: per-device coalescing where
the *payload* is contiguous, chunk-granularity chopping, the bounded
fan-out windows (reusing :mod:`repro.sim.pipeline`), and the per-scheme
``io.write.*`` accounting that feeds the "writes by scheme" report
table next to the read rows.

Timing discipline
-----------------
The perf-smoke golden numbers pin the simulated physics to 1e-9, so the
planner reproduces each historical fan-out shape *exactly* at default
knobs:

- :meth:`WritePlanner.plan_extents` — with no chunk size configured the
  mapped extents pass through untouched (the legacy one-RPC-per-stripe
  write; a run merged in object space is discontiguous in the payload
  unless it is *also* payload-adjacent, which is what
  :func:`coalesce_payload_runs` checks before merging).
- :meth:`WritePlanner.fan_out_stripes` — the PFS client shape: a window
  strictly between 0 and the push count bounds the fan-out, otherwise
  every push is issued up front and awaited with one ``AllOf``.
- :meth:`WritePlanner.fan_out_blocks` — the DFS client shape: windowed
  only for ``max_inflight != 1`` over multiple blocks, otherwise a
  serial process-per-block loop (the stock output-stream behaviour).

Changing any of these disciplines changes event creation order and is a
behaviour change, not a refactor; the twin-world tests in
``tests/io/test_write_equivalence.py`` hold them to the frozen
``_legacy`` writers.

:class:`WriteBehindFlusher` is the task-commit half: map/reduce output
call sites hand their payload off (pure Python, no simulated time) and
overlap the next split's compute with the flush; per-path submissions
are serialized and each performs the idempotent replace-write, so
speculation and task retry keep exactly-once stored state. The job
barrier is :meth:`WriteBehindFlusher.drain`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.io.plan import Extent, WritePlan
from repro.obs.metrics import metrics_of
from repro.sim.engine import AllOf, Event
from repro.sim.pipeline import FanoutWindow, bounded_fanout

__all__ = [
    "WriteBehindFlusher",
    "WritePlanner",
    "chop_extents",
    "coalesce_payload_runs",
]


def coalesce_payload_runs(extents: Sequence[Extent]) -> list[Extent]:
    """Merge extent runs that are contiguous on the device *and* in the
    payload, preserving payload order.

    The write-side constraint the read coalescer does not have: merging
    two object-adjacent stripes whose file offsets interleave with other
    devices would make one push carry discontiguous payload bytes, so a
    run only grows while both offsets advance in lockstep.
    """
    runs: list[Extent] = []
    for ext in extents:
        if runs:
            last = runs[-1]
            if (last.ost_index == ext.ost_index
                    and last.object_offset + last.length == ext.object_offset
                    and last.file_offset + last.length == ext.file_offset):
                runs[-1] = Extent(
                    ost_index=last.ost_index,
                    object_offset=last.object_offset,
                    file_offset=last.file_offset,
                    length=last.length + ext.length)
                continue
        runs.append(ext)
    return runs


def chop_extents(extents: Sequence[Extent],
                 chunk: Optional[int]) -> list[Extent]:
    """Split extents into at most ``chunk``-byte push requests.

    ``chunk=None`` keeps each extent whole (the legacy single push per
    stripe extent); otherwise each extent becomes ceil(len/chunk)
    pieces, in payload order.
    """
    if chunk is None:
        return list(extents)
    pieces: list[Extent] = []
    for ext in extents:
        pos = 0
        while pos < ext.length:
            n = min(chunk, ext.length - pos)
            pieces.append(Extent(
                ost_index=ext.ost_index,
                object_offset=ext.object_offset + pos,
                file_offset=ext.file_offset + pos,
                length=n))
            pos += n
    return pieces


class WritePlanner:
    """Plans and drives one backend's write requests.

    One planner per client instance, tagged with the backend ``scheme``
    (``hdfs``, ``pfs``, ``connector``) so the metrics registry can
    report per-scheme write rows uniformly, mirroring
    :class:`~repro.io.planner.ReadPlanner`.
    """

    def __init__(self, env, scheme: str = "",
                 chunk: Optional[int] = None,
                 max_inflight: int = 0):
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 = unbounded)")
        self.env = env
        self.scheme = scheme
        #: push-request granularity; None = whole-extent pushes
        self.chunk = chunk
        #: in-flight push window; 0 = unbounded
        self.max_inflight = max_inflight

    # -- planning ----------------------------------------------------------
    def plan_extents(self, extents: Sequence[Extent]) -> WritePlan:
        """Build the push plan for mapped extents.

        With no chunk size the extents pass through untouched — the
        legacy one-push-per-stripe-extent shape. With a chunk size,
        payload-contiguous runs are merged first (so a large aligned
        write is not artificially fragmented at stripe boundaries
        smaller than the chunk) and then chopped to the granularity.
        """
        if self.chunk is None:
            return WritePlan(extents=tuple(extents), chunk=None)
        runs = coalesce_payload_runs(extents)
        return WritePlan(extents=tuple(chop_extents(runs, self.chunk)),
                         chunk=self.chunk)

    # -- accounting --------------------------------------------------------
    def account(self, nbytes: int, requests: int = 1) -> None:
        """Roll a completed write into the per-scheme metrics counters.

        Pure-Python counters: no simulated events, so instrumentation
        never shifts timings.
        """
        registry = metrics_of(self.env)
        if registry is None:
            return
        prefix = f"io.write.{self.scheme or 'unknown'}"
        if nbytes:
            registry.counter(f"{prefix}.bytes").inc(nbytes)
        if requests:
            registry.counter(f"{prefix}.requests").inc(requests)

    # -- fan-out disciplines ----------------------------------------------
    def fan_out_stripes(self, factories: Sequence[Callable],
                        max_inflight: Optional[int] = None):
        """Drive stripe-push factories, PFS-client style. DES process.

        ``0 < window < n`` bounds the fan-out; anything else issues all
        pushes up front and awaits them with a single ``AllOf`` (the
        historical unbounded shape). Results come back in input order.
        """
        window = self.max_inflight if max_inflight is None else max_inflight
        factories = list(factories)
        if 0 < window < len(factories):
            results = yield from bounded_fanout(self.env, factories, window)
            return results
        procs = [self.env.process(factory()) for factory in factories]
        if not procs:
            return []
        done = yield AllOf(self.env, procs)
        return [done[proc] for proc in procs]

    def fan_out_blocks(self, factories: Sequence[Callable],
                       max_inflight: Optional[int] = None):
        """Drive whole-block push factories, DFS-client style. DES
        process.

        ``max_inflight != 1`` over multiple blocks keeps that many block
        pipelines in flight; the default streams serially (one process
        per block), the stock output-stream behaviour.
        """
        window = self.max_inflight if max_inflight is None else max_inflight
        factories = list(factories)
        if window != 1 and len(factories) > 1:
            results = yield from bounded_fanout(self.env, factories, window)
            return results
        results = []
        for factory in factories:
            results.append((yield self.env.process(factory())))
        return results


class WriteBehindFlusher:
    """Asynchronous output commit: tasks hand payloads off and keep
    computing while a background window flushes them.

    Exactly-once rules, preserved under speculation and task retry:

    - submissions to the *same path* are serialized in submission order
      (chained events), so a retried attempt's payload deterministically
      lands last;
    - every flush performs the idempotent replace-write
      (exists → delete → write), so a speculative duplicate or a failed
      predecessor's leftover never turns into a "file exists" error or
      a double-counted output;
    - :meth:`drain` is the hard barrier at job commit: nothing finishes
      (no job history, no ``JobResult``) until every flush has landed,
      and a flush failure is re-raised there, failing the job like a
      synchronous write would have.
    """

    def __init__(self, env, max_inflight: int = 0):
        self.env = env
        self._window = FanoutWindow(env, max_inflight)
        #: tail event per path: the previous submission's completion
        self._tails: dict[str, Event] = {}
        #: pure-Python stats for counters/tests
        self.submitted = 0
        self.bytes_submitted = 0

    def submit(self, client, path: str, payload: bytes) -> Event:
        """Queue one flush through ``client`` (the submitting node's
        storage client, so the transfer physics match a synchronous
        write from that node). Pure Python — returns immediately with
        the event that fires when this payload has landed.
        """
        prev = self._tails.get(path)
        done = Event(self.env)
        self._tails[path] = done
        self.submitted += 1
        self.bytes_submitted += len(payload)
        submitted_at = self.env.now
        self._window.submit(
            lambda: self._flush(client, path, payload, prev, done,
                                submitted_at))
        return done

    def _flush(self, client, path, payload, prev, done, submitted_at):
        try:
            if prev is not None:
                yield prev
            if (yield self.env.process(client.exists(path))):
                yield self.env.process(client.delete(path))
            yield self.env.process(client.write(path, payload))
            registry = metrics_of(self.env)
            if registry is not None:
                # submit-to-landed time: how far the write-behind queue
                # let this payload lag behind the task that produced it
                registry.latency("write_behind.flush.latency").observe(
                    self.env.now - submitted_at)
        finally:
            if not done.triggered:
                done.succeed()

    def drain(self):
        """DES generator: the commit barrier. Waits for every submitted
        flush; re-raises the first flush failure."""
        self._window.close()
        yield from self._window.drain()
