"""Hadoop-like MapReduce engine running inside the discrete-event cluster.

Pieces (mirroring the Hadoop classes the paper modifies in §IV-E):

- :class:`~repro.mapreduce.config.JobConf` — job configuration
  (`FileInputFormat.addInputPath` lives behind ``add_input_path``).
- :mod:`repro.mapreduce.input_format` — input formats and splits; SciDP
  plugs in by providing its own input format (``SciDPInputFormat`` in
  :mod:`repro.core`).
- :mod:`repro.mapreduce.task` — `MapTask` / `ReduceTask` processes that
  really execute user functions while charging simulated I/O and compute.
- :mod:`repro.mapreduce.shuffle` — hash partitioner, sort, merge.
- :mod:`repro.mapreduce.runtime` — `JobRunner`: locality-aware slot
  scheduler, shuffle orchestration, counters, per-task timings.

User functions receive a :class:`~repro.mapreduce.task.TaskContext`:
``ctx.emit(k, v)`` produces output, ``ctx.charge(seconds)`` accounts
simulated compute, ``ctx.counters`` increments job counters.
"""

from repro.mapreduce.config import JobConf, MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.input_format import (
    BytesInputFormat,
    InputSplit,
    TextInputFormat,
)
from repro.mapreduce.runtime import JobResult, JobRunner
from repro.mapreduce.task import TaskContext

__all__ = [
    "BytesInputFormat",
    "Counters",
    "InputSplit",
    "JobConf",
    "JobResult",
    "JobRunner",
    "MapReduceError",
    "TaskContext",
    "TextInputFormat",
]
