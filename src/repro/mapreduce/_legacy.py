"""Frozen pre-overlap shuffle path, kept only for equivalence tests.

The mirror of :mod:`repro.sim._legacy` and :mod:`repro.io._legacy`: when
the shuffle subsystem grew the event-driven copy phase, parallel
fetchers, and the streaming merge, the exact pre-refactor shapes of the
reduce-side data path were preserved here so twin-world tests can pin
the production code — run with every shuffle knob at its default — to
the legacy event sequences (identical simulated timings to 1e-9 *and*
identical byte streams / partition assignments).

Do not use these from production code.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional

import numpy as np

__all__ = [
    "LegacyReduceTask",
    "legacy_estimate_size",
    "legacy_hash_partition",
    "legacy_merge_sorted_runs",
]


def legacy_hash_partition(key: Any, n_partitions: int) -> int:
    """The original byte-at-a-time 31-fold partitioner (reference)."""
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if isinstance(key, bytes):
        h = 0
        for b in key:
            h = (h * 31 + b) & 0x7FFFFFFF
    elif isinstance(key, str):
        h = 0
        for ch in key.encode():
            h = (h * 31 + ch) & 0x7FFFFFFF
    elif isinstance(key, (int, np.integer)):
        h = int(key) & 0x7FFFFFFF
    elif isinstance(key, tuple):
        h = 0
        for item in key:
            h = (h * 1000003 + legacy_hash_partition(item, 0x7FFFFFFF)) \
                & 0x7FFFFFFF
    else:
        h = legacy_hash_partition(repr(key), 0x7FFFFFFF)
    return h % n_partitions


def legacy_merge_sorted_runs(
        runs: list[list[tuple[Any, Any]]]) -> list[tuple[Any, Any]]:
    """The original materializing k-way merge (reference)."""
    import heapq

    from repro.mapreduce.shuffle import _key_order
    heap: list[tuple[Any, int, int]] = []
    for run_idx, run in enumerate(runs):
        if run:
            heap.append((_key_order(run[0][0]), run_idx, 0))
    heapq.heapify(heap)
    out: list[tuple[Any, Any]] = []
    while heap:
        _order, run_idx, pos = heapq.heappop(heap)
        out.append(runs[run_idx][pos])
        if pos + 1 < len(runs[run_idx]):
            heapq.heappush(
                heap, (_key_order(runs[run_idx][pos + 1][0]),
                       run_idx, pos + 1))
    return out


def legacy_estimate_size(obj: Any) -> int:
    """The original unguarded recursive size estimate (reference)."""
    if obj is None:
        return 1
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(legacy_estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            legacy_estimate_size(k) + legacy_estimate_size(v)
            for k, v in obj.items())
    return len(repr(obj))


class LegacyReduceTask:
    """The pre-overlap reduce task: serial-barrier shuffle (one AllOf
    over every map output), materializing merge, no retry, no spill
    accounting. Kept verbatim as an executable specification."""

    def __init__(self, env, job, partition: int, node,
                 storage_client, map_outputs: list,
                 network, task_id: str, track: Optional[str] = None,
                 feed=None):
        self.env = env
        self.job = job
        self.partition = partition
        self.node = node
        self.client = storage_client
        self.map_outputs = map_outputs
        self.network = network
        self.task_id = task_id
        self.track = track

    #: shuffle servlet round trip per fetch
    FETCH_RPC_LATENCY = 0.0005

    def _fetch(self, output, ctx):
        """Pull one map's partition slice to this node. DES process."""
        size = output.sizes[self.partition]
        if size == 0:
            return output.partitions[self.partition]
        yield self.env.timeout(self.FETCH_RPC_LATENCY)
        yield self.network.transfer(output.node, self.node, size)
        ctx.counters.increment("shuffle", "bytes", size)
        return output.partitions[self.partition]

    def run(self):
        """DES process returning (records, TaskStats, Counters)."""
        from repro.mapreduce.shuffle import group_sorted
        from repro.mapreduce.task import TaskContext, TaskStats

        env = self.env
        job = self.job
        stats = TaskStats(self.task_id, "reduce", self.node.name, env.now)
        ctx = TaskContext(env, self.node, job, self.task_id, self.client,
                          track=self.track)
        task_span = ctx.tracer.span(
            "reduce", cat="task.reduce", track=ctx.track,
            task_id=self.task_id, node=self.node.name,
            partition=self.partition)
        with task_span:
            yield env.timeout(job.task_startup)

            with ctx.phase("shuffle"):
                runs = []
                fetchers = [
                    env.process(self._fetch(mo, ctx))
                    for mo in self.map_outputs
                ]
                from repro.sim import AllOf
                if fetchers:
                    done = yield AllOf(env, fetchers)
                    runs = [done[proc] for proc in fetchers]

            merged = legacy_merge_sorted_runs([run for run in runs if run])
            for key, values in group_sorted(merged):
                job.reducer(ctx, key, values)
            ctx.counters.increment("reduce", "groups", len(
                list(group_sorted(merged))))

            for phase, seconds in sorted(ctx.take_charges().items()):
                with ctx.phase(phase):
                    yield env.timeout(seconds)

            records = ctx.take_output()
            output_path: Optional[str] = None
            if job.output_path is not None:
                output_path = (
                    f"{job.output_path}/part-r-{self.partition:05d}")
                payload = pickle.dumps(records)
                with ctx.phase("write"):
                    # Idempotent commit: a retried attempt replaces
                    # whatever a failed predecessor left behind.
                    if (yield env.process(self.client.exists(output_path))):
                        yield env.process(self.client.delete(output_path))
                    yield env.process(
                        self.client.write(output_path, payload))
                ctx.counters.increment("io", "bytes_written", len(payload))

        stats.end = env.now
        stats.spans = list(ctx.spans)
        stats.phases = stats.phase_totals()
        return records, output_path, stats, ctx.counters
