"""Job configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["JobConf", "MapReduceError"]


class MapReduceError(Exception):
    """Engine-level errors (bad configuration, missing input...)."""


@dataclass
class JobConf:
    """Everything a job needs.

    ``mapper(ctx, key, value)`` and ``reducer(ctx, key, values)`` are real
    Python callables executed functionally; they account simulated compute
    through ``ctx.charge``. ``input_format`` decides how input paths become
    splits and records — swapping it for ``SciDPInputFormat`` is exactly
    the paper's integration point (§IV-E.1 modifies ``FileInputFormat``).
    """

    name: str
    mapper: Callable
    input_format: Any = None
    reducer: Optional[Callable] = None
    combiner: Optional[Callable] = None
    n_reducers: int = 1
    input_paths: list[str] = field(default_factory=list)
    output_path: Optional[str] = None
    map_slots_per_node: int = 8
    reduce_slots_per_node: int = 2
    #: per-record framework overhead charged by map tasks, seconds
    record_overhead: float = 0.0
    #: per-task JVM-ish startup cost, seconds
    task_startup: float = 0.05
    #: attempts per task before the job fails (Hadoop default: 4)
    max_task_attempts: int = 4
    #: delay before a failed attempt is rescheduled, seconds
    task_retry_backoff: float = 1.0
    #: diskless deployments (e.g. Seagate's "Diskless Hadoop on Lustre")
    #: have no local disks: map spills are written through the storage
    #: client instead of the node's disk
    diskless_spill: bool = False
    #: Hadoop-style speculative execution: when no pending work remains,
    #: a free slot re-launches a straggling map task on another node;
    #: the first finisher wins
    speculative: bool = False
    #: a running task is a straggler once its elapsed time exceeds this
    #: multiple of the mean completed-task duration
    speculative_slowdown: float = 1.5
    #: double-buffered block prefetch: while a map task computes, the
    #: slot's next split is already being fetched into its node's
    #: read-ahead cache (requires an input format with prefetch_split)
    prefetch: bool = False
    #: per-node read-ahead cache capacity, bytes; 0 with prefetch on
    #: falls back to costs.READAHEAD_CACHE_BYTES. Setting it without
    #: prefetch still caches demand reads (overlapping hyperslabs).
    readahead_cache_bytes: int = 0
    #: event-driven copy phase: reducers launch with the job and fetch
    #: each map output as it commits, instead of waiting for the map
    #: barrier (Hadoop's slowstart at 0). Off = legacy serial barrier.
    shuffle_overlap: bool = False
    #: concurrent fetch streams per reducer (Hadoop's
    #: mapreduce.reduce.shuffle.parallelcopies). 0 = legacy unbounded
    #: fan-out: every fetch in flight at once.
    shuffle_parallel_copies: int = 0
    #: attempts per map-output fetch before the reduce attempt fails;
    #: retries back off by task_retry_backoff like task attempts do
    shuffle_fetch_attempts: int = 1
    #: reduce-side merge width (Hadoop's io.sort.factor): more runs
    #: than this are merged to intermediate spills on local disk first.
    #: 0 = single unbounded streaming merge pass.
    shuffle_merge_factor: int = 0
    #: write-behind output commit: task output writes (reduce parts,
    #: mapper ctx.write files, diskless spills) are handed to an async
    #: flusher that overlaps the next split's compute; the job holds a
    #: hard barrier at commit (drain before history/JobResult), and
    #: per-path flushes stay idempotent-exactly-once under speculation
    #: and retry. Off = legacy synchronous writes.
    write_behind: bool = False
    #: concurrent write-behind flushes in flight; 0 = unbounded
    write_behind_max_inflight: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def add_input_path(self, path: str) -> "JobConf":
        """`FileInputFormat.addInputPath` equivalent."""
        self.input_paths.append(path)
        return self

    def validate(self) -> None:
        if not callable(self.mapper):
            raise MapReduceError("mapper must be callable")
        if self.reducer is not None and not callable(self.reducer):
            raise MapReduceError("reducer must be callable")
        if self.n_reducers < 0:
            raise MapReduceError("n_reducers must be >= 0")
        if self.reducer is not None and self.n_reducers == 0:
            raise MapReduceError("reducer given but n_reducers == 0")
        if self.input_format is None:
            raise MapReduceError("input_format is required")
        if not self.input_paths:
            raise MapReduceError("no input paths")
        if self.map_slots_per_node < 1 or self.reduce_slots_per_node < 1:
            raise MapReduceError("slot counts must be >= 1")
        if self.max_task_attempts < 1:
            raise MapReduceError("max_task_attempts must be >= 1")
        if self.readahead_cache_bytes < 0:
            raise MapReduceError("readahead_cache_bytes must be >= 0")
        if self.shuffle_parallel_copies < 0:
            raise MapReduceError("shuffle_parallel_copies must be >= 0")
        if self.shuffle_fetch_attempts < 1:
            raise MapReduceError("shuffle_fetch_attempts must be >= 1")
        if self.shuffle_merge_factor < 0 or self.shuffle_merge_factor == 1:
            raise MapReduceError(
                "shuffle_merge_factor must be 0 (unbounded) or >= 2")
        if self.write_behind_max_inflight < 0:
            raise MapReduceError(
                "write_behind_max_inflight must be >= 0 (0 = unbounded)")
