"""Job counters (Hadoop-style grouped counters)."""

from __future__ import annotations

from collections import defaultdict

__all__ = ["Counters"]


class Counters:
    """Nested ``group -> name -> int`` counters."""

    def __init__(self):
        self._groups: dict[str, dict[str, int]] = defaultdict(
            lambda: defaultdict(int))

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        self._groups[group][name] += amount

    def value(self, group: str, name: str) -> int:
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> dict[str, int]:
        return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        for group, names in other._groups.items():
            for name, amount in names.items():
                self._groups[group][name] += amount

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {g: dict(names) for g, names in self._groups.items()}

    def publish(self, metrics, group: str, prefix: str) -> None:
        """Mirror one counter group into a MetricsRegistry as flat
        ``<prefix>.<name>`` counters (how job counters reach traces)."""
        for name, amount in sorted(self.group(group).items()):
            metrics.counter(f"{prefix}.{name}").inc(amount)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counters({self.as_dict()!r})"
