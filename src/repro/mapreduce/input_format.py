"""Input formats: how paths become splits and splits become records.

An input format implements two DES-process methods:

- ``get_splits(job, storage, client)`` → list of :class:`InputSplit`
- ``read_records(split, client, ctx)`` → list of (key, value) records,
  charging the simulated I/O it performs.

``storage`` is the filesystem facade (:class:`repro.hdfs.HDFS` or
:class:`repro.hdfs.PFSConnector`); ``client`` is a node-bound client from
``storage.client(node)``. SciDP provides its own input format in
:mod:`repro.core.input_format`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.hdfs.block import BlockInfo
from repro.mapreduce.config import MapReduceError

__all__ = ["BytesInputFormat", "InputSplit", "TextInputFormat"]


@dataclass
class InputSplit:
    """One unit of map work."""

    path: str
    index: int               # split index within the file
    length: int
    locations: list[str] = field(default_factory=list)
    block: Optional[BlockInfo] = None
    #: format-private payload (e.g. SciDP's hyperslab mapping)
    meta: dict[str, Any] = field(default_factory=dict)


class _FileInputFormat:
    """Shared split enumeration: one split per storage block."""

    def get_splits(self, job, storage, client):
        """DES process: enumerate splits for all input paths."""
        splits: list[InputSplit] = []
        for path in job.input_paths:
            listing = yield client.env.process(client.listdir(path))
            files = listing if listing else [path]
            for file_path in files:
                blocks = yield client.env.process(
                    client.get_block_locations(file_path))
                for i, block in enumerate(blocks):
                    splits.append(InputSplit(
                        path=file_path,
                        index=i,
                        length=block.length,
                        locations=list(block.locations),
                        block=block,
                    ))
        if not splits:
            raise MapReduceError(f"no input found under {job.input_paths}")
        return splits


class BytesInputFormat(_FileInputFormat):
    """Whole-block records: one (path#index, bytes) record per split."""

    def read_records(self, split: InputSplit, client, ctx):
        """DES process returning [(key, value)]."""
        data = yield client.env.process(client.read_block(split.block))
        ctx.counters.increment("io", "bytes_read", len(data))
        return [(f"{split.path}#{split.index}", data)]


class TextInputFormat(_FileInputFormat):
    """Line records with correct cross-block boundary handling.

    As in Hadoop: a split skips its leading partial line (unless it is the
    first split of the file) and reads past its end into the next block
    until the terminating newline — the "reading extra data across the
    boundaries" behaviour §III-B discusses.
    """

    #: how much of the next block to probe per attempt while completing
    #: the final line
    PROBE = 1024

    def read_records(self, split: InputSplit, client, ctx):
        """DES process returning [(byte_offset, line)]."""
        data = yield client.env.process(client.read_block(split.block))
        ctx.counters.increment("io", "bytes_read", len(data))

        blocks = yield client.env.process(
            client.get_block_locations(split.path))
        start_offset = sum(b.length for b in blocks[:split.index])

        head = 0
        if split.index > 0:
            # Hadoop's start-1 trick: peek at the previous block's final
            # byte. If it is a newline, this split begins a fresh line and
            # nothing is skipped; otherwise the leading partial line
            # belongs to the prior split.
            prev = blocks[split.index - 1]
            last = yield client.env.process(
                client.read_block(prev, prev.length - 1, 1))
            if last != b"\n":
                newline = data.find(b"\n")
                if newline < 0:
                    # Entire split is the middle of one huge line.
                    return []
                head = newline + 1

        tail = data
        if split.index + 1 < len(blocks) and not data.endswith(b"\n"):
            extra = yield client.env.process(self._complete_line(
                split, blocks, client, ctx))
            tail = data + extra

        records = []
        offset = start_offset + head
        for line in tail[head:].splitlines(keepends=True):
            text = line.rstrip(b"\n")
            # A line without a trailing newline at the very end of the
            # *file* still counts; mid-file it was completed above.
            records.append((offset, text))
            offset += len(line)
        ctx.counters.increment("map", "records_read", len(records))
        return records

    def _complete_line(self, split: InputSplit, blocks, client, ctx):
        """Read from following blocks until the first newline. DES process."""
        extra = b""
        for nxt in blocks[split.index + 1:]:
            pos = 0
            while pos < nxt.length:
                chunk = min(self.PROBE, nxt.length - pos)
                piece = yield client.env.process(
                    client.read_block(nxt, pos, chunk))
                ctx.counters.increment("io", "boundary_bytes", len(piece))
                newline = piece.find(b"\n")
                if newline >= 0:
                    return extra + piece[:newline]
                extra += piece
                pos += chunk
        return extra
