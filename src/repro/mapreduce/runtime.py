"""JobRunner: locality-aware slot scheduling and job orchestration."""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro import costs
from repro.io.write import WriteBehindFlusher
from repro.mapreduce.config import JobConf, MapReduceError
from repro.mapreduce.counters import Counters
from repro.mapreduce.input_format import InputSplit
from repro.mapreduce.task import (
    MapOutput,
    MapOutputFeed,
    MapTask,
    ReduceTask,
    TaskStats,
)
from repro.obs.history import FAILED, KILLED, SUCCEEDED, JobHistory, TaskAttempt
from repro.obs.metrics import metrics_of
from repro.obs.trace import tracer_of
from repro.sim import AllOf, CacheStats, ReadAheadCache, Resource

__all__ = ["JobResult", "JobRunner", "PendingSplits"]


class PendingSplits:
    """Host-indexed pending-split queue.

    Claim semantics are identical to the legacy list scan (the claim
    order decides DES event order, so it is pinned by a regression
    test): the *oldest* pending split with a replica on the claiming
    host wins, else the oldest pending split overall, and requeued
    splits go to the back. The difference is cost — per-host deques of
    insertion sequence numbers with lazy invalidation make the
    node-local lookup O(1) amortized instead of an O(pending) scan
    per slot claim.
    """

    def __init__(self, splits: Iterable[InputSplit] = ()):
        self._seq = 0
        #: insertion-ordered {seq: split}; dict order is arrival order
        self._by_seq: dict[int, InputSplit] = {}
        self._by_host: dict[str, deque] = defaultdict(deque)
        for split in splits:
            self.add(split)

    def __len__(self) -> int:
        return len(self._by_seq)

    def add(self, split: InputSplit) -> None:
        """Queue a split (new work or a retry requeue) at the back."""
        seq = self._seq
        self._seq += 1
        self._by_seq[seq] = split
        for host in split.locations:
            self._by_host[host].append(seq)

    def take(self, node_name: str) -> Optional[InputSplit]:
        """Claim the oldest node-local split, else the oldest overall."""
        queue = self._by_host.get(node_name)
        if queue:
            while queue:
                seq = queue.popleft()
                split = self._by_seq.pop(seq, None)
                if split is not None:  # stale seqs were claimed elsewhere
                    return split
        if self._by_seq:
            seq = next(iter(self._by_seq))
            return self._by_seq.pop(seq)
        return None


@dataclass
class JobResult:
    """Everything a finished job reports."""

    name: str
    start: float
    end: float
    counters: Counters
    task_stats: list[TaskStats] = field(default_factory=list)
    #: reducer output records per partition (also persisted when
    #: ``output_path`` is set)
    outputs: dict[int, list[tuple[Any, Any]]] = field(default_factory=dict)
    output_paths: list[str] = field(default_factory=list)
    #: map outputs when the job is map-only (no reducer)
    map_records: list[tuple[Any, Any]] = field(default_factory=list)
    #: per-attempt history (node, split, locality, spans, outcome)
    history: Optional[JobHistory] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def stats_for(self, kind: str) -> list[TaskStats]:
        return [s for s in self.task_stats if s.kind == kind]

    def phase_means(self, kind: str = "map") -> dict[str, float]:
        """Mean per-task seconds in each phase (Fig. 7 decomposition).

        Durations come from the tasks' phase spans; the legacy ``phases``
        dict is the fallback for stats built without span records.
        """
        stats = self.stats_for(kind)
        if not stats:
            return {}
        totals: dict[str, float] = {}
        for s in stats:
            per_task = s.phase_totals() if s.spans else s.phases
            for phase, seconds in per_task.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return {p: t / len(stats) for p, t in totals.items()}


class JobRunner:
    """Runs one job over a set of compute nodes against a storage facade.

    Scheduling: each node runs ``map_slots_per_node`` puller processes.
    A free slot takes the first pending split with a replica on its node
    (node-local), falling back to any split (remote read) — Hadoop's
    delay-free locality heuristic, enough to surface the Fig. 2 locality
    effect. Reducers start when all maps finish and are assigned
    round-robin, bounded by per-node reduce slots.
    """

    def __init__(self, env, nodes, storage, network, job: JobConf,
                 master_node=None):
        if not nodes:
            raise MapReduceError("JobRunner needs at least one node")
        self.env = env
        self.nodes = list(nodes)
        self.storage = storage
        self.network = network
        self.job = job
        self.master = master_node or self.nodes[0]
        self._task_seq = 0
        # Per-job cached latency-histogram handles: one registry lookup
        # at construction instead of a metrics_of + dict lookup per task.
        registry = metrics_of(env)
        if registry is not None:
            self._map_duration_obs = registry.latency(
                "task.map.duration").observe
            self._reduce_duration_obs = registry.latency(
                "task.reduce.duration").observe
        else:
            self._map_duration_obs = None
            self._reduce_duration_obs = None

    def _next_task_id(self, kind: str) -> str:
        self._task_seq += 1
        return f"{self.job.name}-{kind}-{self._task_seq:04d}"

    def _pick_split(self, pending: PendingSplits,
                    node_name: str) -> Optional[InputSplit]:
        return pending.take(node_name)

    def _speculation_candidate(self, node_name, tracker):
        """A straggling running split this node could back up, or None."""
        if not self.job.speculative or len(tracker["durations"]) < 1:
            return None
        mean = sum(tracker["durations"]) / len(tracker["durations"])
        threshold = self.job.speculative_slowdown * mean
        now = self.env.now
        for key, info in tracker["running"].items():
            if key in tracker["done"]:
                continue
            if node_name in info["nodes"]:
                continue  # don't back a task up on its own node
            if now - info["start"] > threshold:
                return key, info["split"]
        return None

    def _build_caches(self) -> tuple:
        """(shared CacheStats, {node name: ReadAheadCache}) for the job,
        or (None, {}) when prefetch and caching are both off."""
        job = self.job
        if not (job.prefetch or job.readahead_cache_bytes > 0):
            return None, {}
        capacity = job.readahead_cache_bytes or costs.READAHEAD_CACHE_BYTES
        stats = CacheStats(f"{job.name}.readahead")
        caches = {
            node.name: ReadAheadCache(
                self.env, capacity,
                name=f"{node.name}.readahead", stats=stats)
            for node in self.nodes
        }
        registry = metrics_of(self.env)
        if registry is not None:
            registry.watch_cache(stats)
        return stats, caches

    def _prefetch_split(self, prefetcher, split, node, cache, counters):
        """Advisory background fetch of a staged split. DES process.

        Failures are swallowed: the task's demand read will surface them
        with the normal retry machinery.
        """
        counters.increment("datapath", "prefetches_launched", 1)
        try:
            yield self.env.process(
                prefetcher(split, self.storage.client(node), cache, node))
        except Exception:
            counters.increment("datapath", "prefetches_failed", 1)

    def _map_worker(self, node, slot, pending, outputs, stats, counters,
                    attempts, tracker, history, cache=None, feed=None,
                    flusher=None):
        """One map slot's pull loop with retry + speculation. DES process.

        A failed attempt requeues the split (another slot — possibly on
        another node — will pick it up) until ``max_task_attempts`` is
        exhausted. With speculative execution on, a slot that finds no
        pending work re-launches a straggler instead of exiting; the
        first attempt to finish wins and the loser's output is dropped.

        With ``job.prefetch`` on, the slot double-buffers: before running
        a task it claims its *next* split and starts fetching that
        split's bytes into the node cache in the background, so the
        fetch overlaps the current task's compute. A slot only stages
        ahead while pending splits outnumber the job's map slots —
        otherwise staging would starve an idle slot of its only work
        and lengthen the map wave instead of shortening it.
        """
        client = self.storage.client(node)
        track = f"{node.name}.s{slot}"
        n_slots = len(self.nodes) * self.job.map_slots_per_node
        prefetcher = (getattr(self.job.input_format, "prefetch_split", None)
                      if self.job.prefetch and cache is not None else None)
        staged: Optional[InputSplit] = None
        while True:
            if staged is not None:
                split, staged = staged, None
                speculation = False
            else:
                split = self._pick_split(pending, node.name)
                speculation = False
            if split is None:
                candidate = self._speculation_candidate(node.name, tracker)
                if candidate is None:
                    return
                _key, split = candidate
                speculation = True
                counters.increment("job", "speculative_attempts", 1)
            key = (split.path, split.index)
            info = tracker["running"].setdefault(
                key, {"start": self.env.now, "nodes": set(),
                      "split": split})
            info["nodes"].add(node.name)

            if (prefetcher is not None and not speculation
                    and len(pending) > n_slots):
                staged = self._pick_split(pending, node.name)
                if staged is not None:
                    self.env.process(self._prefetch_split(
                        prefetcher, staged, node, cache, counters))

            # flusher passes as a kwarg only when write-behind is on, so
            # frozen legacy task classes (test twins) stay constructible.
            extra = {"flusher": flusher} if flusher is not None else {}
            task = MapTask(self.env, self.job, split, node, client,
                           self._next_task_id("m"), track=track,
                           cache=cache, **extra)
            attempt = history.record(TaskAttempt(
                attempt_id=task.task_id, kind="map", node=node.name,
                start=self.env.now,
                split=f"{split.path}#{split.index}",
                locality=task.locality, speculative=speculation))
            try:
                output, task_stats, task_counters = yield self.env.process(
                    task.run())
            except Exception as exc:
                attempt.end = self.env.now
                attempt.outcome = FAILED
                attempt.error = repr(exc)
                info["nodes"].discard(node.name)
                if speculation or key in tracker["done"]:
                    continue  # a failed backup never fails the job
                attempts[key] = attempts.get(key, 0) + 1
                counters.increment("job", "failed_map_attempts", 1)
                if attempts[key] >= self.job.max_task_attempts:
                    raise MapReduceError(
                        f"map task for {split.path}#{split.index} failed "
                        f"{attempts[key]} times; last error: {exc!r}"
                    ) from exc
                yield self.env.timeout(self.job.task_retry_backoff)
                pending.add(split)
                continue

            attempt.end = self.env.now
            attempt.spans = list(task_stats.spans)
            attempt.counters = task_counters.as_dict()
            if key in tracker["done"]:
                attempt.outcome = KILLED
                counters.increment("job", "speculative_losses", 1)
                continue  # another attempt won; drop this output
            attempt.outcome = SUCCEEDED
            tracker["done"].add(key)
            tracker["durations"].append(task_stats.duration)
            tracker["running"].pop(key, None)
            outputs.append(output)
            stats.append(task_stats)
            counters.merge(task_counters)
            observe = self._map_duration_obs
            if observe is None:  # registry attached after construction
                registry = metrics_of(self.env)
                if registry is not None:
                    observe = self._map_duration_obs = registry.latency(
                        "task.map.duration").observe
            if observe is not None:
                observe(task_stats.duration)
            if feed is not None:
                feed.commit(output)

    def _reduce_worker(self, partition, node, slots: Resource,
                       map_outputs, results, stats, counters, history,
                       feed=None, flusher=None):
        """One reduce task wrapped in its slot, with retry. DES process.

        A retried attempt re-reads the (append-only) map-output feed
        from the start, so overlap mode survives reduce failures.
        """
        req = slots.request()
        yield req
        try:
            client = self.storage.client(node)
            track = f"{node.name}.r{partition}"
            attempt = 0
            while True:
                attempt += 1
                extra = {"flusher": flusher} if flusher is not None else {}
                task = ReduceTask(
                    self.env, self.job, partition, node, client,
                    map_outputs, self.network, self._next_task_id("r"),
                    track=track, feed=feed, **extra)
                record = history.record(TaskAttempt(
                    attempt_id=task.task_id, kind="reduce", node=node.name,
                    start=self.env.now, partition=partition))
                try:
                    records, output_path, task_stats, task_counters = \
                        yield self.env.process(task.run())
                except Exception as exc:
                    record.end = self.env.now
                    record.outcome = FAILED
                    record.error = repr(exc)
                    counters.increment("job", "failed_reduce_attempts", 1)
                    if attempt >= self.job.max_task_attempts:
                        raise MapReduceError(
                            f"reduce partition {partition} failed "
                            f"{attempt} times; last error: {exc!r}"
                        ) from exc
                    yield self.env.timeout(self.job.task_retry_backoff)
                    continue
                record.end = self.env.now
                record.outcome = SUCCEEDED
                record.spans = list(task_stats.spans)
                record.counters = task_counters.as_dict()
                break
            results[partition] = (records, output_path)
            stats.append(task_stats)
            counters.merge(task_counters)
            observe = self._reduce_duration_obs
            if observe is None:  # registry attached after construction
                registry = metrics_of(self.env)
                if registry is not None:
                    observe = self._reduce_duration_obs = registry.latency(
                        "task.reduce.duration").observe
            if observe is not None:
                observe(task_stats.duration)
        finally:
            slots.release(req)

    def run(self):
        """Execute the job. DES process returning :class:`JobResult`."""
        job = self.job
        job.validate()
        env = self.env
        start = env.now
        counters = Counters()
        stats: list[TaskStats] = []
        #: kept on the runner so post-mortems of failed jobs (which
        #: never produce a JobResult) can still read the attempt log
        history = self.history = JobHistory(job.name, start)
        tracer = tracer_of(env)

        with tracer.span("job", cat="job", track="job", job=job.name):
            master_client = self.storage.client(self.master)
            splits = yield env.process(
                job.input_format.get_splits(
                    job, self.storage, master_client))
            counters.increment("job", "splits", len(splits))

            pending = PendingSplits(splits)
            map_outputs: list[MapOutput] = []
            attempts: dict = {}
            tracker = {"running": {}, "done": set(), "durations": []}
            cache_stats, caches = self._build_caches()
            flusher = (WriteBehindFlusher(
                env, job.write_behind_max_inflight)
                if job.write_behind else None)

            results: dict[int, tuple[list, Optional[str]]] = {}
            feed: Optional[MapOutputFeed] = None
            reduce_barrier = None
            if job.reducer is not None and job.shuffle_overlap:
                # Event-driven copy phase: reducers launch with the job
                # and fetch map outputs as they commit to the feed. The
                # barrier condition is built *now* so a reducer failing
                # while we still wait on the map wave stays watched
                # (an unwatched process failure escapes env.step).
                feed = MapOutputFeed(env, expected=len(splits))
                reducers = self._launch_reducers(
                    map_outputs, results, stats, counters, history, feed,
                    flusher=flusher)
                reduce_barrier = AllOf(env, reducers)

            workers = []
            for node in self.nodes:
                for slot in range(job.map_slots_per_node):
                    workers.append(env.process(self._map_worker(
                        node, slot, pending, map_outputs, stats, counters,
                        attempts, tracker, history,
                        cache=caches.get(node.name), feed=feed,
                        flusher=flusher)))
            yield AllOf(env, workers)
            if cache_stats is not None:
                for name, value in sorted(cache_stats.as_dict().items()):
                    counters.increment("datapath", name, int(value))

            result = JobResult(
                name=job.name, start=start, end=env.now,
                counters=counters, task_stats=stats, history=history)

            if job.reducer is None:
                # Map-only job: expose the mappers' records directly.
                for output in map_outputs:
                    for partition in output.partitions:
                        result.map_records.extend(partition)
                yield from self._commit_writes(flusher, counters)
                result.end = env.now
                history.finish(result.end)
                self._publish_shuffle(counters)
                self._publish_turnaround(result)
                return result

            if reduce_barrier is None:
                reducers = self._launch_reducers(
                    map_outputs, results, stats, counters, history, None,
                    flusher=flusher)
                reduce_barrier = AllOf(env, reducers)
            yield reduce_barrier

            for partition, (records, output_path) in sorted(results.items()):
                result.outputs[partition] = records
                if output_path is not None:
                    result.output_paths.append(output_path)
            yield from self._commit_writes(flusher, counters)
            result.end = env.now
            result.task_stats = stats
            history.finish(result.end)
            self._publish_shuffle(counters)
            self._publish_turnaround(result)
            return result

    def _commit_writes(self, flusher, counters: Counters):
        """The write-behind commit barrier: nothing finishes — no job
        history, no ``JobResult`` — until every deferred flush has
        landed. DES generator; a no-op for synchronous jobs."""
        if flusher is None:
            return
        yield from flusher.drain()
        counters.increment(
            "datapath", "write_behind_flushes", flusher.submitted)
        counters.increment(
            "datapath", "write_behind_bytes", flusher.bytes_submitted)

    def _launch_reducers(self, map_outputs, results, stats, counters,
                         history, feed, flusher=None):
        """Create per-node reduce slots and one reduce worker per
        partition (round-robin over nodes); returns the processes."""
        env = self.env
        job = self.job
        slots = {
            node.name: Resource(env, job.reduce_slots_per_node,
                                f"{node.name}.reduce")
            for node in self.nodes
        }
        registry = metrics_of(env)
        if registry is not None:
            for node in self.nodes:
                registry.watch_slots(slots[node.name])
        reducers = []
        for partition in range(job.n_reducers):
            node = self.nodes[partition % len(self.nodes)]
            reducers.append(env.process(self._reduce_worker(
                partition, node, slots[node.name], map_outputs,
                results, stats, counters, history, feed=feed,
                flusher=flusher)))
        return reducers

    def _publish_turnaround(self, result: "JobResult") -> None:
        """Feed the finished job's turnaround time into the streaming
        ``job.turnaround`` percentile histogram (multi-job environments
        accumulate a p50/p99 job-latency distribution)."""
        registry = metrics_of(self.env)
        if registry is not None:
            registry.latency("job.turnaround").observe(result.duration)

    def _publish_shuffle(self, counters: Counters) -> None:
        """Mirror the job's shuffle counter group into the metrics
        registry (one ``shuffle.<job>.<name>`` counter each) so traces
        and reports can aggregate shuffle activity per job."""
        registry = metrics_of(self.env)
        if registry is not None and counters.group("shuffle"):
            counters.publish(registry, "shuffle", f"shuffle.{self.job.name}")
