"""Partitioning, sorting, merging, and payload size estimation.

The partition fold and the merge order are part of the golden numbers
(they decide which reducer owns a key and in what order equal keys are
reduced), so both are specified by the frozen reference copies in
:mod:`repro.mapreduce._legacy` and held bit-identical by
``tests/mapreduce/test_legacy_equivalence.py``.
"""

from __future__ import annotations

import functools
import heapq
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "estimate_size",
    "group_sorted",
    "group_sorted_stream",
    "hash_partition",
    "merge_sorted_runs",
    "merge_sorted_streams",
    "sort_run",
]

#: ``& _FOLD_MASK`` == ``% 2**31`` for non-negative values — the fold's
#: modulus. Because 2**31 divides 2**64, uint64 wraparound in the
#: vectorized path is congruent to the byte loop's per-step masking.
_FOLD_MASK = 0x7FFFFFFF
#: below this key length the plain byte loop beats numpy call overhead
_VECTOR_MIN_BYTES = 32

#: growing cache of [31**0, 31**1, ...] mod 2**64 (natural uint64 wrap)
_POW31 = np.ones(1, dtype=np.uint64)


def _powers31(n: int) -> np.ndarray:
    """First ``n`` powers of 31 as uint64 (cached, grown geometrically)."""
    global _POW31
    if len(_POW31) < n:
        m = len(_POW31)
        grown = np.empty(max(n, 2 * m), dtype=np.uint64)
        grown[:m] = _POW31
        thirty_one = np.uint64(31)
        with np.errstate(over="ignore"):  # uint64 wrap is the point
            for i in range(m, len(grown)):
                grown[i] = grown[i - 1] * thirty_one
        _POW31 = grown
    return _POW31[:n]


def _fold31(data: bytes) -> int:
    """``h = (h * 31 + b) & 0x7FFFFFFF`` over ``data``, vectorized.

    The loop computes ``sum(b_i * 31**(n-1-i)) mod 2**31``; the numpy
    path evaluates the same polynomial in uint64 (wraparound mod 2**64
    is congruent mod 2**31) and masks once — bit-identical to the
    reference fold without per-byte Python iteration.
    """
    n = len(data)
    if n < _VECTOR_MIN_BYTES:
        h = 0
        for b in data:
            h = (h * 31 + b) & _FOLD_MASK
        return h
    arr = np.frombuffer(data, dtype=np.uint8)
    total = np.multiply(
        arr, _powers31(n)[::-1], dtype=np.uint64).sum(dtype=np.uint64)
    return int(total) & _FOLD_MASK


@functools.lru_cache(maxsize=8192)
def _str_fold(key: str) -> int:
    """Memoized encode + fold for str keys (hot in wordcount-shaped
    jobs, where the same few thousand words repeat per split)."""
    return _fold31(key.encode())


def hash_partition(key: Any, n_partitions: int) -> int:
    """Deterministic partitioner (Python's hash is salted for str — use a
    stable fold instead so runs are reproducible)."""
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if isinstance(key, bytes):
        h = _fold31(key)
    elif isinstance(key, str):
        h = _str_fold(key)
    elif isinstance(key, (int, np.integer)):
        h = int(key) & 0x7FFFFFFF
    elif isinstance(key, tuple):
        h = 0
        for item in key:
            h = (h * 1000003 + hash_partition(item, 0x7FFFFFFF)) \
                & 0x7FFFFFFF
    else:
        h = hash_partition(repr(key), 0x7FFFFFFF)
    return h % n_partitions


def _key_order(key: Any):
    """Total order over mixed key types: by type name, then value."""
    return (type(key).__name__, key)


def sort_run(records: Iterable[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
    """Stable sort of (key, value) records by key."""
    return sorted(records, key=lambda kv: _key_order(kv[0]))


def merge_sorted_streams(
        runs: Sequence[Iterable[tuple[Any, Any]]]
) -> Iterator[tuple[Any, Any]]:
    """Streaming k-way merge of key-sorted runs (reduce-side merge).

    ``heapq.merge`` is stable across runs (equal keys come out in run
    order, then record order), which is exactly the order the legacy
    materializing merge produced — so the streamed sequence is
    record-for-record identical while holding one record per run in
    memory instead of every record at once.
    """
    return heapq.merge(*runs, key=lambda kv: _key_order(kv[0]))


def merge_sorted_runs(
        runs: list[list[tuple[Any, Any]]]) -> list[tuple[Any, Any]]:
    """Materialized k-way merge (compat shim over the streaming merge)."""
    return list(merge_sorted_streams(runs))


def group_sorted(
        records: list[tuple[Any, Any]]
) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted record list into (key, [values])."""
    i = 0
    n = len(records)
    while i < n:
        key = records[i][0]
        values = [records[i][1]]
        i += 1
        while i < n and records[i][0] == key:
            values.append(records[i][1])
            i += 1
        yield key, values


def group_sorted_stream(
        records: Iterable[tuple[Any, Any]]
) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted record *iterable* into (key, [values]).

    The streaming counterpart of :func:`group_sorted`: consumes a lazy
    merge without materializing the merged record list first.
    """
    it = iter(records)
    try:
        key, value = next(it)
    except StopIteration:
        return
    values = [value]
    for k, v in it:
        if k == key:
            values.append(v)
        else:
            yield key, values
            key, values = k, [v]
    yield key, values


#: bytes charged for a container reached through a reference cycle
_CYCLE_COST = 8


def estimate_size(obj: Any) -> int:
    """Serialized-size estimate for shuffle/spill accounting (bytes).

    Container recursion is cycle-guarded: a container reached again on
    its *own* recursion path charges a fixed :data:`_CYCLE_COST` instead
    of recursing forever. Shared (acyclic) substructure is still counted
    at every appearance, matching the reference estimate.
    """
    return _estimate_size(obj, None)


def _estimate_size(obj: Any, path) -> int:
    if obj is None:
        return 1
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    is_seq = isinstance(obj, (list, tuple, set, frozenset))
    if is_seq or isinstance(obj, dict):
        oid = id(obj)
        if path is None:
            path = {oid}
        elif oid in path:
            return _CYCLE_COST
        else:
            path.add(oid)
        try:
            if is_seq:
                return 8 + sum(_estimate_size(item, path) for item in obj)
            return 8 + sum(
                _estimate_size(k, path) + _estimate_size(v, path)
                for k, v in obj.items())
        finally:
            path.discard(oid)
    # Fallback: repr length is a tolerable proxy for odd objects.
    return len(repr(obj))
