"""Partitioning, sorting, merging, and payload size estimation."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

__all__ = [
    "estimate_size",
    "group_sorted",
    "hash_partition",
    "merge_sorted_runs",
    "sort_run",
]


def hash_partition(key: Any, n_partitions: int) -> int:
    """Deterministic partitioner (Python's hash is salted for str — use a
    stable fold instead so runs are reproducible)."""
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if isinstance(key, bytes):
        h = 0
        for b in key:
            h = (h * 31 + b) & 0x7FFFFFFF
    elif isinstance(key, str):
        h = 0
        for ch in key.encode():
            h = (h * 31 + ch) & 0x7FFFFFFF
    elif isinstance(key, (int, np.integer)):
        h = int(key) & 0x7FFFFFFF
    elif isinstance(key, tuple):
        h = 0
        for item in key:
            h = (h * 1000003 + hash_partition(item, 0x7FFFFFFF)) \
                & 0x7FFFFFFF
    else:
        h = hash_partition(repr(key), 0x7FFFFFFF)
    return h % n_partitions


def _key_order(key: Any):
    """Total order over mixed key types: by type name, then value."""
    return (type(key).__name__, key)


def sort_run(records: Iterable[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
    """Stable sort of (key, value) records by key."""
    return sorted(records, key=lambda kv: _key_order(kv[0]))


def merge_sorted_runs(
        runs: list[list[tuple[Any, Any]]]) -> list[tuple[Any, Any]]:
    """K-way merge of key-sorted runs (reduce-side merge)."""
    import heapq
    heap: list[tuple[Any, int, int]] = []
    for run_idx, run in enumerate(runs):
        if run:
            heap.append((_key_order(run[0][0]), run_idx, 0))
    heapq.heapify(heap)
    out: list[tuple[Any, Any]] = []
    while heap:
        _order, run_idx, pos = heapq.heappop(heap)
        out.append(runs[run_idx][pos])
        if pos + 1 < len(runs[run_idx]):
            heapq.heappush(
                heap, (_key_order(runs[run_idx][pos + 1][0]),
                       run_idx, pos + 1))
    return out


def group_sorted(
        records: list[tuple[Any, Any]]
) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted record list into (key, [values])."""
    i = 0
    n = len(records)
    while i < n:
        key = records[i][0]
        values = [records[i][1]]
        i += 1
        while i < n and records[i][0] == key:
            values.append(records[i][1])
            i += 1
        yield key, values


def estimate_size(obj: Any) -> int:
    """Serialized-size estimate for shuffle/spill accounting (bytes)."""
    if obj is None:
        return 1
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items())
    # Fallback: repr length is a tolerable proxy for odd objects.
    return len(repr(obj))
