"""Map and reduce task processes.

Tasks are hybrids: user functions run for real (bytes in, bytes out), and
the task charges simulated seconds for startup, I/O (through storage
clients and devices) and compute (through ``ctx.charge``). Per-task phase
timers feed the Fig. 7 decomposition.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mapreduce.config import JobConf
from repro.mapreduce.counters import Counters
from repro.mapreduce.input_format import InputSplit
from repro.mapreduce.shuffle import (
    estimate_size,
    group_sorted,
    group_sorted_stream,
    hash_partition,
    merge_sorted_streams,
    sort_run,
)
from repro.obs.metrics import metrics_of
from repro.obs.trace import tracer_of
from repro.sim import Event, FanoutWindow
from repro.sim.stats import IntervalTimer

__all__ = ["MapOutput", "MapOutputFeed", "MapTask", "ReduceTask",
           "TaskContext", "TaskStats"]


@dataclass
class TaskStats:
    """Timing record for one task attempt."""

    task_id: str
    kind: str                 # "map" | "reduce"
    node: str
    start: float
    end: float = 0.0
    phases: dict[str, float] = field(default_factory=dict)
    #: (phase name, start, end) — the authoritative timing record;
    #: ``phases`` keeps the per-phase totals derived from it.
    spans: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def phase_totals(self) -> dict[str, float]:
        """Seconds per phase summed from spans."""
        totals: dict[str, float] = {}
        for name, start, end in self.spans:
            totals[name] = totals.get(name, 0.0) + (end - start)
        return totals


class _Phase:
    """Context manager for one timed task phase.

    Records a (name, start, end) span on the context, keeps the
    backwards-compatible ``ctx.timer`` totals in sync, and mirrors the
    phase as a tracer child span when tracing is enabled.
    """

    __slots__ = ("_ctx", "_name", "_start", "_handle")

    def __init__(self, ctx: "TaskContext", name: str):
        self._ctx = ctx
        self._name = name

    def __enter__(self) -> "_Phase":
        ctx = self._ctx
        self._start = ctx.env.now
        self._handle = ctx.tracer.span(
            self._name, cat="task.phase", track=ctx.track)
        self._handle.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        ctx = self._ctx
        end = ctx.env.now
        ctx.spans.append((self._name, self._start, end))
        ctx.timer.add(self._name, end - self._start)
        self._handle.__exit__(*exc)


class TaskContext:
    """What user code sees inside a task."""

    def __init__(self, env, node, job: JobConf, task_id: str,
                 storage_client=None, track: Optional[str] = None,
                 cache=None):
        self.env = env
        self.node = node
        self.job = job
        self.task_id = task_id
        self.client = storage_client
        #: node read-ahead cache (set when the job enables prefetch or
        #: caching); input formats pick it up for their readers
        self.cache = cache
        self.counters = Counters()
        #: shim kept for callers that still read per-phase totals here;
        #: :meth:`phase` is the primary timing API and feeds it.
        self.timer = IntervalTimer(task_id)
        #: (phase name, start, end) spans recorded by :meth:`phase`
        self.spans: list[tuple[str, float, float]] = []
        #: trace swimlane this task's spans land on
        self.track = track or node.name
        self.tracer = tracer_of(env)
        self._output: list[tuple[Any, Any]] = []
        self._charges: dict[str, float] = {}
        self._io_actions: list[tuple[str, str, Any]] = []

    def phase(self, name: str) -> _Phase:
        """Time a task phase: ``with ctx.phase("read"): yield ...``."""
        return _Phase(self, name)

    def emit(self, key: Any, value: Any) -> None:
        """Produce one output record."""
        self._output.append((key, value))

    def defer_io(self, op: str, path: str, payload: Any = None) -> None:
        """Queue a timed storage operation ("write" with bytes payload, or
        "read" with a byte count) that the task drains through its
        storage client after the map loop — how user-level I/O (e.g.
        TestDFSIO, rhdfs puts) gets charged from inside map functions."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown io op {op!r}")
        self._io_actions.append((op, path, payload))

    def take_io_actions(self) -> list[tuple[str, str, Any]]:
        actions = self._io_actions
        self._io_actions = []
        return actions

    def charge(self, seconds: float, phase: str = "compute") -> None:
        """Account ``seconds`` of simulated compute under ``phase``."""
        if seconds < 0:
            raise ValueError("charge must be >= 0")
        self._charges[phase] = self._charges.get(phase, 0.0) + seconds

    def take_output(self) -> list[tuple[Any, Any]]:
        out = self._output
        self._output = []
        return out

    def take_charges(self) -> dict[str, float]:
        charges = self._charges
        self._charges = {}
        return charges


@dataclass
class MapOutput:
    """One map task's partitioned, sorted output held on its node."""

    task_id: str
    node: Any                       # cluster Node holding the spill
    partitions: list[list[tuple[Any, Any]]]
    sizes: list[int]                # estimated bytes per partition


class MapOutputFeed:
    """Event-driven map-output board (the JobTracker's completed-map
    list): winning map attempts :meth:`commit` their outputs as they
    finish, and overlapped reducers consume :attr:`outputs` as it
    grows instead of waiting for the map barrier.

    Only attempt *winners* commit, so speculation never double-feeds a
    reducer; ``expected`` is the split count, letting consumers know
    when the copy phase can close.
    """

    def __init__(self, env, expected: int):
        self.env = env
        self.expected = expected
        self.outputs: list[MapOutput] = []
        self._arrival = Event(env)

    @property
    def complete(self) -> bool:
        return len(self.outputs) >= self.expected

    def commit(self, output: MapOutput) -> None:
        """Publish one finished map's output and wake the waiters."""
        self.outputs.append(output)
        arrival, self._arrival = self._arrival, Event(self.env)
        arrival.succeed(output)

    def wait(self) -> Event:
        """Event triggered at the next commit (rotates per commit)."""
        return self._arrival


class MapTask:
    """Executes one split: read → map → partition/sort(/combine) → spill."""

    def __init__(self, env, job: JobConf, split: InputSplit, node,
                 storage_client, task_id: str, track: Optional[str] = None,
                 cache=None, flusher=None):
        self.env = env
        self.job = job
        self.split = split
        self.node = node
        self.client = storage_client
        self.task_id = task_id
        self.track = track
        self.cache = cache
        #: job-level WriteBehindFlusher when write_behind is on
        self.flusher = flusher

    @property
    def locality(self) -> str:
        """Where this attempt's split lives relative to its node."""
        if not self.split.locations:
            return "any"          # dummy blocks carry no locations
        if self.node.name in self.split.locations:
            return "node_local"
        return "remote"

    def run(self):
        """DES process returning (MapOutput, TaskStats, Counters)."""
        env = self.env
        job = self.job
        stats = TaskStats(self.task_id, "map", self.node.name, env.now)
        ctx = TaskContext(env, self.node, job, self.task_id, self.client,
                          track=self.track, cache=self.cache)
        task_span = ctx.tracer.span(
            "map", cat="task.map", track=ctx.track, task_id=self.task_id,
            node=self.node.name,
            split=f"{self.split.path}#{self.split.index}",
            locality=self.locality)
        with task_span:
            yield env.timeout(job.task_startup)

            with ctx.phase("read"):
                records = yield env.process(
                    job.input_format.read_records(
                        self.split, self.client, ctx))

            for key, value in records:
                job.mapper(ctx, key, value)
            ctx.counters.increment("map", "records_mapped", len(records))

            for op, path, payload in ctx.take_io_actions():
                with ctx.phase("user_io"):
                    if op == "write":
                        if self.flusher is not None:
                            # Write-behind: hand off (pure Python) and
                            # overlap the flush with this task's compute;
                            # the job drains before committing.
                            self.flusher.submit(self.client, path, payload)
                            ctx.counters.increment(
                                "io", "write_behind_writes")
                        else:
                            yield env.process(
                                self.client.write(path, payload))
                        ctx.counters.increment(
                            "io", "bytes_written", len(payload))
                    else:
                        data = yield env.process(self.client.read(path))
                        wanted = payload if payload is not None else len(data)
                        if len(data) < wanted:
                            raise ValueError(
                                f"deferred read of {path!r}: "
                                f"{len(data)} < {wanted}")
                        ctx.counters.increment("io", "bytes_read", len(data))

            charges = ctx.take_charges()
            overhead = len(records) * job.record_overhead
            if overhead:
                charges["framework"] = (
                    charges.get("framework", 0.0) + overhead)
            for phase, seconds in sorted(charges.items()):
                with ctx.phase(phase):
                    yield env.timeout(seconds)

            n_parts = max(1, job.n_reducers)
            partitions: list[list[tuple[Any, Any]]] = [
                [] for _ in range(n_parts)]
            for key, value in ctx.take_output():
                partitions[hash_partition(key, n_parts)].append((key, value))
            for p in range(n_parts):
                partitions[p] = sort_run(partitions[p])
                if job.combiner is not None:
                    partitions[p] = self._combine(ctx, partitions[p])
            sizes = [
                sum(estimate_size(k) + estimate_size(v) for k, v in part)
                for part in partitions
            ]

            spill = sum(sizes)
            if spill and job.reducer is not None:
                with ctx.phase("spill"):
                    if job.diskless_spill:
                        # No local disks: the spill crosses to the storage
                        # system under test (e.g. the Lustre connector).
                        if self.flusher is not None:
                            self.flusher.submit(
                                self.client, f"/_spill/{self.task_id}",
                                bytes(spill))
                            ctx.counters.increment(
                                "io", "write_behind_writes")
                        else:
                            yield env.process(self.client.write(
                                f"/_spill/{self.task_id}", bytes(spill)))
                    else:
                        yield self.node.disk.write(spill)

        stats.end = env.now
        stats.spans = list(ctx.spans)
        stats.phases = stats.phase_totals()
        return (MapOutput(self.task_id, self.node, partitions, sizes),
                stats, ctx.counters)

    def _combine(self, ctx: TaskContext,
                 run: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        combined = TaskContext(
            self.env, self.node, self.job, self.task_id, self.client)
        for key, values in group_sorted(run):
            self.job.combiner(combined, key, values)
        ctx.counters.merge(combined.counters)
        # Combiner compute is charged with the map's other charges.
        for phase, seconds in combined.take_charges().items():
            ctx.charge(seconds, phase)
        out = sort_run(combined.take_output())
        ctx.counters.increment("shuffle", "combine_input_records", len(run))
        ctx.counters.increment("shuffle", "combine_output_records", len(out))
        return out


class ReduceTask:
    """Fetch one partition from every map, merge, reduce, write output.

    Two copy-phase strategies share the rest of the task:

    * **barrier** (all shuffle knobs at defaults, no feed): the
      pre-overlap shape — one fetcher per map output, all in flight at
      once, one ``AllOf`` barrier. Pinned event-for-event against
      :class:`repro.mapreduce._legacy.LegacyReduceTask`.
    * **overlapped** (a :class:`MapOutputFeed` and/or
      ``shuffle_parallel_copies``/``shuffle_fetch_attempts`` set): fetch
      factories go through a :class:`FanoutWindow` — submitted as map
      outputs commit, at most ``shuffle_parallel_copies`` in flight,
      each with per-source retry/backoff.

    The merge is always the streaming k-way merge;
    ``shuffle_merge_factor`` bounds its width with intermediate spill
    passes charged to the local disk, Hadoop's ``io.sort.factor``.
    """

    def __init__(self, env, job: JobConf, partition: int, node,
                 storage_client, map_outputs: list[MapOutput],
                 network, task_id: str, track: Optional[str] = None,
                 feed: Optional[MapOutputFeed] = None, flusher=None):
        self.env = env
        self.job = job
        self.partition = partition
        self.node = node
        self.client = storage_client
        self.map_outputs = map_outputs
        self.network = network
        self.task_id = task_id
        self.track = track
        self.feed = feed
        #: job-level WriteBehindFlusher when write_behind is on
        self.flusher = flusher

    #: shuffle servlet round trip per fetch
    FETCH_RPC_LATENCY = 0.0005

    def _fetch(self, output: MapOutput, ctx: TaskContext):
        """Pull one map's partition slice to this node. DES process.

        Spills were written moments ago and the paper's nodes have 128 GB
        of RAM, so fetches are served from the mapper's page cache: one
        servlet round trip plus the network transfer (no disk seek).
        """
        size = output.sizes[self.partition]
        if size == 0:
            return output.partitions[self.partition]
        ctx.counters.increment("shuffle", "fetches")
        fetch_started = self.env.now
        yield self.env.timeout(self.FETCH_RPC_LATENCY)
        yield self.network.transfer(
            output.node, self.node, size, tag="shuffle")
        ctx.counters.increment("shuffle", "bytes", size)
        registry = metrics_of(self.env)
        if registry is not None:
            registry.latency("shuffle.fetch.latency").observe(
                self.env.now - fetch_started)
        return output.partitions[self.partition]

    def _fetch_with_retry(self, output: MapOutput, ctx: TaskContext):
        """One map output through ``shuffle_fetch_attempts`` tries, with
        the task-attempt backoff between them. DES generator."""
        attempts = self.job.shuffle_fetch_attempts
        for attempt in range(attempts):
            try:
                result = yield from self._fetch(output, ctx)
                return result
            except Exception:
                if attempt + 1 >= attempts:
                    raise
                ctx.counters.increment("shuffle", "fetch_retries")
                yield self.env.timeout(
                    self.job.task_retry_backoff * (attempt + 1))

    def _copy_phase(self, ctx: TaskContext):
        """Overlapped copy: submit a fetch per committed map output —
        as they arrive when a feed is present — through a bounded
        window. DES generator returning the fetched runs."""
        window = FanoutWindow(self.env, self.job.shuffle_parallel_copies)
        if self.feed is None:
            for output in self.map_outputs:
                window.submit(
                    lambda mo=output: self._fetch_with_retry(mo, ctx))
        else:
            seen = 0
            while True:
                outputs = self.feed.outputs
                while seen < len(outputs):
                    output = outputs[seen]
                    seen += 1
                    window.submit(
                        lambda mo=output: self._fetch_with_retry(mo, ctx))
                if seen >= self.feed.expected:
                    break
                yield self.feed.wait()
        window.close()
        runs = yield from window.drain()
        return runs

    def _merge_spills(self, ctx: TaskContext, runs: list):
        """Bound the final merge width to ``shuffle_merge_factor`` by
        merging excess runs into intermediate on-disk spill runs first
        (Hadoop's multi-pass merge). DES generator returning the
        narrowed run list."""
        job = self.job
        factor = job.shuffle_merge_factor
        runs = list(runs)
        with ctx.phase("merge"):
            while len(runs) > factor:
                batch, runs = runs[:factor], runs[factor:]
                merged = list(merge_sorted_streams(batch))
                spill = sum(
                    estimate_size(k) + estimate_size(v)
                    for k, v in merged)
                if spill:
                    if job.diskless_spill:
                        yield self.env.process(self.client.write(
                            f"/_spill/{self.task_id}", bytes(spill)))
                    else:
                        yield self.node.disk.write(spill)
                ctx.counters.increment("shuffle", "merge_passes")
                ctx.counters.increment("shuffle", "spilled_bytes", spill)
                runs.append(merged)
        return runs

    def run(self):
        """DES process returning (records, TaskStats, Counters)."""
        env = self.env
        job = self.job
        stats = TaskStats(self.task_id, "reduce", self.node.name, env.now)
        ctx = TaskContext(env, self.node, job, self.task_id, self.client,
                          track=self.track)
        task_span = ctx.tracer.span(
            "reduce", cat="task.reduce", track=ctx.track,
            task_id=self.task_id, node=self.node.name,
            partition=self.partition)
        with task_span:
            yield env.timeout(job.task_startup)

            overlapped = (self.feed is not None
                          or job.shuffle_parallel_copies > 0
                          or job.shuffle_fetch_attempts > 1)
            if overlapped:
                with ctx.phase("copy"):
                    runs = yield from self._copy_phase(ctx)
            else:
                with ctx.phase("shuffle"):
                    runs = []
                    fetchers = [
                        env.process(self._fetch(mo, ctx))
                        for mo in self.map_outputs
                    ]
                    from repro.sim import AllOf
                    if fetchers:
                        done = yield AllOf(env, fetchers)
                        runs = [done[proc] for proc in fetchers]

            runs = [run for run in runs if run]
            if job.shuffle_merge_factor >= 2 \
                    and len(runs) > job.shuffle_merge_factor:
                runs = yield from self._merge_spills(ctx, runs)

            n_groups = 0
            for key, values in group_sorted_stream(
                    merge_sorted_streams(runs)):
                n_groups += 1
                job.reducer(ctx, key, values)
            ctx.counters.increment("reduce", "groups", n_groups)

            for phase, seconds in sorted(ctx.take_charges().items()):
                with ctx.phase(phase):
                    yield env.timeout(seconds)

            records = ctx.take_output()
            output_path: Optional[str] = None
            if job.output_path is not None:
                output_path = (
                    f"{job.output_path}/part-r-{self.partition:05d}")
                payload = pickle.dumps(records)
                with ctx.phase("write"):
                    if self.flusher is not None:
                        # Write-behind: the flusher performs the same
                        # idempotent replace-write asynchronously and the
                        # job drains before committing, so exactly-once
                        # holds under speculation and retry.
                        self.flusher.submit(
                            self.client, output_path, payload)
                        ctx.counters.increment("io", "write_behind_writes")
                    else:
                        # Idempotent commit: a retried attempt replaces
                        # whatever a failed predecessor left behind.
                        if (yield env.process(
                                self.client.exists(output_path))):
                            yield env.process(
                                self.client.delete(output_path))
                        yield env.process(
                            self.client.write(output_path, payload))
                ctx.counters.increment("io", "bytes_written", len(payload))

        stats.end = env.now
        stats.spans = list(ctx.spans)
        stats.phases = stats.phase_totals()
        return records, output_path, stats, ctx.counters
