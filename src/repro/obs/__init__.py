"""Unified observability layer: tracing, metrics, and job history.

Three cooperating pieces, all driven by the *simulated* clock so every
artifact is deterministic and diffs cleanly across runs:

- :mod:`repro.obs.trace` — span tracer attached to a DES
  :class:`~repro.sim.Environment`, with Chrome ``trace_event`` JSON and
  JSONL exporters (open the output in ``chrome://tracing`` / Perfetto).
- :mod:`repro.obs.metrics` — counters / gauges / histograms plus
  per-device byte counts and time-weighted utilisation sampled from
  :class:`~repro.sim.SharedBandwidth` pipes (NICs, disks, OSTs).
- :mod:`repro.obs.history` — Hadoop-style job history: one record per
  task attempt with node, split, locality, phase spans, and the
  retry/speculation outcome.

``python -m repro.obs report <trace.json>`` renders an ASCII task
timeline (one swimlane per node) and the summary tables (devices,
per-scheme reads/writes, shuffle, latency percentiles) from an exported
trace — ``--json`` mirrors every table machine-readably; ``validate``
checks a trace for well-formedness; ``critpath`` runs the
:mod:`repro.obs.critpath` bottleneck attribution over one run.

When no tracer is attached (the default), every hot-path hook resolves
to shared no-op singletons: no spans are allocated and no samples are
recorded.
"""

from repro.obs.critpath import (
    CriticalPath,
    critical_path,
    phase_decomposition,
    spans_from_trace,
)
from repro.obs.hist import LogHistogram
from repro.obs.history import JobHistory, TaskAttempt
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    attach_metrics,
    metrics_of,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    TraceSession,
    attach_tracer,
    load_trace,
    tracer_of,
    write_chrome_trace,
    write_jsonl_trace,
)

__all__ = [
    "Counter",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "JobHistory",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "TaskAttempt",
    "TraceSession",
    "Tracer",
    "attach_metrics",
    "attach_tracer",
    "critical_path",
    "load_trace",
    "metrics_of",
    "phase_decomposition",
    "spans_from_trace",
    "tracer_of",
    "write_chrome_trace",
    "write_jsonl_trace",
]
