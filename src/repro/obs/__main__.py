"""CLI: render or validate exported traces.

Usage::

    python -m repro.obs report /tmp/fig5.json [--width N] [--run LABEL]
    python -m repro.obs validate /tmp/fig5.json
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.report import render_report, validate_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces exported by the bench --trace option.")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report", help="ASCII task timeline + device utilisation table")
    rep.add_argument("trace", help="trace file (.json or .jsonl)")
    rep.add_argument("--width", type=int, default=72,
                     help="timeline width in characters (default 72)")
    rep.add_argument("--run", default=None,
                     help="only show runs whose label contains this string")

    val = sub.add_parser(
        "validate", help="check a trace for well-formedness")
    val.add_argument("trace", help="trace file (.json or .jsonl)")

    args = parser.parse_args(argv)
    if args.command == "report":
        try:
            report = render_report(args.trace, width=args.width,
                                   run_filter=args.run)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace}: {exc}",
                  file=sys.stderr)
            return 1
        print(report)
        return 0
    problems = validate_trace(args.trace)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"INVALID: {len(problems)} problem(s) in {args.trace}",
              file=sys.stderr)
        return 1
    print(f"OK: {args.trace} is a valid trace")
    return 0


if __name__ == "__main__":
    sys.exit(main())
