"""CLI: render, validate, or bottleneck-attribute exported traces.

Usage::

    python -m repro.obs report /tmp/fig5.json [--width N] [--run LABEL]
    python -m repro.obs report /tmp/fig5.json --json
    python -m repro.obs validate /tmp/fig5.json
    python -m repro.obs critpath /tmp/fig5.json [--run LABEL] [--json]

Every subcommand exits 1 with a one-line message on a missing or
malformed trace file instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import (
    critpath_data,
    render_critpath,
    render_report,
    report_data,
    validate_trace,
)


def _fail(path: str, exc: Exception) -> int:
    print(f"cannot read trace {path}: {exc}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces exported by the bench --trace option.")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report", help="ASCII task timeline + summary tables")
    rep.add_argument("trace", help="trace file (.json or .jsonl)")
    rep.add_argument("--width", type=int, default=72,
                     help="timeline width in characters (default 72)")
    rep.add_argument("--run", default=None,
                     help="only show runs whose label contains this string")
    rep.add_argument("--json", action="store_true",
                     help="emit every table machine-readably as JSON")

    val = sub.add_parser(
        "validate", help="check a trace for well-formedness")
    val.add_argument("trace", help="trace file (.json or .jsonl)")

    crit = sub.add_parser(
        "critpath",
        help="critical-path bottleneck attribution for one run")
    crit.add_argument("trace", help="trace file (.json or .jsonl)")
    crit.add_argument("--run", default=None,
                      help="run label (required when the trace holds "
                           "several runs)")
    crit.add_argument("--json", action="store_true",
                      help="emit segments and buckets as JSON")

    args = parser.parse_args(argv)

    if args.command == "report":
        try:
            if args.json:
                out = json.dumps(report_data(args.trace,
                                             run_filter=args.run),
                                 indent=2, sort_keys=True)
            else:
                out = render_report(args.trace, width=args.width,
                                    run_filter=args.run)
        except (OSError, ValueError) as exc:
            return _fail(args.trace, exc)
        print(out)
        return 0

    if args.command == "critpath":
        try:
            if args.json:
                out = json.dumps(critpath_data(args.trace, run=args.run),
                                 indent=2, sort_keys=True)
            else:
                out = render_critpath(args.trace, run=args.run)
        except (OSError, ValueError) as exc:
            return _fail(args.trace, exc)
        print(out)
        return 0

    problems = validate_trace(args.trace)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"INVALID: {len(problems)} problem(s) in {args.trace}",
              file=sys.stderr)
        return 1
    print(f"OK: {args.trace} is a valid trace")
    return 0


if __name__ == "__main__":
    sys.exit(main())
