"""Frozen v1 observability path — the per-object twin for equivalence tests.

This module is a verbatim freeze of the pre-columnar recording layer:
:class:`LegacyTracer` keeps one Python object (or tuple) per recorded
event, and :class:`LegacyMonitor` keeps two plain Python lists of
samples, exactly as ``repro.obs.trace`` / ``repro.sim.stats`` did before
the columnar rewrite. The twin-world tests attach a ``LegacyTracer`` and
a columnar :class:`~repro.obs.trace.Tracer` to identical runs and pin
the exported traces byte-identical and every derived report number to
1e-9.

Do not modify this file except to track intentional contract changes in
the v2 path; it exists so regressions in the columnar re-derivations are
caught against the original arithmetic, not against themselves.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.obs.trace import Span

__all__ = ["LegacyMonitor", "LegacyTracer"]


class _LegacySpanHandle:
    """Context manager that closes one span at the simulated exit time."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "LegacyTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def set(self, **args: Any) -> "_LegacySpanHandle":
        if self._span.args is None:
            self._span.args = {}
        self._span.args.update(args)
        return self

    def __enter__(self) -> "_LegacySpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._span.end = self._tracer.env.now
        self._tracer.spans.append(self._span)


class LegacyTracer:
    """v1 tracer: one :class:`Span` object per recorded span.

    API-compatible with the columnar :class:`~repro.obs.trace.Tracer`
    (``span``/``instant``/``counter`` plus the ``spans``/``instants``/
    ``counter_samples`` views), so the exporters accept either.
    """

    enabled = True

    def __init__(self, env):
        self.env = env
        self.spans: list[Span] = []
        #: (time, name, cat, track, args)
        self.instants: list[tuple[float, str, str, str, Optional[dict]]] = []
        #: (time, name, value, cat)
        self.counter_samples: list[tuple[float, str, float, str]] = []

    def span(self, name: str, cat: str = "", track: str = "main",
             **args: Any) -> _LegacySpanHandle:
        return _LegacySpanHandle(
            self, Span(name, cat, track, self.env.now, args or None))

    def instant(self, name: str, cat: str = "", track: str = "main",
                **args: Any) -> None:
        self.instants.append(
            (self.env.now, name, cat, track, args or None))

    def counter(self, name: str, value: float, cat: str = "util") -> None:
        self.counter_samples.append((self.env.now, name, float(value), cat))


class LegacyMonitor:
    """v1 time-stamped sample recorder: two growing Python lists."""

    def __init__(self, env, name: str = ""):
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, value: float) -> None:
        self.times.append(self.env.now)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return min(self.values)

    @property
    def maximum(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return max(self.values)

    @property
    def last(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return self.values[-1]

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1))

    def time_average(self, until: Optional[float] = None) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        end = self.env.now if until is None else until
        total = 0.0
        span = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else end
            dt = max(0.0, t_next - t)
            total += v * dt
            span += dt
        if span == 0:
            return self.values[-1]
        return total / span
