"""Columnar event log — the v2 recording core behind the tracer.

One :class:`ColumnarLog` holds three fixed-width float64 tables built on
:class:`~repro.sim.columns.FloatColumn` chunks:

- ``spans``    — rows of ``(start, end, key_id)``
- ``instants`` — rows of ``(ts, key_id)``
- ``counters`` — rows of ``(ts, value, counter_key_id)``

String data never enters the tables: ``(name, cat, track)`` triples are
interned once into an integer ``key_id`` (counters intern ``(name,
cat)`` separately), so recording an event is a dict probe plus a
three-float list extend — O(1) amortised, no per-event object
allocation. The rare args-carrying events keep their dicts in a side
table indexed by row number.

Everything user-visible (Span objects, Chrome trace events, report
rows) is *re-derived* from the columns at export time; this module is
repro.obs-internal and must not be imported by instrumented packages
(the layering lint enforces that — go through ``attach_tracer`` /
``tracer_of`` / ``attach_metrics`` instead).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.columns import FloatColumn

__all__ = ["ColumnarLog", "Table"]


class Table:
    """Fixed-width row table on one chunked float column.

    The chunk threshold is a whole multiple of ``width`` so frozen
    chunks always hold complete rows.
    """

    __slots__ = ("width", "column")

    def __init__(self, width: int, chunk_rows: int = 65536):
        self.width = width
        self.column = FloatColumn(chunk=chunk_rows * width)

    def __len__(self) -> int:
        return len(self.column) // self.width

    @property
    def nbytes(self) -> int:
        return self.column.nbytes

    def append_row(self, *row: float) -> None:
        self.column.extend(row)

    def ingest(self, *cols: np.ndarray) -> None:
        """Bulk-append rows given as per-column vectors (vectorised:
        one interleave + one frozen chunk, no per-row Python work)."""
        if len(cols) != self.width:
            raise ValueError(
                f"expected {self.width} columns, got {len(cols)}")
        n = len(cols[0])
        if any(len(c) != n for c in cols):
            raise ValueError("column lengths differ")
        if n == 0:
            return
        rows = np.empty((n, self.width), dtype=np.float64)
        for j, col in enumerate(cols):
            rows[:, j] = col
        self.column.extend_array(rows.reshape(-1))

    def rows(self) -> np.ndarray:
        """Materialise as one ``(n, width)`` array."""
        return self.column.array().reshape(-1, self.width)


class ColumnarLog:
    """Interned-key columnar store for spans, instants and counters."""

    __slots__ = ("keys", "key_list", "ckeys", "ckey_list",
                 "spans", "instants", "counters",
                 "span_args", "instant_args")

    def __init__(self):
        #: (name, cat, track) -> key id; ``key_list[id]`` decodes back
        self.keys: dict[tuple[str, str, str], int] = {}
        self.key_list: list[tuple[str, str, str]] = []
        #: (name, cat) -> counter key id
        self.ckeys: dict[tuple[str, str], int] = {}
        self.ckey_list: list[tuple[str, str]] = []
        self.spans = Table(3)      # (start, end, key_id)
        self.instants = Table(2)   # (ts, key_id)
        self.counters = Table(3)   # (ts, value, counter_key_id)
        #: row index -> args dict, for the rare args-carrying events
        self.span_args: dict[int, dict] = {}
        self.instant_args: dict[int, dict] = {}

    # -- key interning ---------------------------------------------------
    def key_id(self, name: str, cat: str, track: str) -> int:
        key = (name, cat, track)
        kid = self.keys.get(key)
        if kid is None:
            kid = len(self.key_list)
            self.keys[key] = kid
            self.key_list.append(key)
        return kid

    def counter_key_id(self, name: str, cat: str) -> int:
        key = (name, cat)
        kid = self.ckeys.get(key)
        if kid is None:
            kid = len(self.ckey_list)
            self.ckeys[key] = kid
            self.ckey_list.append(key)
        return kid

    def tracks(self) -> set[str]:
        """Every track name ever interned (spans and instants)."""
        return {track for _name, _cat, track in self.key_list}

    @property
    def nbytes(self) -> int:
        return self.spans.nbytes + self.instants.nbytes + \
            self.counters.nbytes

    @property
    def n_events(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    # -- recording (scalar paths live in the tracer for speed) -----------
    def add_span(self, start: float, end: float, name: str, cat: str = "",
                 track: str = "main", args: Optional[dict] = None) -> None:
        kid = self.key_id(name, cat, track)
        if args:
            self.span_args[len(self.spans)] = args
        self.spans.append_row(start, end, kid)

    def add_instant(self, ts: float, name: str, cat: str = "",
                    track: str = "main",
                    args: Optional[dict] = None) -> None:
        kid = self.key_id(name, cat, track)
        if args:
            self.instant_args[len(self.instants)] = args
        self.instants.append_row(ts, kid)

    def add_counter(self, ts: float, name: str, value: float,
                    cat: str = "util") -> None:
        self.counters.append_row(ts, value,
                                 self.counter_key_id(name, cat))

    # -- bulk ingest (replay / external event streams) -------------------
    def ingest_spans(self, starts: np.ndarray, ends: np.ndarray,
                     name: str, cat: str = "", track: str = "main") -> None:
        """Append many same-key spans from per-column vectors."""
        kid = self.key_id(name, cat, track)
        kids = np.full(len(starts), float(kid))
        self.spans.ingest(np.asarray(starts, dtype=np.float64),
                          np.asarray(ends, dtype=np.float64), kids)

    def ingest_counters(self, ts: np.ndarray, values: np.ndarray,
                        name: str, cat: str = "util") -> None:
        """Append many samples of one counter series from vectors."""
        kid = self.counter_key_id(name, cat)
        kids = np.full(len(ts), float(kid))
        self.counters.ingest(np.asarray(ts, dtype=np.float64),
                             np.asarray(values, dtype=np.float64), kids)
