"""Critical-path extraction and bottleneck attribution from span DAGs.

A finished run's trace already contains the dependency structure the
runtime executed: task spans (``task.map`` / ``task.reduce``) tiled with
their phase child spans (``task.phase``) on per-slot tracks, all inside
one ``job`` span. The blocking edges are implicit but recoverable —

- **split claim / slot serialisation**: a task's predecessor on the
  critical path is the latest-ending task that finished at or before it
  started (same-slot serialisation and the map wave's split claims both
  reduce to this rule);
- **shuffle fetch ready**: a reduce task idle before its start was
  waiting on map outputs, so the gap to its predecessor is attributed
  to shuffle readiness;
- **write drain barrier**: simulated time between the last task's end
  and the job span's end is the write-behind commit drain.

:func:`critical_path` walks backwards from the job's end through those
edges, producing a gap-free chain of :class:`Segment`\\ s from job start
to job end. Each segment carries a phase label and a device class (see
:data:`PHASE_DEVICE`), so :meth:`CriticalPath.buckets` attributes the
whole makespan to phase × device buckets and
:meth:`CriticalPath.bottleneck_rows` ranks where the time went.

:func:`phase_decomposition` computes the Fig. 7-style mean
seconds-per-task phase breakdown from spans alone; on a run without
speculative attempts it reproduces ``JobResult.phase_means`` to 1e-9
(speculative/killed attempts appear in traces but not in the winners'
stats, so decompose non-speculative runs when comparing).

Inputs are either live :class:`~repro.obs.trace.Span` objects (exact
simulated floats — use these for 1e-9 comparisons) or Chrome trace
events loaded from disk (microsecond timestamps rounded to 1e-9 s at
export; use :func:`spans_from_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "CriticalPath",
    "PHASE_DEVICE",
    "Segment",
    "critical_path",
    "phase_decomposition",
    "spans_from_trace",
]

#: tolerance when matching span boundaries (simulated floats are exact,
#: exported microseconds are rounded to 1e-9 s)
EPS = 1e-9

#: phase/edge label -> device class the time is attributed to.
#: Charge-phase names not listed here default to "cpu" (user compute).
PHASE_DEVICE = {
    "read": "storage",
    "user_io": "storage",
    "write": "storage",
    "spill": "disk",
    "merge": "disk",
    "copy": "network",
    "shuffle": "network",
    "startup": "framework",
    "overhead": "framework",
    "framework": "cpu",
    "wait.split_claim": "scheduler",
    "wait.shuffle_ready": "network",
    "wait.write_drain": "storage",
    "setup.splits": "metadata",
    "job": "framework",
}


def device_of(label: str) -> str:
    return PHASE_DEVICE.get(label, "cpu")


@dataclass(frozen=True)
class SpanRec:
    """Normalised span record (name/cat/track/start/end/args)."""

    name: str
    cat: str
    track: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Segment:
    """One critical-path interval attributed to a phase and device."""

    start: float
    end: float
    label: str
    device: str
    track: str
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The gap-free critical chain of one run, job start to job end."""

    segments: list[Segment]
    start: float
    end: float

    @property
    def total(self) -> float:
        return self.end - self.start

    def buckets(self) -> dict[tuple[str, str], float]:
        """Critical-path seconds per (phase label, device class)."""
        out: dict[tuple[str, str], float] = {}
        for seg in self.segments:
            key = (seg.label, seg.device)
            out[key] = out.get(key, 0.0) + seg.duration
        return out

    def device_buckets(self) -> dict[str, float]:
        """Critical-path seconds per device class."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.device] = out.get(seg.device, 0.0) + seg.duration
        return out

    def bottleneck_rows(self, top: int = 10):
        """(columns, rows, note) for the "top bottlenecks" table: the
        phase × device buckets ranked by critical-path seconds."""
        total = self.total or 1.0
        ranked = sorted(self.buckets().items(),
                        key=lambda item: (-item[1], item[0]))
        rows = [
            (label, device, round(seconds, 9),
             round(100.0 * seconds / total, 2))
            for (label, device), seconds in ranked[:top]
        ]
        note = (f"critical path {self.total:.6f}s from "
                f"{len(self.segments)} segments; wait.* rows are "
                "blocking-edge time (split claim / shuffle ready / "
                "write drain), the rest executed on the path")
        return (["phase", "device", "seconds", "% of path"], rows, note)

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "total": self.total,
            "segments": [
                {"start": s.start, "end": s.end, "label": s.label,
                 "device": s.device, "track": s.track, "detail": s.detail}
                for s in self.segments
            ],
            "buckets": [
                {"phase": label, "device": device, "seconds": seconds}
                for (label, device), seconds in sorted(
                    self.buckets().items(),
                    key=lambda item: (-item[1], item[0]))
            ],
        }


# --------------------------------------------------------------------------
# Input normalisation
# --------------------------------------------------------------------------

def _normalize(spans: Iterable) -> list[SpanRec]:
    """Accept Span-like objects or SpanRecs."""
    out = []
    for s in spans:
        if isinstance(s, SpanRec):
            out.append(s)
        else:
            out.append(SpanRec(s.name, s.cat, s.track, s.start, s.end,
                               s.args or {}))
    return out


def spans_from_trace(doc: dict, run: Optional[str] = None) -> list[SpanRec]:
    """Span records of one run from a loaded trace document.

    ``doc`` is the :func:`~repro.obs.trace.load_trace` shape. ``run``
    selects the process by name; with several runs present and no
    ``run`` given, a ValueError lists the choices.
    """
    events = doc.get("traceEvents", [])
    run_names: dict[int, str] = {}
    track_of: dict[tuple[int, int], str] = {}
    for ev in events:
        if ev.get("ph") != "M":
            continue
        if ev.get("name") == "process_name":
            run_names[ev["pid"]] = ev["args"]["name"]
        elif ev.get("name") == "thread_name":
            track_of[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    if run is not None:
        pids = [pid for pid, name in run_names.items() if name == run]
        if not pids:
            raise ValueError(
                f"run {run!r} not in trace; runs: "
                f"{sorted(run_names.values())}")
    else:
        pids = sorted(run_names) or sorted(
            {ev.get("pid", 0) for ev in events})
        if len(pids) > 1:
            raise ValueError(
                "trace holds several runs; pick one with run=...: "
                f"{sorted(run_names.values())}")
    pid = pids[0]
    spans = []
    for ev in events:
        if ev.get("ph") != "X" or ev.get("pid") != pid:
            continue
        start = ev["ts"] / 1e6
        end = (ev["ts"] + ev.get("dur", 0.0)) / 1e6
        spans.append(SpanRec(
            ev.get("name", ""), ev.get("cat", ""),
            track_of.get((pid, ev.get("tid", 0)), str(ev.get("tid", 0))),
            start, end, ev.get("args", {}) or {}))
    return spans


# --------------------------------------------------------------------------
# Fig. 7-style decomposition from spans alone
# --------------------------------------------------------------------------

def phase_decomposition(spans: Iterable, kind: str = "map"
                        ) -> dict[str, float]:
    """Mean seconds per ``kind`` task in each phase, from spans alone.

    A phase span belongs to the ``kind`` task on its track whose
    interval contains it; totals divide by the task count — the same
    arithmetic as ``JobResult.phase_means``.
    """
    recs = _normalize(spans)
    tasks = [s for s in recs if s.cat == f"task.{kind}"]
    if not tasks:
        return {}
    by_track: dict[str, list[SpanRec]] = {}
    for t in tasks:
        by_track.setdefault(t.track, []).append(t)
    totals: dict[str, float] = {}
    for p in recs:
        if p.cat != "task.phase":
            continue
        for t in by_track.get(p.track, ()):
            if t.start - EPS <= p.start and p.end <= t.end + EPS:
                totals[p.name] = totals.get(p.name, 0.0) + (p.end - p.start)
                break
    return {name: total / len(tasks) for name, total in totals.items()}


def decomposition_rows(spans: Iterable, kind: str = "map"):
    """(columns, rows, note) phase table mirroring the Fig. 7 bench."""
    means = phase_decomposition(spans, kind)
    rows = [
        (name, round(mean, 9), device_of(name))
        for name, mean in sorted(means.items(),
                                 key=lambda item: (-item[1], item[0]))
    ]
    note = (f"mean per-{kind}-task seconds from spans alone "
            "(Fig. 7 decomposition, no bench bookkeeping)")
    return ([f"{kind} phase", "mean s/task", "device"], rows, note)


# --------------------------------------------------------------------------
# Critical-path walk
# --------------------------------------------------------------------------

def _pick_pred(tasks: list[SpanRec], before: float,
               visited: set[int]) -> Optional[SpanRec]:
    """Latest-ending unvisited task finished at or before ``before``;
    ties break toward later start, then track/name (deterministic)."""
    best = None
    best_key = None
    for t in tasks:
        if id(t) in visited or t.end > before + EPS:
            continue
        key = (t.end, t.start, t.track, t.name)
        if best_key is None or key > best_key:
            best, best_key = t, key
    return best


def critical_path(spans: Iterable) -> CriticalPath:
    """Extract the critical chain of one run (see module docstring)."""
    recs = _normalize(spans)
    if not recs:
        return CriticalPath([], 0.0, 0.0)
    jobs = [s for s in recs if s.cat == "job"]
    if jobs:
        job = max(jobs, key=lambda s: (s.duration, s.start))
    else:
        job = SpanRec("job", "job", "job",
                      min(s.start for s in recs),
                      max(s.end for s in recs))
    tasks = [s for s in recs
             if s.cat.startswith("task.") and s.cat != "task.phase"
             and job.start - EPS <= s.start and s.end <= job.end + EPS]
    phases_by_track: dict[str, list[SpanRec]] = {}
    for p in recs:
        if p.cat == "task.phase":
            phases_by_track.setdefault(p.track, []).append(p)
    for track_phases in phases_by_track.values():
        track_phases.sort(key=lambda s: (s.start, s.end))

    segments: list[Segment] = []  # built backwards, reversed at the end

    def add(start: float, end: float, label: str, track: str,
            detail: str = "") -> None:
        if end - start > EPS:
            segments.append(Segment(start, end, label, device_of(label),
                                    track, detail))

    visited: set[int] = set()
    cursor = job.end
    current = _pick_pred(tasks, cursor, visited)
    if current is None:
        # No tasks (e.g. the naive driver): the job itself is the path.
        add(job.start, job.end, "job", job.track,
            str(job.args.get("job", "")))
    else:
        # Tail gap: last task end -> job end is the write drain barrier.
        add(current.end, cursor, "wait.write_drain", job.track)
        while current is not None:
            visited.add(id(current))
            kind = current.cat.split(".", 1)[-1]
            detail = str(current.args.get("task_id", current.name))
            cursor = min(cursor, current.end)
            inner = cursor
            for ph in reversed(phases_by_track.get(current.track, [])):
                if ph.start < current.start - EPS or \
                        ph.end > current.end + EPS:
                    continue  # a different task's phase on this slot
                ph_end = min(ph.end, inner)
                if ph_end <= ph.start + EPS and inner <= ph.start + EPS:
                    continue
                # in-task time between phases is framework overhead
                add(ph_end, inner, "overhead", current.track, detail)
                add(ph.start, ph_end, ph.name, current.track, detail)
                inner = min(inner, ph.start)
                if inner <= current.start + EPS:
                    break
            # task start -> first phase: startup (JVM/attempt spin-up)
            add(current.start, inner, "startup", current.track, detail)
            cursor = current.start
            if cursor <= job.start + EPS:
                break
            nxt = _pick_pred(tasks, cursor, visited)
            if nxt is None:
                # Head gap: job start -> first task is split planning.
                add(job.start, cursor, "setup.splits", job.track)
                break
            # Blocking edge: what was this task waiting on before start?
            label = ("wait.shuffle_ready" if kind == "reduce"
                     else "wait.split_claim")
            add(nxt.end, cursor, label, current.track, detail)
            current = nxt
    segments.reverse()
    return CriticalPath(segments, job.start, job.end)
