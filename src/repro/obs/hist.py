"""Fixed-memory streaming percentile histograms (HDR-style).

:class:`LogHistogram` buckets non-negative samples logarithmically:
each power-of-two octave (``frexp`` exponent) is split into
:data:`SUBBUCKETS` linear sub-buckets, so quantiles carry a bounded
*relative* error of at most ``1 / SUBBUCKETS`` (~1.6% with 64
sub-buckets, half that for the midpoint estimate actually reported)
across the full double range — while memory stays fixed at one int64
count per bucket regardless of how many samples stream through.

Exact ``min``/``max``/``sum`` are tracked on the side, quantile
estimates are clamped into ``[min, max]`` (so a single-sample or
all-equal histogram reports exact values), and two histograms with the
same geometry merge by adding their count vectors — the property that
lets per-task or per-run distributions roll up into cluster totals.

This is the percentile engine behind the registry's ``latency(...)``
metrics (task durations, shuffle fetch latency, write-behind flush
latency, job turnaround) and the report's percentile columns.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["LogHistogram", "SUBBUCKETS"]

#: linear sub-buckets per power-of-two octave
SUBBUCKETS = 64
#: frexp exponent range covered without clamping: values from
#: 2**(E_MIN-1) (~2.7e-20) to 2**E_MAX (~3.7e19); out-of-range values
#: clamp into the first/last bucket but keep exact min/max/sum.
E_MIN = -64
E_MAX = 65
NBUCKETS = (E_MAX - E_MIN) * SUBBUCKETS


class LogHistogram:
    """Streaming histogram over non-negative values with fixed memory."""

    __slots__ = ("name", "counts", "count", "total", "min", "max",
                 "zero_count")

    def __init__(self, name: str = ""):
        self.name = name
        self.counts = np.zeros(NBUCKETS, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        #: zeros can't be log-bucketed; counted separately and reported
        #: as exactly 0.0
        self.zero_count = 0

    def __len__(self) -> int:
        return self.count

    @staticmethod
    def _bucket(value: float) -> int:
        mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
        idx = ((exponent - E_MIN) * SUBBUCKETS
               + int((mantissa - 0.5) * (2 * SUBBUCKETS)))
        if idx < 0:
            return 0
        if idx >= NBUCKETS:
            return NBUCKETS - 1
        return idx

    @staticmethod
    def _bucket_mid(idx: int) -> float:
        """Midpoint of bucket ``idx`` (the reported representative)."""
        exponent = idx // SUBBUCKETS + E_MIN
        sub = idx % SUBBUCKETS
        lo = math.ldexp(0.5 + sub / (2 * SUBBUCKETS), exponent)
        hi = math.ldexp(0.5 + (sub + 1) / (2 * SUBBUCKETS), exponent)
        return (lo + hi) / 2.0

    def observe(self, value: float) -> None:
        """Record one sample; O(1), no allocation."""
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"histogram {self.name!r}: sample must be finite and "
                f">= 0, got {value!r}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zero_count += 1
            return
        self.counts[self._bucket(value)] += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate, ``q`` in [0, 1].

        Monotone in ``q`` and clamped into ``[min, max]``; exact for
        single-sample and all-equal histograms.
        """
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        rank -= self.zero_count
        cumulative = np.cumsum(self.counts)
        idx = int(np.searchsorted(cumulative, rank))
        estimate = self._bucket_mid(idx)
        return min(self.max, max(self.min, estimate))

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram's samples into this one (same geometry
        by construction; counts add, extrema/total fold exactly)."""
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.zero_count += other.zero_count
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max,
        }
