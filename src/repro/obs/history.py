"""Hadoop-style job history: one record per task attempt.

The :class:`~repro.mapreduce.runtime.JobRunner` files a
:class:`TaskAttempt` for every map/reduce attempt it launches —
including failed attempts, retries, and speculative backups that lost
the race — so the history answers the questions a ``.jhist`` file
answers on a real cluster: where did each attempt run, was its split
local, how long did each phase take, and why did the attempt end.

Everything is keyed to the simulated clock and serialises
deterministically (:meth:`JobHistory.as_dict` sorts every collection),
so histories diff cleanly between identical runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["JobHistory", "TaskAttempt"]

#: attempt outcomes
SUCCEEDED = "succeeded"
FAILED = "failed"
KILLED = "killed"      # speculative attempt that lost the race
RUNNING = "running"


@dataclass
class TaskAttempt:
    """One launch of a map or reduce task on a specific node."""

    attempt_id: str
    kind: str                       # "map" | "reduce"
    node: str
    start: float
    end: float = 0.0
    split: Optional[str] = None     # "path#index" (maps)
    partition: Optional[int] = None  # reduce partition
    locality: Optional[str] = None  # "node_local" | "remote" | "any"
    speculative: bool = False
    outcome: str = RUNNING
    error: Optional[str] = None
    #: (phase name, start, end) tuples from the task's context
    spans: list[tuple[str, float, float]] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def phase_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for name, start, end in self.spans:
            totals[name] = totals.get(name, 0.0) + (end - start)
        return totals

    def as_dict(self) -> dict:
        return {
            "attempt_id": self.attempt_id,
            "kind": self.kind,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "split": self.split,
            "partition": self.partition,
            "locality": self.locality,
            "speculative": self.speculative,
            "outcome": self.outcome,
            "error": self.error,
            "spans": [list(span) for span in self.spans],
            "counters": {g: dict(sorted(names.items()))
                         for g, names in sorted(self.counters.items())},
        }


class JobHistory:
    """All task attempts of one job, in launch order."""

    def __init__(self, job_name: str, start: float):
        self.job_name = job_name
        self.start = start
        self.end: Optional[float] = None
        self.attempts: list[TaskAttempt] = []

    def record(self, attempt: TaskAttempt) -> TaskAttempt:
        self.attempts.append(attempt)
        return attempt

    def finish(self, end: float) -> None:
        self.end = end

    def attempts_for(self, kind: str) -> list[TaskAttempt]:
        return [a for a in self.attempts if a.kind == kind]

    def successful(self, kind: Optional[str] = None) -> list[TaskAttempt]:
        return [a for a in self.attempts
                if a.outcome == SUCCEEDED and (kind is None
                                               or a.kind == kind)]

    def summary(self) -> dict:
        """Attempt counts by kind and outcome, plus locality mix."""
        by_kind: dict[str, dict[str, int]] = {}
        locality: dict[str, int] = {}
        for a in self.attempts:
            kind = by_kind.setdefault(a.kind, {})
            kind[a.outcome] = kind.get(a.outcome, 0) + 1
            if a.speculative:
                kind["speculative"] = kind.get("speculative", 0) + 1
            if a.locality is not None:
                locality[a.locality] = locality.get(a.locality, 0) + 1
        return {
            "job": self.job_name,
            "start": self.start,
            "end": self.end,
            "attempts": {k: dict(sorted(v.items()))
                         for k, v in sorted(by_kind.items())},
            "locality": dict(sorted(locality.items())),
        }

    def as_dict(self) -> dict:
        return {
            "job": self.job_name,
            "start": self.start,
            "end": self.end,
            "attempts": [a.as_dict() for a in self.attempts],
        }

    def write(self, path: str) -> None:
        """Persist the history as deterministic JSON (a ``.jhist`` stand-in)."""
        with open(path, "w") as fh:
            fh.write(json.dumps(self.as_dict(), sort_keys=True,
                                separators=(",", ":"), allow_nan=False))
            fh.write("\n")
