"""Metrics registry: counters, gauges, histograms, device utilisation.

Gauges wrap :class:`repro.sim.stats.Monitor`, so their time-weighted
average is the correct mean for utilisation-style series. Device
watching hooks a registry gauge into a
:class:`~repro.sim.resources.SharedBandwidth` pipe's ``observer``
callback: every transfer admission/completion records the new in-flight
count at the simulated time it changed, which makes
``monitor.time_average()`` the exact time-weighted device load with no
polling process in the event queue.

The registry is attached to an environment with :func:`attach_metrics`
and resolved with :func:`metrics_of`; with no registry attached, device
pipes keep their ``observer`` set to ``None`` and pay one attribute test
per membership change.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from repro.obs.hist import LogHistogram
from repro.sim.stats import Monitor

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "attach_metrics",
    "metrics_of",
]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount


class Gauge:
    """A sampled series; keeps the full (time, value) history."""

    __slots__ = ("name", "monitor")

    def __init__(self, name: str, env):
        self.name = name
        self.monitor = Monitor(env, name)

    def set(self, value: float) -> None:
        self.monitor.record(value)

    @property
    def last(self) -> float:
        return self.monitor.last

    def time_average(self, until: Optional[float] = None) -> float:
        return self.monitor.time_average(until)


class Histogram:
    """Value distribution with exact quantiles (series stay small here)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self.total / len(self.values)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, q in [0, 1]."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "max": self.quantile(1.0),
        }


class MetricsRegistry:
    """Named metrics plus the set of watched bandwidth devices."""

    def __init__(self, env):
        self.env = env
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._latencies: dict[str, LogHistogram] = {}
        #: watched devices: name -> (pipe, in-flight gauge)
        self._devices: dict[str, tuple] = {}
        #: watched read-ahead caches: name -> CacheStats
        self._caches: dict[str, Any] = {}
        self._watched_ids: set[int] = set()

    # -- named metrics ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, self.env)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def latency(self, name: str) -> LogHistogram:
        """A streaming :class:`~repro.obs.hist.LogHistogram` for
        high-volume duration series (task durations, fetch latencies):
        fixed memory, p50/p90/p99 with bounded relative error, mergeable
        across registries. Use :meth:`histogram` only for small series
        that need exact quantiles."""
        if name not in self._latencies:
            self._latencies[name] = LogHistogram(name)
        return self._latencies[name]

    # -- device watching -------------------------------------------------
    def watch_pipe(self, pipe, name: Optional[str] = None) -> None:
        """Sample a :class:`SharedBandwidth` pipe's in-flight count.

        Idempotent per pipe; the pipe's ``observer`` slot is pointed at a
        registry gauge, so each membership change records one sample at
        the simulated time it happened.
        """
        if id(pipe) in self._watched_ids:
            return
        self._watched_ids.add(id(pipe))
        label = name or pipe.name or f"pipe{len(self._devices)}"
        gauge = self.gauge(f"device.{label}.in_flight")
        gauge.set(pipe.n_active)
        # Bind the pipe straight to the monitor's columnar fast path —
        # one frame per membership change instead of two.
        pipe.observer = gauge.monitor.record
        self._devices[label] = (pipe, gauge)

    def watch_node(self, node) -> None:
        """Watch one compute/storage node's NIC pipes and disks."""
        self.watch_pipe(node.tx)
        self.watch_pipe(node.rx)
        for disk in node.disks:
            self.watch_pipe(disk.pipe)

    def watch_network(self, network) -> None:
        if network.core is not None:
            self.watch_pipe(network.core)

    def watch_pfs(self, pfs) -> None:
        """Watch every OST disk (per-OST bandwidth/utilisation)."""
        for ost in pfs.osts:
            self.watch_pipe(ost.disk.pipe, name=f"ost{ost.index}")

    def watch_hdfs(self, hdfs) -> None:
        """Watch datanode disks (no-ops for disks already watched via
        their node)."""
        for datanode in hdfs.datanodes:
            self.watch_pipe(datanode.node.disk.pipe,
                            name=f"dn.{datanode.name}")

    def watch_cache(self, stats, name: Optional[str] = None) -> None:
        """Register a read-ahead cache's shared
        :class:`~repro.sim.cache.CacheStats` so its hit/miss/overlap
        counters show up next to the device utilisation rows.
        Idempotent per stats object."""
        if id(stats) in self._watched_ids:
            return
        self._watched_ids.add(id(stats))
        label = stats.name or name or f"cache{len(self._caches)}"
        self._caches[label] = stats

    def watch_slots(self, resource, name: Optional[str] = None) -> None:
        """Sample a :class:`~repro.sim.resources.Resource`'s queue waits.

        Points the resource's ``wait_observer`` hook at a streaming
        latency histogram (``slots.<name>.queue_wait``): every slot
        grant records how long the request waited, which is exactly the
        queue-wait percentile series multi-tenant scheduling needs.
        Idempotent per resource.
        """
        if id(resource) in self._watched_ids:
            return
        self._watched_ids.add(id(resource))
        label = name or resource.name or f"slots{len(self._latencies)}"
        resource.wait_observer = self.latency(
            f"slots.{label}.queue_wait").observe

    # -- export ----------------------------------------------------------
    def device_monitors(self) -> Iterable[tuple[str, Monitor]]:
        """(device name, in-flight Monitor) pairs, name-sorted."""
        for label in sorted(self._devices):
            _pipe, gauge = self._devices[label]
            yield label, gauge.monitor

    def device_rows(self, since: float = 0.0) -> list[dict]:
        """Per-device summary: bytes moved, busy seconds, utilisation,
        and the time-weighted mean number of in-flight transfers."""
        rows = []
        for label in sorted(self._devices):
            pipe, gauge = self._devices[label]
            monitor = gauge.monitor
            rows.append({
                "device": label,
                "capacity_bps": pipe.capacity,
                "bytes_moved": pipe.bytes_moved,
                "busy_seconds": round(pipe.busy_time, 9),
                "utilization": round(pipe.utilization(since), 6),
                "mean_in_flight": round(
                    monitor.time_average() if len(monitor) else 0.0, 6),
            })
        return rows

    def cache_rows(self) -> list[dict]:
        """Per-cache summary rows in the device-row shape: hit/miss/
        overlap counters, bytes served, and the hit rate as the row's
        ``utilization`` (always within [0, 1])."""
        rows = []
        for label in sorted(self._caches):
            stats = self._caches[label]
            rows.append({
                "device": f"cache.{label}",
                "cache_hits": stats.hits,
                "cache_misses": stats.misses,
                "overlap_hits": stats.overlap_hits,
                "prefetch_fills": stats.prefetch_fills,
                "bytes_moved": float(stats.bytes_from_cache),
                "utilization": round(stats.hit_rate(), 6),
            })
        return rows

    def scheme_read_rows(self) -> list[dict]:
        """Per-backend datapath read summary, one row per URL scheme.

        Aggregates the ``io.read.<scheme>.{bytes,requests,cache_hits}``
        counters every :class:`repro.io.planner.ReadPlanner` maintains.
        Layered paths count at each layer they cross (a connector read
        also shows up as ``pfs`` OST traffic) — the rows answer "what did
        each entry point move", not "what did the disks move once".
        """
        per_scheme: dict[str, dict[str, float]] = {}
        for name, counter in self._counters.items():
            parts = name.split(".")
            if len(parts) != 4 or parts[0] != "io" or parts[1] != "read":
                continue
            per_scheme.setdefault(parts[2], {})[parts[3]] = counter.value
        return [
            {
                "scheme": scheme,
                "bytes": per_scheme[scheme].get("bytes", 0.0),
                "requests": per_scheme[scheme].get("requests", 0.0),
                "cache_hits": per_scheme[scheme].get("cache_hits", 0.0),
            }
            for scheme in sorted(per_scheme)
        ]

    def scheme_write_rows(self) -> list[dict]:
        """Per-backend datapath write summary, one row per URL scheme.

        Aggregates the ``io.write.<scheme>.{bytes,requests}`` counters
        every :class:`repro.io.write.WritePlanner` maintains — the
        write-side mirror of :meth:`scheme_read_rows`, with the same
        per-layer counting rule (a connector write also shows up as
        ``pfs`` push traffic).
        """
        per_scheme: dict[str, dict[str, float]] = {}
        for name, counter in self._counters.items():
            parts = name.split(".")
            if len(parts) != 4 or parts[0] != "io" or parts[1] != "write":
                continue
            per_scheme.setdefault(parts[2], {})[parts[3]] = counter.value
        return [
            {
                "scheme": scheme,
                "bytes": per_scheme[scheme].get("bytes", 0.0),
                "requests": per_scheme[scheme].get("requests", 0.0),
            }
            for scheme in sorted(per_scheme)
        ]

    def shuffle_rows(self) -> list[dict]:
        """Per-job shuffle summary, one row per job name.

        Aggregates the flat ``shuffle.<job>.<name>`` counters each
        :class:`repro.mapreduce.runtime.JobRunner` publishes from its
        job's ``shuffle`` counter group when the job finishes (bytes
        fetched, fetches/retries, combiner record folds, merge spill
        passes).
        """
        per_job: dict[str, dict[str, float]] = {}
        for name, counter in self._counters.items():
            parts = name.split(".")
            if len(parts) < 3 or parts[0] != "shuffle":
                continue
            # job names may themselves contain dots
            job, field = ".".join(parts[1:-1]), parts[-1]
            per_job.setdefault(job, {})[field] = counter.value
        return [
            {
                "job": job,
                "bytes": per_job[job].get("bytes", 0.0),
                "fetches": per_job[job].get("fetches", 0.0),
                "fetch_retries": per_job[job].get("fetch_retries", 0.0),
                "combine_input_records": per_job[job].get(
                    "combine_input_records", 0.0),
                "combine_output_records": per_job[job].get(
                    "combine_output_records", 0.0),
                "merge_passes": per_job[job].get("merge_passes", 0.0),
                "spilled_bytes": per_job[job].get("spilled_bytes", 0.0),
            }
            for job in sorted(per_job)
        ]

    def latency_rows(self) -> list[dict]:
        """Percentile summary rows, one per non-empty latency histogram:
        count, mean, p50/p90/p99 and exact max, all in seconds."""
        rows = []
        for name in sorted(self._latencies):
            hist = self._latencies[name]
            if not len(hist):
                continue
            rows.append({
                "hist": name,
                "count": float(hist.count),
                "mean": hist.mean,
                "p50": hist.quantile(0.50),
                "p90": hist.quantile(0.90),
                "p99": hist.quantile(0.99),
                "max": hist.max,
            })
        return rows

    def as_dict(self) -> dict:
        """Snapshot of every named metric plus the device table."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"last": g.monitor.last,
                    "time_average": g.monitor.time_average()}
                for n, g in sorted(self._gauges.items()) if len(g.monitor)
            },
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())
                           if len(h)},
            "latencies": {n: h.summary()
                          for n, h in sorted(self._latencies.items())
                          if len(h)},
            "devices": self.device_rows(),
            "caches": self.cache_rows(),
            "reads": self.scheme_read_rows(),
            "writes": self.scheme_write_rows(),
            "shuffles": self.shuffle_rows(),
        }


def attach_metrics(env, registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
    """Attach (and return) a metrics registry on ``env``; idempotent."""
    existing = getattr(env, "metrics", None)
    if registry is None:
        if isinstance(existing, MetricsRegistry):
            return existing
        registry = MetricsRegistry(env)
    env.metrics = registry
    return registry


def metrics_of(env) -> Optional[MetricsRegistry]:
    """The registry attached to ``env``, or None."""
    registry = getattr(env, "metrics", None)
    return registry if isinstance(registry, MetricsRegistry) else None
