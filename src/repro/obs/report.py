"""Render exported traces as ASCII: task timelines and device tables.

``python -m repro.obs report trace.json`` prints, per simulated run in
the file, a swimlane timeline (one row per track, grouped by node) and
the summary tables carried in the trace's ``deviceMetrics`` section
(device utilisation, per-scheme reads/writes, per-job shuffle, latency
percentiles). ``--json`` emits the same tables machine-readably:
every ASCII table appears under ``tables.<name>`` with its ``columns``,
``rows`` and ``note``. ``validate`` checks a trace for well-formedness
(the CI smoke job runs it against a bench ``--trace`` output), and
``critpath`` renders the critical-path bottleneck attribution computed
by :mod:`repro.obs.critpath`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.critpath import critical_path, decomposition_rows, \
    phase_decomposition, spans_from_trace
from repro.obs.trace import load_trace

__all__ = [
    "critpath_data",
    "render_critpath",
    "render_report",
    "render_timeline",
    "report_data",
    "validate_trace",
]

#: event phases the exporters emit
_KNOWN_PHASES = {"X", "M", "i", "C"}


def _runs(events: list[dict]) -> dict[int, dict]:
    """Group events by pid into {pid: {name, tracks, spans}}."""
    runs: dict[int, dict] = {}
    for ev in events:
        pid = ev.get("pid", 0)
        run = runs.setdefault(
            pid, {"name": f"pid{pid}", "tracks": {}, "spans": []})
        if ev.get("ph") == "M":
            if ev.get("name") == "process_name":
                run["name"] = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                run["tracks"][ev["tid"]] = ev["args"]["name"]
        elif ev.get("ph") == "X":
            run["spans"].append(ev)
    return runs


def _lane_char(ev: dict) -> str:
    """One fill character per span: task spans uppercase, rest lowercase."""
    name = ev.get("name", "?").split(".")[-1] or "?"
    char = name[0]
    if str(ev.get("cat", "")).startswith("task.") \
            and not str(ev.get("cat", "")).startswith("task.phase"):
        return char.upper()
    return char.lower()


def render_timeline(run: dict, width: int = 72) -> str:
    """ASCII swimlanes for one run: a row per track, grouped by node.

    Tasks paint uppercase letters (``M``ap / ``R``educe); their phases
    overwrite with lowercase (``r``ead, ``c``onvert, ``p``lot, ...), so
    a lane reads as the task's internal phase sequence over time.
    """
    spans = run["spans"]
    if not spans:
        return "(no spans)"
    t0 = min(ev["ts"] for ev in spans)
    t1 = max(ev["ts"] + ev.get("dur", 0) for ev in spans)
    if t1 <= t0:
        t1 = t0 + 1.0
    scale = width / (t1 - t0)

    by_track: dict[str, list[dict]] = {}
    for ev in spans:
        track = run["tracks"].get(ev.get("tid"), f"tid{ev.get('tid')}")
        by_track.setdefault(track, []).append(ev)

    legend: dict[str, set] = {}
    label_w = max(len(t) for t in by_track)
    lines = []
    prev_group = None
    for track in sorted(by_track):
        group = track.split(".")[0]
        if prev_group is not None and group != prev_group:
            lines.append("")
        prev_group = group
        lane = ["."] * width
        # uppercase task spans first so phase detail wins the overlap
        ordered = sorted(
            by_track[track],
            key=lambda ev: (not _lane_char(ev).isupper(), ev["ts"]))
        for ev in ordered:
            char = _lane_char(ev)
            legend.setdefault(char, set()).add(
                ev.get("name", "?").split(".")[-1])
            lo = int((ev["ts"] - t0) * scale)
            hi = int((ev["ts"] + ev.get("dur", 0) - t0) * scale)
            for i in range(max(0, lo), min(width, max(hi, lo + 1))):
                lane[i] = char
        lines.append(f"{track.ljust(label_w)} |{''.join(lane)}|")

    axis = (f"{' ' * label_w} |{t0 / 1e6:.3f}s"
            f"{' ' * max(1, width - 24)}{t1 / 1e6:.3f}s|")
    lines.append(axis)
    keys = ", ".join(
        f"{char}={'/'.join(sorted(names))}"
        for char, names in sorted(legend.items()))
    lines.append(f"key: {keys}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Summary tables: each builder returns (title, columns, rows, note), the
# shared shape both the ASCII renderer and the --json mirror consume.
# --------------------------------------------------------------------------

def _partition_rows(rows: list[dict]) -> dict[str, list[dict]]:
    """Split deviceMetrics rows on their marker keys: plain devices,
    per-scheme reads ("scheme"), writes ("write_scheme"), per-job
    shuffles ("shuffle_job") and latency histograms ("hist_name")."""
    return {
        "devices": [d for d in rows
                    if "scheme" not in d and "write_scheme" not in d
                    and "shuffle_job" not in d and "hist_name" not in d],
        "reads": [d for d in rows if "scheme" in d],
        "writes": [d for d in rows if "write_scheme" in d],
        "shuffles": [d for d in rows if "shuffle_job" in d],
        "latencies": [d for d in rows if "hist_name" in d],
    }


def _device_cells(devices: list[dict]):
    columns = ["run", "device", "MB moved", "busy s", "util %",
               "mean in-flight"]
    has_caches = any("cache_hits" in row for row in devices)
    if has_caches:
        columns += ["hits", "misses", "overlap"]
    rows = []
    for row in devices:
        cells = [
            row.get("run", "-"),
            row.get("device", "?"),
            row.get("bytes_moved", 0.0) / 1e6,
            row.get("busy_seconds", 0.0),
            100.0 * row.get("utilization", 0.0),
            row.get("mean_in_flight", 0.0),
        ]
        if has_caches:
            is_cache = "cache_hits" in row
            cells += [
                row.get("cache_hits", "-") if is_cache else "-",
                row.get("cache_misses", "-") if is_cache else "-",
                row.get("overlap_hits", "-") if is_cache else "-",
            ]
        rows.append(cells)
    return ("device utilisation", columns, rows,
            "utilisation = busy time / simulated run time; for cache "
            "rows util % is the hit rate and overlap counts reads that "
            "joined an in-flight prefetch")


def _scheme_read_cells(reads: list[dict]):
    columns = ["run", "scheme", "MB read", "requests", "cache hits"]
    rows = [
        [
            row.get("run", "-"),
            row.get("scheme", "?"),
            row.get("bytes_moved", 0.0) / 1e6,
            row.get("read_requests", 0.0),
            row.get("read_cache_hits", 0.0),
        ]
        for row in reads
    ]
    return ("reads by scheme", columns, rows,
            "one row per storage backend entry point; layered paths "
            "count at each layer they cross (a connector read also "
            "moves pfs bytes)")


def _scheme_write_cells(writes: list[dict]):
    columns = ["run", "scheme", "MB written", "requests"]
    rows = [
        [
            row.get("run", "-"),
            row.get("write_scheme", "?"),
            row.get("bytes_moved", 0.0) / 1e6,
            row.get("write_requests", 0.0),
        ]
        for row in writes
    ]
    return ("writes by scheme", columns, rows,
            "one row per storage backend entry point; layered paths "
            "count at each layer they cross (a connector write also "
            "pushes pfs bytes)")


def _shuffle_cells(shuffles: list[dict]):
    columns = ["run", "job", "MB shuffled", "fetches", "retries",
               "combine in/out", "merge passes", "MB spilled"]
    rows = []
    for row in shuffles:
        c_in = row.get("combine_input_records", 0.0)
        c_out = row.get("combine_output_records", 0.0)
        combine = f"{c_in:.0f}/{c_out:.0f}" if c_in or c_out else "-"
        rows.append([
            row.get("run", "-"),
            row.get("shuffle_job", "?"),
            row.get("bytes_moved", 0.0) / 1e6,
            row.get("shuffle_fetches", 0.0),
            row.get("shuffle_fetch_retries", 0.0),
            combine,
            row.get("merge_passes", 0.0),
            row.get("spilled_bytes", 0.0) / 1e6,
        ])
    return ("shuffle", columns, rows,
            "per-job shuffle counters: bytes pulled by reducers, fetch "
            "attempts/retries, map-side combiner record fold, and "
            "reduce-side merge spill passes")


def _latency_cells(latencies: list[dict]):
    columns = ["run", "series", "count", "mean s", "p50 s", "p90 s",
               "p99 s", "max s"]
    rows = [
        [
            row.get("run", "-"),
            row.get("hist_name", "?"),
            row.get("count", 0.0),
            row.get("mean_seconds", 0.0),
            row.get("p50_seconds", 0.0),
            row.get("p90_seconds", 0.0),
            row.get("p99_seconds", 0.0),
            row.get("max_seconds", 0.0),
        ]
        for row in latencies
    ]
    return ("latency percentiles", columns, rows,
            "streaming log-bucketed histograms (fixed memory, <2% "
            "relative quantile error): task durations, shuffle fetch "
            "and write-behind flush latencies, slot queue waits, job "
            "turnaround")


_TABLE_BUILDERS = (
    ("devices", _device_cells),
    ("reads", _scheme_read_cells),
    ("writes", _scheme_write_cells),
    ("shuffles", _shuffle_cells),
    ("latencies", _latency_cells),
)


def _filtered_metric_rows(doc: dict,
                          run_filter: Optional[str]) -> list[dict]:
    rows = doc["deviceMetrics"]
    if run_filter is not None:
        rows = [d for d in rows if run_filter in str(d.get("run", ""))]
    return rows


def render_report(path: str, width: int = 72,
                  run_filter: Optional[str] = None) -> str:
    """The full report: per-run timelines, the device table, the
    per-scheme read and write tables, the per-job shuffle table, and
    the latency-percentile table."""
    from repro.bench.reporting import format_table

    doc = load_trace(path)
    runs = _runs(doc["traceEvents"])
    sections = []
    for pid in sorted(runs):
        run = runs[pid]
        if run_filter is not None and run_filter not in run["name"]:
            continue
        header = f"== run: {run['name']} ({len(run['spans'])} spans) =="
        sections.append(f"{header}\n{render_timeline(run, width=width)}")
    parts = _partition_rows(_filtered_metric_rows(doc, run_filter))
    for key, builder in _TABLE_BUILDERS:
        if parts[key]:
            title, columns, rows, note = builder(parts[key])
            sections.append(format_table(title, columns, rows, note=note))
    if not sections:
        return f"no matching runs or devices in {path}"
    return "\n\n".join(sections)


def report_data(path: str, run_filter: Optional[str] = None) -> dict:
    """Machine-readable mirror of :func:`render_report`.

    Returns ``{"trace", "runs": [...], "tables": {name: {"title",
    "columns", "rows", "note"}}}`` — every ASCII table, same cells."""
    doc = load_trace(path)
    runs = _runs(doc["traceEvents"])
    data: dict[str, Any] = {"trace": path, "runs": [], "tables": {}}
    for pid in sorted(runs):
        run = runs[pid]
        if run_filter is not None and run_filter not in run["name"]:
            continue
        data["runs"].append({
            "pid": pid,
            "name": run["name"],
            "spans": len(run["spans"]),
            "tracks": sorted(run["tracks"].values()),
        })
    parts = _partition_rows(_filtered_metric_rows(doc, run_filter))
    for key, builder in _TABLE_BUILDERS:
        if parts[key]:
            title, columns, rows, note = builder(parts[key])
            data["tables"][key] = {"title": title, "columns": columns,
                                   "rows": rows, "note": note}
    return data


# --------------------------------------------------------------------------
# Critical-path rendering
# --------------------------------------------------------------------------

def render_critpath(path: str, run: Optional[str] = None,
                    kind: str = "map") -> str:
    """Bottleneck attribution for one run: the top-bottlenecks table
    from the critical-path walk plus the spans-only Fig. 7-style phase
    decomposition."""
    from repro.bench.reporting import format_table

    spans = spans_from_trace(load_trace(path), run=run)
    cp = critical_path(spans)
    columns, rows, note = cp.bottleneck_rows()
    sections = [format_table("top bottlenecks (critical path)",
                             columns, rows, note=note)]
    for k in (kind, "reduce") if kind == "map" else (kind,):
        columns, rows, note = decomposition_rows(spans, kind=k)
        if rows:
            sections.append(format_table(
                f"{k}-task phase decomposition", columns, rows, note=note))
    return "\n\n".join(sections)


def critpath_data(path: str, run: Optional[str] = None) -> dict:
    """Machine-readable critical path: segments, phase × device buckets
    and the per-kind phase decompositions."""
    spans = spans_from_trace(load_trace(path), run=run)
    cp = critical_path(spans)
    data = cp.as_dict()
    data["decomposition"] = {
        kind: decomp
        for kind in ("map", "reduce")
        if (decomp := phase_decomposition(spans, kind=kind))
    }
    return data


def validate_trace(path: str) -> list[str]:
    """Well-formedness check; returns a list of problems (empty = valid).

    Checks every event has a known phase and the required fields, span
    durations are non-negative, and timestamps within each pid are
    monotonically non-decreasing (the exporters sort them).
    """
    problems: list[str] = []
    try:
        doc = load_trace(path)
    except Exception as exc:
        return [f"unreadable trace: {exc!r}"]
    last_ts: dict[Any, float] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for req in ("name", "pid", "tid", "ts"):
            if req not in ev:
                problems.append(f"event {i}: missing {req!r}")
        if ph == "X":
            if ev.get("dur", -1) < 0:
                problems.append(
                    f"event {i}: span {ev.get('name')!r} has negative "
                    f"or missing dur")
            pid = ev.get("pid")
            ts = ev.get("ts", 0)
            if ts < last_ts.get(pid, float("-inf")):
                problems.append(
                    f"event {i}: non-monotonic ts {ts} in pid {pid}")
            last_ts[pid] = ts
    for i, row in enumerate(doc["deviceMetrics"]):
        if "device" not in row:
            problems.append(f"device row {i}: missing 'device'")
        if not 0.0 <= row.get("utilization", 0.0) <= 1.0:
            problems.append(
                f"device row {i}: utilization outside [0, 1]")
    return problems
