"""Span tracer on the simulated clock, with Chrome/JSONL exporters.

A :class:`Tracer` is attached to a DES environment
(:func:`attach_tracer`); instrumented code resolves it through
:func:`tracer_of`, which returns the shared :data:`NULL_TRACER` when
tracing is off — ``tracer_of(env).span(...)`` then returns one shared
no-op handle, so the disabled hot path allocates nothing.

Timestamps are simulated seconds converted to microseconds (the Chrome
``trace_event`` unit); there is no wall time anywhere, so two identical
runs export byte-identical traces.

Spans carry a *track* name instead of a raw thread id; the exporter
assigns integer ``tid``\\ s in sorted track order and emits
``thread_name`` metadata so Perfetto shows one labelled swimlane per
track (``hadoop3.s2``, ``hadoop3.pfs``, ...). Multi-run sessions
(:class:`TraceSession`) map each simulated run to its own ``pid``.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = [
    "NULL_TRACER",
    "Span",
    "TraceSession",
    "Tracer",
    "attach_tracer",
    "chrome_events",
    "load_trace",
    "tracer_of",
    "write_chrome_trace",
    "write_jsonl_trace",
]


class Span:
    """One finished (or in-flight) named interval on a track."""

    __slots__ = ("name", "cat", "track", "start", "end", "args")

    def __init__(self, name: str, cat: str, track: str, start: float,
                 args: Optional[dict] = None):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = start
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} [{self.start:.6f}, {self.end:.6f}] "
                f"track={self.track!r}>")


class _SpanHandle:
    """Context manager that closes one span at the simulated exit time."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def set(self, **args: Any) -> "_SpanHandle":
        """Attach (or update) span arguments mid-flight."""
        if self._span.args is None:
            self._span.args = {}
        self._span.args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._span.end = self._tracer.env.now
        self._tracer.spans.append(self._span)


class _NullHandle:
    """Shared do-nothing span handle — the disabled-tracing hot path."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NullHandle":
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class _NullTracer:
    """Tracer stand-in when tracing is disabled. All methods are no-ops
    returning shared singletons; nothing is allocated per call."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "", track: str = "main",
             **args: Any) -> _NullHandle:
        return _NULL_HANDLE

    def instant(self, name: str, cat: str = "", track: str = "main",
                **args: Any) -> None:
        pass

    def counter(self, name: str, value: float, cat: str = "util") -> None:
        pass


NULL_TRACER = _NullTracer()


class Tracer:
    """Collects spans/instants/counter samples against one environment."""

    enabled = True

    def __init__(self, env):
        self.env = env
        self.spans: list[Span] = []
        #: (time, name, cat, track, args)
        self.instants: list[tuple[float, str, str, str, Optional[dict]]] = []
        #: (time, name, value, cat)
        self.counter_samples: list[tuple[float, str, float, str]] = []

    def span(self, name: str, cat: str = "", track: str = "main",
             **args: Any) -> _SpanHandle:
        """Open a span; use as a context manager (``with tracer.span(...)``).
        The span is recorded when the ``with`` block exits."""
        return _SpanHandle(
            self, Span(name, cat, track, self.env.now, args or None))

    def instant(self, name: str, cat: str = "", track: str = "main",
                **args: Any) -> None:
        """Record a zero-duration marker at the current simulated time."""
        self.instants.append(
            (self.env.now, name, cat, track, args or None))

    def counter(self, name: str, value: float, cat: str = "util") -> None:
        """Record one sample of a named counter series."""
        self.counter_samples.append((self.env.now, name, float(value), cat))


def attach_tracer(env, tracer: Optional[Tracer] = None) -> Tracer:
    """Attach (and return) a tracer on ``env``; idempotent by default."""
    existing = getattr(env, "tracer", None)
    if tracer is None:
        if isinstance(existing, Tracer):
            return existing
        tracer = Tracer(env)
    env.tracer = tracer
    return tracer


def tracer_of(env):
    """The tracer attached to ``env``, or :data:`NULL_TRACER`."""
    tracer = getattr(env, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER


# --------------------------------------------------------------------------
# Export
# --------------------------------------------------------------------------

def _us(seconds: float) -> float:
    """Simulated seconds -> trace_event microseconds (exact, no wall time)."""
    return round(seconds * 1e6, 3)


def chrome_events(tracer: Tracer, pid: int = 0, process_name: str = "sim",
                  extra_counters: Optional[list[tuple]] = None) -> list[dict]:
    """Flatten one tracer into Chrome ``trace_event`` dicts.

    Events are sorted by (timestamp, -duration, track, name) so exported
    timestamps are monotonically non-decreasing and parents precede their
    children at equal start times.
    """
    tracks = sorted({s.track for s in tracer.spans}
                    | {track for _t, _n, _c, track, _a in tracer.instants})
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    events: list[dict] = []
    events.append({
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": process_name},
    })
    for track in tracks:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": tid_of[track], "ts": 0, "args": {"name": track},
        })

    body: list[tuple] = []
    for span in tracer.spans:
        ev = {
            "ph": "X", "name": span.name, "cat": span.cat or "span",
            "pid": pid, "tid": tid_of[span.track],
            "ts": _us(span.start), "dur": _us(span.duration),
        }
        if span.args:
            ev["args"] = span.args
        body.append((ev["ts"], -ev["dur"], span.track, span.name, ev))
    for when, name, cat, track, args in tracer.instants:
        ev = {
            "ph": "i", "name": name, "cat": cat or "instant",
            "pid": pid, "tid": tid_of[track], "ts": _us(when), "s": "t",
        }
        if args:
            ev["args"] = args
        body.append((ev["ts"], 0.0, track, name, ev))
    for when, name, value, cat in (
            list(tracer.counter_samples) + list(extra_counters or ())):
        ev = {
            "ph": "C", "name": name, "cat": cat, "pid": pid, "tid": 0,
            "ts": _us(when), "args": {"value": value},
        }
        body.append((ev["ts"], 0.0, "", name, ev))
    body.sort(key=lambda item: item[:4])
    events.extend(ev for *_key, ev in body)
    return events


def _dump(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def write_chrome_trace(path: str, events: list[dict],
                       device_metrics: Optional[list[dict]] = None) -> None:
    """Write the Chrome ``trace_event`` *object format* JSON.

    ``device_metrics`` rows (per-device bytes/utilisation summaries) ride
    along under a ``deviceMetrics`` key; trace viewers ignore unknown
    top-level keys.
    """
    doc: dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }
    if device_metrics is not None:
        doc["deviceMetrics"] = device_metrics
    with open(path, "w") as fh:
        fh.write(_dump(doc))
        fh.write("\n")


def write_jsonl_trace(path: str, events: list[dict],
                      device_metrics: Optional[list[dict]] = None) -> None:
    """Write one JSON event per line (stream-friendly variant)."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(_dump(event))
            fh.write("\n")
        for row in device_metrics or ():
            fh.write(_dump({"ph": "device", **row}))
            fh.write("\n")


def load_trace(path: str) -> dict:
    """Load a trace written by either exporter.

    Returns ``{"traceEvents": [...], "deviceMetrics": [...]}`` regardless
    of the on-disk flavour (object JSON, bare array, or JSONL).
    """
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # several documents -> JSONL
    if isinstance(doc, dict):
        return {"traceEvents": doc.get("traceEvents", []),
                "deviceMetrics": doc.get("deviceMetrics", [])}
    if isinstance(doc, list):
        return {"traceEvents": doc, "deviceMetrics": []}
    events, devices = [], []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("ph") == "device":
            devices.append(record)
        else:
            events.append(record)
    return {"traceEvents": events, "deviceMetrics": devices}


# --------------------------------------------------------------------------
# Multi-run sessions (the bench --trace path)
# --------------------------------------------------------------------------

class TraceSession:
    """Collects one tracer + metrics registry per simulated run and saves
    a single combined trace file.

    A figure bench typically builds several worlds (one per dataset size
    or solution); each :meth:`observe` call claims the next ``pid`` so
    the runs appear as separate named processes in the trace viewer.
    With ``path=None`` the session is disabled and every call no-ops.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        #: (label, tracer, registry)
        self.runs: list[tuple] = []

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def observe(self, env, label: str, nodes=(), pfs=None, hdfs=None,
                network=None):
        """Attach tracing+metrics to one run's environment.

        Returns the attached tracer (or :data:`NULL_TRACER` when the
        session is disabled).
        """
        if not self.enabled:
            return NULL_TRACER
        from repro.obs.metrics import attach_metrics

        tracer = attach_tracer(env)
        registry = attach_metrics(env)
        for node in nodes:
            registry.watch_node(node)
        if network is not None:
            registry.watch_network(network)
        if pfs is not None:
            registry.watch_pfs(pfs)
        if hdfs is not None:
            registry.watch_hdfs(hdfs)
        self.runs.append((label, tracer, registry))
        return tracer

    def observe_world(self, world, label: str):
        """Convenience for :class:`~repro.workloads.solutions
        .ExperimentWorld`-shaped objects."""
        return self.observe(
            world.env, label, nodes=world.nodes, pfs=world.pfs,
            hdfs=world.hdfs, network=world.cluster.network)

    def events(self) -> tuple[list[dict], list[dict]]:
        """Merge all runs into (events, device_metrics rows)."""
        events: list[dict] = []
        devices: list[dict] = []
        for pid, (label, tracer, registry) in enumerate(self.runs, start=1):
            # Fold the registry's utilisation gauges in as counter series
            # so device load is visible on the timeline itself.
            counters = [
                (when, name, value, "util")
                for name, monitor in registry.device_monitors()
                for when, value in zip(monitor.times, monitor.values)
            ]
            events.extend(chrome_events(tracer, pid=pid, process_name=label,
                                        extra_counters=counters))
            for row in registry.device_rows():
                devices.append({"run": label, **row})
            for row in registry.cache_rows():
                devices.append({"run": label, **row})
            # Per-scheme read rows ride along in the device-row shape so
            # every exporter/loader carries them without a schema change.
            for row in registry.scheme_read_rows():
                devices.append({
                    "run": label,
                    "device": f"io.read.{row['scheme']}",
                    "scheme": row["scheme"],
                    "utilization": 0.0,
                    "bytes_moved": row["bytes"],
                    "read_requests": row["requests"],
                    "read_cache_hits": row["cache_hits"],
                })
            # Per-scheme write rows, same trick: the "write_scheme" key
            # is the marker the report renderer partitions on.
            for row in registry.scheme_write_rows():
                devices.append({
                    "run": label,
                    "device": f"io.write.{row['scheme']}",
                    "write_scheme": row["scheme"],
                    "utilization": 0.0,
                    "bytes_moved": row["bytes"],
                    "write_requests": row["requests"],
                })
            # Per-job shuffle rows, same trick: the "shuffle_job" key is
            # the marker the report renderer partitions on.
            for row in registry.shuffle_rows():
                devices.append({
                    "run": label,
                    "device": f"shuffle.{row['job']}",
                    "shuffle_job": row["job"],
                    "utilization": 0.0,
                    "bytes_moved": row["bytes"],
                    "shuffle_fetches": row["fetches"],
                    "shuffle_fetch_retries": row["fetch_retries"],
                    "combine_input_records": row["combine_input_records"],
                    "combine_output_records": row["combine_output_records"],
                    "merge_passes": row["merge_passes"],
                    "spilled_bytes": row["spilled_bytes"],
                })
        return events, devices

    def save(self) -> Optional[str]:
        """Write the combined trace; returns the path (None if disabled)."""
        if not self.enabled:
            return None
        events, devices = self.events()
        if self.path.endswith(".jsonl"):
            write_jsonl_trace(self.path, events, devices)
        else:
            write_chrome_trace(self.path, events, devices)
        return self.path
