"""Span tracer on the simulated clock, with Chrome/JSONL exporters.

A :class:`Tracer` is attached to a DES environment
(:func:`attach_tracer`); instrumented code resolves it through
:func:`tracer_of`, which returns the shared :data:`NULL_TRACER` when
tracing is off — ``tracer_of(env).span(...)`` then returns one shared
no-op handle, so the disabled hot path allocates nothing.

Timestamps are simulated seconds converted to microseconds (the Chrome
``trace_event`` unit); there is no wall time anywhere, so two identical
runs export byte-identical traces.

Spans carry a *track* name instead of a raw thread id; the exporter
assigns integer ``tid``\\ s in sorted track order and emits
``thread_name`` metadata so Perfetto shows one labelled swimlane per
track (``hadoop3.s2``, ``hadoop3.pfs``, ...). Multi-run sessions
(:class:`TraceSession`) map each simulated run to its own ``pid``.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.obs.columnar import ColumnarLog

__all__ = [
    "NULL_TRACER",
    "Span",
    "TraceSession",
    "Tracer",
    "attach_tracer",
    "chrome_events",
    "load_trace",
    "tracer_of",
    "write_chrome_trace",
    "write_jsonl_trace",
]


class Span:
    """One finished (or in-flight) named interval on a track."""

    __slots__ = ("name", "cat", "track", "start", "end", "args")

    def __init__(self, name: str, cat: str, track: str, start: float,
                 args: Optional[dict] = None):
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = start
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} [{self.start:.6f}, {self.end:.6f}] "
                f"track={self.track!r}>")


class _SpanHandle:
    """Reusable context manager that records one span on exit.

    Handles are pooled on the owning tracer (a freelist), so steady-state
    span recording allocates no objects at all: entering a span pops a
    handle, exiting extends the columnar buffer with three floats and
    pushes the handle back. ``_active`` marks handles currently inside a
    ``with`` block — that is what lets the exporter synthesise
    still-in-flight spans at dump time instead of dropping them.
    """

    __slots__ = ("_tracer", "_kid", "_start", "_args", "_active")

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer
        self._kid = 0
        self._start = 0.0
        self._args: Optional[dict] = None
        self._active = False

    def set(self, **args: Any) -> "_SpanHandle":
        """Attach (or update) span arguments mid-flight."""
        if self._args is None:
            self._args = {}
        self._args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        buf = tracer._sbuf
        buf.extend((self._start, tracer.env.now, self._kid))
        log = tracer.log
        if self._args:
            log.span_args[len(log.spans) - 1] = self._args
        if len(buf) >= tracer._sflush:
            log.spans.column.flush()
        self._active = False
        tracer._free.append(self)


class _NullHandle:
    """Shared do-nothing span handle — the disabled-tracing hot path."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NullHandle":
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class _NullTracer:
    """Tracer stand-in when tracing is disabled. All methods are no-ops
    returning shared singletons; nothing is allocated per call."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "", track: str = "main",
             **args: Any) -> _NullHandle:
        return _NULL_HANDLE

    def instant(self, name: str, cat: str = "", track: str = "main",
                **args: Any) -> None:
        pass

    def counter(self, name: str, value: float, cat: str = "util") -> None:
        pass


NULL_TRACER = _NullTracer()


class Tracer:
    """Collects spans/instants/counter samples against one environment.

    Recording is columnar (v2): events append interned-key float rows
    into a :class:`~repro.obs.columnar.ColumnarLog` — no per-event
    Python objects. The historical per-object views (``spans`` as
    :class:`Span` objects in close order, ``instants`` and
    ``counter_samples`` as tuples) are materialised from the columns on
    access and cached until more events arrive, so existing consumers
    and exporters see exactly the v1 shapes.
    """

    enabled = True

    def __init__(self, env):
        self.env = env
        self.log = ColumnarLog()
        # hot-path caches: the shared key dicts and the stable buffer
        # lists / flush thresholds of each table (see FloatColumn.buf)
        self._keys = self.log.keys
        self._ckeys = self.log.ckeys
        self._sbuf = self.log.spans.column.buf
        self._sflush = self.log.spans.column.flush_at
        self._ibuf = self.log.instants.column.buf
        self._iflush = self.log.instants.column.flush_at
        self._cbuf = self.log.counters.column.buf
        self._cflush = self.log.counters.column.flush_at
        # span-handle pool + every handle ever created (for in-flight
        # discovery at export time; bounded by max concurrent nesting)
        self._free: list[_SpanHandle] = []
        self._handles: list[_SpanHandle] = []
        # materialised-view caches, invalidated by row-count change
        self._span_view: Optional[list[Span]] = None
        self._instant_view: Optional[list[tuple]] = None
        self._counter_view: Optional[list[tuple]] = None

    def span(self, name: str, cat: str = "", track: str = "main",
             **args: Any) -> _SpanHandle:
        """Open a span; use as a context manager (``with tracer.span(...)``).
        The span is recorded when the ``with`` block exits."""
        try:
            kid = self._keys[(name, cat, track)]
        except KeyError:
            kid = self.log.key_id(name, cat, track)
        free = self._free
        if free:
            handle = free.pop()
        else:
            handle = _SpanHandle(self)
            self._handles.append(handle)
        handle._kid = kid
        handle._start = self.env.now
        handle._args = args or None
        handle._active = True
        return handle

    def instant(self, name: str, cat: str = "", track: str = "main",
                **args: Any) -> None:
        """Record a zero-duration marker at the current simulated time."""
        log = self.log
        try:
            kid = self._keys[(name, cat, track)]
        except KeyError:
            kid = log.key_id(name, cat, track)
        if args:
            log.instant_args[len(log.instants)] = args
        buf = self._ibuf
        buf.extend((self.env.now, kid))
        if len(buf) >= self._iflush:
            log.instants.column.flush()

    def counter(self, name: str, value: float, cat: str = "util") -> None:
        """Record one sample of a named counter series."""
        try:
            ckid = self._ckeys[(name, cat)]
        except KeyError:
            ckid = self.log.counter_key_id(name, cat)
        buf = self._cbuf
        buf.extend((self.env.now, float(value), ckid))
        if len(buf) >= self._cflush:
            self.log.counters.column.flush()

    # -- materialised v1-shaped views ------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Closed spans as :class:`Span` objects, in close order."""
        n = len(self.log.spans)
        if self._span_view is None or len(self._span_view) != n:
            rows = self.log.spans.rows().tolist()
            keys = self.log.key_list
            args = self.log.span_args
            view = []
            for i, (start, end, kid) in enumerate(rows):
                name, cat, track = keys[int(kid)]
                span = Span(name, cat, track, start, args.get(i))
                span.end = end
                view.append(span)
            self._span_view = view
        return self._span_view

    @property
    def instants(self) -> list[tuple[float, str, str, str, Optional[dict]]]:
        """Markers as ``(time, name, cat, track, args)`` tuples."""
        n = len(self.log.instants)
        if self._instant_view is None or len(self._instant_view) != n:
            keys = self.log.key_list
            args = self.log.instant_args
            self._instant_view = [
                (ts, *keys[int(kid)], args.get(i))
                for i, (ts, kid) in enumerate(
                    self.log.instants.rows().tolist())
            ]
        return self._instant_view

    @property
    def counter_samples(self) -> list[tuple[float, str, float, str]]:
        """Counter samples as ``(time, name, value, cat)`` tuples."""
        n = len(self.log.counters)
        if self._counter_view is None or len(self._counter_view) != n:
            ckeys = self.log.ckey_list
            self._counter_view = [
                (ts, ckeys[int(kid)][0], value, ckeys[int(kid)][1])
                for ts, value, kid in self.log.counters.rows().tolist()
            ]
        return self._counter_view

    # -- export support ---------------------------------------------------
    def inflight_spans(self) -> list[Span]:
        """Still-open spans closed at the current simulated clock.

        Each synthesised span carries ``args["inflight"] = True`` so a
        dump taken mid-run shows what was executing rather than silently
        dropping unfinished work. Ordered by (start, track, name) for
        deterministic export.
        """
        now = self.env.now
        out = []
        for handle in self._handles:
            if handle._active:
                name, cat, track = self.log.key_list[handle._kid]
                args = dict(handle._args) if handle._args else {}
                args["inflight"] = True
                span = Span(name, cat, track, handle._start, args)
                span.end = now
                out.append(span)
        out.sort(key=lambda s: (s.start, s.track, s.name))
        return out

    def known_tracks(self) -> list[str]:
        """Every interned track name, sorted once — the exporter's stable
        ``tid`` ordering."""
        return sorted(self.log.tracks())


def attach_tracer(env, tracer: Optional[Tracer] = None) -> Tracer:
    """Attach (and return) a tracer on ``env``; idempotent by default.

    Any already-attached tracer-like object is kept (this is what lets
    the twin-world tests pin a frozen ``LegacyTracer`` on one of two
    otherwise-identical runs).
    """
    existing = getattr(env, "tracer", None)
    if tracer is None:
        if existing is not None:
            return existing
        tracer = Tracer(env)
    env.tracer = tracer
    return tracer


def tracer_of(env):
    """The tracer attached to ``env``, or :data:`NULL_TRACER`."""
    tracer = getattr(env, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER


# --------------------------------------------------------------------------
# Export
# --------------------------------------------------------------------------

def _us(seconds: float) -> float:
    """Simulated seconds -> trace_event microseconds (exact, no wall time)."""
    return round(seconds * 1e6, 3)


def chrome_events(tracer: Tracer, pid: int = 0, process_name: str = "sim",
                  extra_counters: Optional[list[tuple]] = None) -> list[dict]:
    """Flatten one tracer into Chrome ``trace_event`` dicts.

    Events are sorted by (timestamp, -duration, track, name) so exported
    timestamps are monotonically non-decreasing and parents precede their
    children at equal start times.

    Spans still open at dump time are exported closed at the current
    simulated clock with an ``inflight: true`` arg instead of being
    dropped. ``tid`` assignment is stable by construction: the union of
    all known tracks (the tracer's interned set when available, plus any
    track seen on a span or instant) is sorted lexicographically once
    and tids are 1-based positions in that order — insertion order never
    changes the numbering.
    """
    spans = list(tracer.spans)
    inflight = getattr(tracer, "inflight_spans", None)
    if inflight is not None:
        spans.extend(inflight())
    track_set = {s.track for s in spans}
    track_set.update(track for _t, _n, _c, track, _a in tracer.instants)
    known = getattr(tracer, "known_tracks", None)
    if known is not None:
        track_set.update(known())
    tracks = sorted(track_set)
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    events: list[dict] = []
    events.append({
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": process_name},
    })
    for track in tracks:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": tid_of[track], "ts": 0, "args": {"name": track},
        })

    body: list[tuple] = []
    for span in spans:
        ev = {
            "ph": "X", "name": span.name, "cat": span.cat or "span",
            "pid": pid, "tid": tid_of[span.track],
            "ts": _us(span.start), "dur": _us(span.duration),
        }
        if span.args:
            ev["args"] = span.args
        body.append((ev["ts"], -ev["dur"], span.track, span.name, ev))
    for when, name, cat, track, args in tracer.instants:
        ev = {
            "ph": "i", "name": name, "cat": cat or "instant",
            "pid": pid, "tid": tid_of[track], "ts": _us(when), "s": "t",
        }
        if args:
            ev["args"] = args
        body.append((ev["ts"], 0.0, track, name, ev))
    for when, name, value, cat in (
            list(tracer.counter_samples) + list(extra_counters or ())):
        ev = {
            "ph": "C", "name": name, "cat": cat, "pid": pid, "tid": 0,
            "ts": _us(when), "args": {"value": value},
        }
        body.append((ev["ts"], 0.0, "", name, ev))
    body.sort(key=lambda item: item[:4])
    events.extend(ev for *_key, ev in body)
    return events


def _dump(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def write_chrome_trace(path: str, events: list[dict],
                       device_metrics: Optional[list[dict]] = None) -> None:
    """Write the Chrome ``trace_event`` *object format* JSON.

    ``device_metrics`` rows (per-device bytes/utilisation summaries) ride
    along under a ``deviceMetrics`` key; trace viewers ignore unknown
    top-level keys.
    """
    doc: dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }
    if device_metrics is not None:
        doc["deviceMetrics"] = device_metrics
    with open(path, "w") as fh:
        fh.write(_dump(doc))
        fh.write("\n")


def write_jsonl_trace(path: str, events: list[dict],
                      device_metrics: Optional[list[dict]] = None) -> None:
    """Write one JSON event per line (stream-friendly variant)."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(_dump(event))
            fh.write("\n")
        for row in device_metrics or ():
            fh.write(_dump({"ph": "device", **row}))
            fh.write("\n")


def load_trace(path: str) -> dict:
    """Load a trace written by either exporter.

    Returns ``{"traceEvents": [...], "deviceMetrics": [...]}`` regardless
    of the on-disk flavour (object JSON, bare array, or JSONL).
    """
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # several documents -> JSONL
    if isinstance(doc, dict):
        return {"traceEvents": doc.get("traceEvents", []),
                "deviceMetrics": doc.get("deviceMetrics", [])}
    if isinstance(doc, list):
        return {"traceEvents": doc, "deviceMetrics": []}
    events, devices = [], []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("ph") == "device":
            devices.append(record)
        else:
            events.append(record)
    return {"traceEvents": events, "deviceMetrics": devices}


# --------------------------------------------------------------------------
# Multi-run sessions (the bench --trace path)
# --------------------------------------------------------------------------

class TraceSession:
    """Collects one tracer + metrics registry per simulated run and saves
    a single combined trace file.

    A figure bench typically builds several worlds (one per dataset size
    or solution); each :meth:`observe` call claims the next ``pid`` so
    the runs appear as separate named processes in the trace viewer.
    With ``path=None`` the session is disabled and every call no-ops.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        #: (label, tracer, registry)
        self.runs: list[tuple] = []

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def observe(self, env, label: str, nodes=(), pfs=None, hdfs=None,
                network=None):
        """Attach tracing+metrics to one run's environment.

        Returns the attached tracer (or :data:`NULL_TRACER` when the
        session is disabled).
        """
        if not self.enabled:
            return NULL_TRACER
        from repro.obs.metrics import attach_metrics

        tracer = attach_tracer(env)
        registry = attach_metrics(env)
        for node in nodes:
            registry.watch_node(node)
        if network is not None:
            registry.watch_network(network)
        if pfs is not None:
            registry.watch_pfs(pfs)
        if hdfs is not None:
            registry.watch_hdfs(hdfs)
        self.runs.append((label, tracer, registry))
        return tracer

    def observe_world(self, world, label: str):
        """Convenience for :class:`~repro.workloads.solutions
        .ExperimentWorld`-shaped objects."""
        return self.observe(
            world.env, label, nodes=world.nodes, pfs=world.pfs,
            hdfs=world.hdfs, network=world.cluster.network)

    def events(self) -> tuple[list[dict], list[dict]]:
        """Merge all runs into (events, device_metrics rows)."""
        events: list[dict] = []
        devices: list[dict] = []
        for pid, (label, tracer, registry) in enumerate(self.runs, start=1):
            # Fold the registry's utilisation gauges in as counter series
            # so device load is visible on the timeline itself.
            counters = [
                (when, name, value, "util")
                for name, monitor in registry.device_monitors()
                for when, value in zip(monitor.times, monitor.values)
            ]
            events.extend(chrome_events(tracer, pid=pid, process_name=label,
                                        extra_counters=counters))
            for row in registry.device_rows():
                devices.append({"run": label, **row})
            for row in registry.cache_rows():
                devices.append({"run": label, **row})
            # Per-scheme read rows ride along in the device-row shape so
            # every exporter/loader carries them without a schema change.
            for row in registry.scheme_read_rows():
                devices.append({
                    "run": label,
                    "device": f"io.read.{row['scheme']}",
                    "scheme": row["scheme"],
                    "utilization": 0.0,
                    "bytes_moved": row["bytes"],
                    "read_requests": row["requests"],
                    "read_cache_hits": row["cache_hits"],
                })
            # Per-scheme write rows, same trick: the "write_scheme" key
            # is the marker the report renderer partitions on.
            for row in registry.scheme_write_rows():
                devices.append({
                    "run": label,
                    "device": f"io.write.{row['scheme']}",
                    "write_scheme": row["scheme"],
                    "utilization": 0.0,
                    "bytes_moved": row["bytes"],
                    "write_requests": row["requests"],
                })
            # Per-job shuffle rows, same trick: the "shuffle_job" key is
            # the marker the report renderer partitions on.
            for row in registry.shuffle_rows():
                devices.append({
                    "run": label,
                    "device": f"shuffle.{row['job']}",
                    "shuffle_job": row["job"],
                    "utilization": 0.0,
                    "bytes_moved": row["bytes"],
                    "shuffle_fetches": row["fetches"],
                    "shuffle_fetch_retries": row["fetch_retries"],
                    "combine_input_records": row["combine_input_records"],
                    "combine_output_records": row["combine_output_records"],
                    "merge_passes": row["merge_passes"],
                    "spilled_bytes": row["spilled_bytes"],
                })
            # Latency-percentile rows (streaming histograms), same trick:
            # the "hist_name" key is the marker the report renderer
            # partitions on.
            for row in registry.latency_rows():
                devices.append({
                    "run": label,
                    "device": f"lat.{row['hist']}",
                    "hist_name": row["hist"],
                    "utilization": 0.0,
                    "count": row["count"],
                    "mean_seconds": row["mean"],
                    "p50_seconds": row["p50"],
                    "p90_seconds": row["p90"],
                    "p99_seconds": row["p99"],
                    "max_seconds": row["max"],
                })
        return events, devices

    def save(self) -> Optional[str]:
        """Write the combined trace; returns the path (None if disabled)."""
        if not self.enabled:
            return None
        events, devices = self.events()
        if self.path.endswith(".jsonl"):
            write_jsonl_trace(self.path, events, devices)
        else:
            write_chrome_trace(self.path, events, devices)
        return self.path
