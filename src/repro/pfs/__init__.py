"""Lustre-like parallel file system.

Components mirror Lustre's architecture (§II, §V-A of the paper):

- :class:`~repro.pfs.server.MDS` — metadata server: namespace, inodes,
  stripe layouts.
- :class:`~repro.pfs.server.OST` — object storage target: one disk holding
  file objects (real bytes).
- :class:`~repro.pfs.server.OSS` — object storage server: a storage node
  fronting several OSTs; data crosses its NIC.
- :class:`~repro.pfs.client.PFSClient` — compute-node client: POSIX-like
  open/stat/read/write, striped across OSTs.
- :mod:`repro.pfs.mpiio` — MPI-IO-like layer with independent and
  collective (two-phase) reads, used by Fig. 6.

Both layers are real: bytes are stored and returned exactly; simulated
time is charged for every disk and network interaction.
"""

from repro.pfs.layout import Extent, StripeLayout
from repro.pfs.server import MDS, OSS, OST, PFSError
from repro.pfs.client import PFSClient
from repro.pfs.filesystem import PFS

__all__ = [
    "Extent",
    "MDS",
    "OSS",
    "OST",
    "PFS",
    "PFSClient",
    "PFSError",
    "StripeLayout",
]
