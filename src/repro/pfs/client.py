"""Compute-node PFS client with timed, striped reads and writes.

Implements the :class:`repro.io.protocol.StorageClient` protocol; all
planning (per-OST run coalescing, bounded fan-out) is delegated to the
shared :class:`repro.io.planner.ReadPlanner`. ``coalesce_extents`` is
kept as a delegating shim for the legacy import path.
"""

from __future__ import annotations

from typing import Optional

from repro import costs
from repro.cluster.node import Node
from repro.io.plan import Extent
from repro.io.planner import ReadPlanner
from repro.io.planner import coalesce_extents as _coalesce_extents
from repro.io.write import WritePlanner
from repro.obs.trace import tracer_of
from repro.pfs.filesystem import PFS
from repro.pfs.layout import StripeLayout
from repro.pfs.server import Inode, PFSError
from repro.sim import AllOf

__all__ = ["PFSClient", "coalesce_extents"]


def coalesce_extents(extents: list[Extent]) -> dict[int, list[Extent]]:
    """Group extents by OST and merge object-adjacent runs into one RPC.

    Delegating shim: the implementation lives in
    :func:`repro.io.planner.coalesce_extents` (the unified data plane).
    """
    return _coalesce_extents(extents)


class PFSClient:
    """POSIX-like timed access to a :class:`PFS` from one compute node.

    All public operations are DES processes: drive them with
    ``data = yield env.process(client.read(path, off, n))``.
    """

    def __init__(self, pfs: PFS, node: Node,
                 max_inflight: Optional[int] = None,
                 write_max_inflight: Optional[int] = None,
                 write_chunk: Optional[int] = None):
        self.pfs = pfs
        self.node = node
        self.env = pfs.env
        #: bounded window for coalesced per-OST run fetches;
        #: 0 = unbounded (all runs issued at once)
        self.max_inflight = (costs.PFS_CLIENT_MAX_INFLIGHT
                             if max_inflight is None else max_inflight)
        if self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 = unbounded)")
        #: the shared read planner (per-OST coalescing + run fan-out)
        self.planner = ReadPlanner(self.env, scheme="pfs",
                                   max_inflight=self.max_inflight)
        #: bounded window for stripe pushes; 0 = unbounded (the legacy
        #: one-AllOf-over-everything shape)
        self.write_max_inflight = (costs.PFS_WRITE_MAX_INFLIGHT
                                   if write_max_inflight is None
                                   else write_max_inflight)
        #: push-request granularity; None = whole-extent pushes (legacy)
        self.write_chunk = write_chunk
        #: the shared write planner (chunking + push fan-out + metrics)
        self.write_planner = WritePlanner(
            self.env, scheme="pfs", chunk=self.write_chunk,
            max_inflight=self.write_max_inflight)
        #: trace swimlane for this client's spans
        self.track = f"{node.name}.pfs"
        #: Total payload bytes this client has read (bandwidth accounting).
        self.bytes_read = 0.0
        #: Total payload bytes this client has written.
        self.bytes_written = 0.0

    # -- metadata ---------------------------------------------------------
    def stat(self, path: str):
        """Lookup an inode (one metadata RPC). DES process."""
        yield from self.pfs.mds.rpc()
        return self.pfs.mds.lookup(path)

    def listdir(self, path: str):
        """List a directory (one metadata RPC). DES process."""
        yield from self.pfs.mds.rpc()
        return self.pfs.mds.listdir(path)

    def exists(self, path: str):
        """Existence check (one metadata RPC). DES process."""
        yield from self.pfs.mds.rpc()
        return self.pfs.mds.exists(path)

    def delete(self, path: str):
        """Remove a file and its objects (one metadata RPC). DES process."""
        yield from self.pfs.mds.rpc()
        self.pfs.unlink(path)

    # -- data -------------------------------------------------------------
    def _fetch_run(self, inode: Inode, ext: Extent, results: dict):
        """Read one coalesced run from one OST and ship it here.

        Disk I/O and the bulk network transfer are pipelined (Lustre
        streams bulk RPC pages as the OST reads them), so the run takes
        max(disk, network) rather than their sum.
        """
        ost_global = inode.osts[ext.ost_index]
        ost = self.pfs.osts[ost_global]
        if ost.failed:
            raise PFSError(f"OST{ost.index} has failed")
        data = ost.read_sync(inode.inode_id, ext.object_offset, ext.length)
        disk_leg = ost.disk.read(ext.length)
        net_leg = self.pfs.network.transfer(
            self.pfs.ost_node(ost_global), self.node, ext.length)
        yield AllOf(self.env, [disk_leg, net_leg])
        self.planner.account(ext.length)
        results[(ext.ost_index, ext.object_offset)] = (ext, data)

    @staticmethod
    def _map_extents(inode: Inode, extents) -> list[Extent]:
        """Normalize protocol input: logical ``(offset, length)`` ranges
        are mapped through the stripe layout; pre-mapped extents pass
        through untouched."""
        mapped: list[Extent] = []
        for item in extents:
            if isinstance(item, Extent):
                mapped.append(item)
            else:
                offset, length = item
                mapped.extend(inode.layout.map_range(offset, length))
        return mapped

    def read_extents(self, target, extents,
                     max_inflight: Optional[int] = None):
        """Fetch arbitrary extents in parallel across OSTs. DES process.

        ``target`` is a path (one metadata RPC to resolve) or a
        pre-resolved :class:`Inode` (no RPC — the MPI-IO collective
        path). ``extents`` are logical ``(offset, length)`` ranges or
        pre-mapped :class:`Extent` records.

        Coalesced runs merge object-adjacent stripes that interleave in
        the logical file, so reassembly scatters each original extent
        back out of its containing run rather than concatenating runs.

        ``max_inflight`` bounds how many coalesced runs are in flight at
        once (default: the client's window; 0 = all at once).

        Returns the requested bytes ordered by file offset.
        """
        if isinstance(target, Inode):
            inode = target
        else:
            inode = yield self.env.process(self.stat(target))
        extents = self._map_extents(inode, extents)
        per_ost = self.planner.plan_runs(extents)
        results: dict = {}
        all_runs = [run for runs in per_ost.values() for run in runs]
        yield from self.planner.fan_out_runs(
            [lambda run=run: self._fetch_run(inode, run, results)
             for run in all_runs],
            max_inflight)
        run_data: dict[int, list[tuple[Extent, bytes]]] = {}
        for run, data in results.values():
            run_data.setdefault(run.ost_index, []).append((run, data))
        pieces: list[tuple[int, bytes]] = []
        for ext in extents:
            for run, data in run_data[ext.ost_index]:
                if (run.object_offset <= ext.object_offset
                        and ext.object_offset + ext.length
                        <= run.object_offset + run.length):
                    lo = ext.object_offset - run.object_offset
                    pieces.append((ext.file_offset,
                                   data[lo:lo + ext.length]))
                    break
            else:  # pragma: no cover - coalesce invariant violated
                raise PFSError("extent not covered by any coalesced run")
        ordered = b"".join(data for _off, data in sorted(pieces))
        self.bytes_read += len(ordered)
        return ordered

    def read(self, path: str, offset: int = 0,
             length: Optional[int] = None):
        """Timed read of ``length`` bytes at ``offset``. DES process."""
        with tracer_of(self.env).span(
                "pfs.read", cat="storage", track=self.track,
                path=path, offset=offset) as span:
            inode = yield self.env.process(self.stat(path))
            if length is None:
                length = inode.size - offset
            if offset + length > inode.size:
                raise PFSError(
                    f"read past EOF: {offset}+{length} > {inode.size}")
            if length == 0:
                return b""
            extents = inode.layout.map_range(offset, length)
            span.set(bytes=length, extents=len(extents))
            data = yield self.env.process(self.read_extents(inode, extents))
            # map_range yields stripe-order == file-order pieces; the
            # coalesced reassembly preserved that, but guard the contract
            # here.
            assert len(data) == length, (len(data), length)
            return data

    def read_block(self, block, offset: int = 0, length: int = -1,
                   max_inflight: Optional[int] = None):
        """Read one virtual (dummy) block's flat PFS bytes. DES process.

        The protocol's unified ``read_block`` surface: a PFS has no
        native blocks, but it can serve a :class:`BlockInfo` whose
        ``virtual`` payload names a flat file segment — the ``scidp://``
        resolution path. Hyperslab blocks need a
        :class:`~repro.core.reader.PFSReader` (decompression and
        reassembly live there).
        """
        virtual = getattr(block, "virtual", None)
        if virtual is None:
            raise PFSError(
                "PFS has no native blocks; read_block needs a virtual "
                "(dummy) BlockInfo")
        if virtual.hyperslab is not None:
            raise PFSError(
                "hyperslab dummy blocks decompress through "
                "repro.core.reader.PFSReader, not the raw PFS client")
        if length < 0:
            length = virtual.length - offset
        if offset + length > virtual.length:
            raise PFSError("read past end of block")
        data = yield self.env.process(
            self.read(virtual.source_path, virtual.offset + offset, length))
        return data

    def _push_run(self, inode: Inode, ext: Extent, data: bytes):
        ost_global = inode.osts[ext.ost_index]
        ost = self.pfs.osts[ost_global]
        yield self.pfs.network.transfer(
            self.node, self.pfs.ost_node(ost_global), len(data))
        yield self.env.process(
            ost.write(inode.inode_id, ext.object_offset, data))

    def write(self, path: str, data: bytes, offset: int = 0,
              layout: Optional[StripeLayout] = None,
              max_inflight: Optional[int] = None):
        """Timed write; creates the file if missing. DES process.

        The push plan comes from the shared
        :class:`~repro.io.write.WritePlanner`: at the defaults
        (``write_chunk=None``, ``write_max_inflight=0``) that is exactly
        the legacy shape — one RPC per stripe extent, all pushes issued
        up front under one ``AllOf``. A chunk size chops pushes to a
        granularity (payload-contiguous runs coalesce first) and
        ``max_inflight`` (default: the client's window) bounds how many
        pushes are in flight at once.
        """
        with tracer_of(self.env).span(
                "pfs.write", cat="storage", track=self.track,
                path=path, bytes=len(data)):
            yield from self.pfs.mds.rpc()
            if self.pfs.mds.exists(path):
                inode = self.pfs.mds.lookup(path)
            else:
                inode = self.pfs.create(path, layout)
            extents = inode.layout.map_range(offset, len(data))
            plan = self.write_planner.plan_extents(extents)
            factories = []
            for ext in plan:
                chunk = data[ext.file_offset - offset:
                             ext.file_offset - offset + ext.length]
                factories.append(
                    lambda e=ext, c=chunk: self._push_run(inode, e, c))
            yield from self.write_planner.fan_out_stripes(
                factories, max_inflight)
            inode.size = max(inode.size, offset + len(data))
            self.bytes_written += len(data)
            self.write_planner.account(len(data), requests=plan.n_requests)
            return inode
