"""PFS assembly: MDS + OSS nodes + global OST table + admin operations."""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.pfs.layout import StripeLayout
from repro.pfs.server import MDS, OSS, OST, Inode, PFSError
from repro.sim import Environment

__all__ = ["PFS", "SyncFileView"]


class PFS:
    """One mounted parallel file system.

    ``oss_nodes`` each contribute their disks as OSTs (the paper: two OSS
    nodes managing 24 OSTs). New files are striped round-robin starting at
    a rotating OST, like Lustre's default allocator.
    """

    def __init__(self, env: Environment, network: Network,
                 mds_node: Node, oss_nodes: list[Node],
                 osts_per_oss: Optional[int] = None,
                 default_layout: Optional[StripeLayout] = None):
        if not oss_nodes:
            raise PFSError("PFS needs at least one OSS node")
        self.env = env
        self.network = network
        self.mds = MDS(env, mds_node)
        self.osses: list[OSS] = []
        self.osts: list[OST] = []
        self._ost_node: list[Node] = []
        for node in oss_nodes:
            oss = OSS(env, node, ost_start_index=len(self.osts),
                      n_osts=osts_per_oss)
            self.osses.append(oss)
            for ost in oss.osts:
                self.osts.append(ost)
                self._ost_node.append(node)
        self.default_layout = default_layout or StripeLayout(
            stripe_size=1024 * 1024,
            stripe_count=min(4, len(self.osts)))
        self._next_start_ost = 0

    @property
    def n_osts(self) -> int:
        return len(self.osts)

    def ost_node(self, global_index: int) -> Node:
        return self._ost_node[global_index]

    def client(self, node: Node, max_inflight: Optional[int] = None,
               write_max_inflight: Optional[int] = None,
               write_chunk: Optional[int] = None):
        """A node-bound :class:`~repro.pfs.client.PFSClient` — the
        :class:`~repro.io.protocol.StorageFacade` surface."""
        from repro.pfs.client import PFSClient
        return PFSClient(self, node, max_inflight=max_inflight,
                         write_max_inflight=write_max_inflight,
                         write_chunk=write_chunk)

    def _allocate_osts(self, stripe_count: int) -> list[int]:
        if stripe_count > self.n_osts:
            raise PFSError(
                f"stripe_count {stripe_count} > {self.n_osts} OSTs")
        start = self._next_start_ost
        self._next_start_ost = (self._next_start_ost + 1) % self.n_osts
        return [(start + i) % self.n_osts for i in range(stripe_count)]

    # -- admin/sync operations (no simulated time; used for test setup and
    # -- for "data already produced by the HPC simulation" preconditions)
    def create(self, path: str, layout: Optional[StripeLayout] = None) -> Inode:
        layout = layout or self.default_layout
        return self.mds.create(
            path, layout, self._allocate_osts(layout.stripe_count))

    def store_file(self, path: str, data: bytes,
                   layout: Optional[StripeLayout] = None) -> Inode:
        """Write a whole file instantly (simulation setup path)."""
        inode = self.create(path, layout)
        for ext in inode.layout.map_range(0, len(data)):
            ost = self.osts[inode.osts[ext.ost_index]]
            ost.write_sync(
                inode.inode_id, ext.object_offset,
                data[ext.file_offset:ext.file_offset + ext.length])
        inode.size = len(data)
        return inode

    def store_file_sync(self, path: str, data: bytes,
                        layout: Optional[StripeLayout] = None,
                        **_kwargs) -> Inode:
        """:class:`~repro.io.protocol.StorageFacade` spelling of
        :meth:`store_file` (extra facade kwargs are ignored)."""
        return self.store_file(path, data, layout)

    def read_range_sync(self, inode: Inode, offset: int,
                        length: int) -> bytes:
        """Assemble a byte range with no simulated time."""
        if offset + length > inode.size:
            raise PFSError(
                f"read past EOF: {offset}+{length} > {inode.size}")
        parts = []
        for ext in inode.layout.map_range(offset, length):
            ost = self.osts[inode.osts[ext.ost_index]]
            parts.append(
                ost.read_sync(inode.inode_id, ext.object_offset, ext.length))
        return b"".join(parts)

    def read_file_sync(self, path: str) -> bytes:
        inode = self.mds.lookup(path)
        return self.read_range_sync(inode, 0, inode.size)

    def unlink(self, path: str) -> None:
        inode = self.mds.unlink(path)
        for ost_index in inode.osts:
            self.osts[ost_index].drop_object(inode.inode_id)

    def open_sync(self, path: str) -> "SyncFileView":
        """A zero-time file-like view (header parsing in the Data Mapper
        charges its I/O time explicitly through the client)."""
        return SyncFileView(self, self.mds.lookup(path))


class SyncFileView:
    """Seek/read file-like object over a PFS file, without simulated time."""

    def __init__(self, pfs: PFS, inode: Inode):
        self._pfs = pfs
        self.inode = inode
        self._pos = 0

    def seek(self, offset: int, whence: int = 0) -> int:
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = self.inode.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return self._pos

    def tell(self) -> int:
        return self._pos

    def read(self, length: int = -1) -> bytes:
        if length < 0:
            length = self.inode.size - self._pos
        length = max(0, min(length, self.inode.size - self._pos))
        if length == 0:
            return b""
        data = self._pfs.read_range_sync(self.inode, self._pos, length)
        self._pos += length
        return data
