"""Stripe layout arithmetic.

A file striped with ``stripe_size`` S over ``stripe_count`` N OSTs places
byte ``b`` on OST ``(b // S) % N`` (relative to the file's starting OST),
at object offset ``(b // (S*N)) * S + b % S`` — standard Lustre RAID-0
round-robin placement.

:class:`Extent` is re-exported from its canonical home in
:mod:`repro.io.plan` (the unified data plane shares one extent model
across backends).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.plan import Extent

__all__ = ["Extent", "StripeLayout"]


@dataclass(frozen=True)
class StripeLayout:
    """Striping parameters for one file."""

    stripe_size: int = 1024 * 1024
    stripe_count: int = 1

    def __post_init__(self):
        if self.stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")
        if self.stripe_count < 1:
            raise ValueError("stripe_count must be >= 1")

    def map_range(self, offset: int, length: int) -> list[Extent]:
        """Split a logical byte range into per-OST extents, in file order."""
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be >= 0")
        extents: list[Extent] = []
        pos = offset
        end = offset + length
        while pos < end:
            stripe_index = pos // self.stripe_size
            within = pos % self.stripe_size
            run = min(self.stripe_size - within, end - pos)
            ost = stripe_index % self.stripe_count
            obj_off = (stripe_index // self.stripe_count) * self.stripe_size \
                + within
            extents.append(Extent(
                ost_index=ost, object_offset=obj_off,
                file_offset=pos, length=run))
            pos += run
        return extents

    def object_length(self, file_size: int, ost_index: int) -> int:
        """Bytes of a ``file_size`` file that land on OST ``ost_index``.

        Closed form — O(1) regardless of file size: round-robin hands
        OST ``k`` one full stripe per whole lap plus one more if the
        partial last lap reaches past it, plus the tail-stripe remainder
        when the tail lands exactly on ``k``.
        """
        if file_size == 0 or not 0 <= ost_index < self.stripe_count:
            return 0
        full, rem = divmod(file_size, self.stripe_size)
        laps, lead = divmod(full, self.stripe_count)
        total = laps * self.stripe_size
        if ost_index < lead:
            total += self.stripe_size
        if ost_index == lead:
            total += rem
        return total
