"""MPI-IO-like access layer over the PFS.

Provides the two read modes Fig. 6 compares:

- **independent** (`read_at`): each rank issues its own requests; small,
  scattered requests each pay a seek and contend on the OSTs.
- **collective** (`read_at_all`): two-phase I/O à la ROMIO — the merged
  request set is partitioned into contiguous *file domains*, one per
  aggregator rank; each aggregator fetches its domain in large coalesced
  runs, then redistributes pieces to the requesting ranks over the
  network.

Function names mirror the C API the paper calls (`MPI_File_open`,
`MPI_File_read_at`, `MPI_File_close`, §IV-E.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.trace import tracer_of
from repro.pfs.client import PFSClient
from repro.pfs.server import Inode, PFSError
from repro.sim import AllOf

__all__ = ["MPIFile", "merge_ranges", "partition_domains"]

Range = tuple[int, int]  # (offset, length)


def merge_ranges(ranges: Sequence[Range]) -> list[Range]:
    """Merge overlapping/adjacent (offset, length) ranges."""
    items = sorted((off, length) for off, length in ranges if length > 0)
    merged: list[list[int]] = []
    for off, length in items:
        if merged and off <= merged[-1][0] + merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], off + length - merged[-1][0])
        else:
            merged.append([off, length])
    return [(off, length) for off, length in merged]


def partition_domains(merged: Sequence[Range],
                      n_domains: int) -> list[list[Range]]:
    """Split merged ranges into ``n_domains`` byte-balanced contiguous
    file domains (ROMIO-style aggregator assignment)."""
    total = sum(length for _off, length in merged)
    if total == 0:
        return [[] for _ in range(n_domains)]
    share = -(-total // n_domains)  # ceil
    domains: list[list[Range]] = [[] for _ in range(n_domains)]
    d = 0
    used = 0
    for off, length in merged:
        pos = off
        remaining = length
        while remaining > 0:
            room = share - used
            if room == 0:
                d += 1
                used = 0
                room = share
            take = min(remaining, room)
            domains[d].append((pos, take))
            pos += take
            remaining -= take
            used += take
    return domains


class MPIFile:
    """An MPI "file handle" shared by a set of ranks (one client each)."""

    def __init__(self, clients: list[PFSClient], path: str,
                 max_inflight: Optional[int] = None):
        if not clients:
            raise PFSError("MPIFile needs at least one rank")
        self.clients = clients
        self.env = clients[0].env
        self.pfs = clients[0].pfs
        self.path = path
        #: per-aggregator bound on in-flight coalesced runs
        #: (None = each client's own default window)
        self.max_inflight = max_inflight
        self._inode: Optional[Inode] = None

    @classmethod
    def open(cls, clients: list[PFSClient], path: str,
             max_inflight: Optional[int] = None) -> "MPIFile":
        """`MPI_File_open` — validates the path eagerly (sync metadata)."""
        handle = cls(clients, path, max_inflight=max_inflight)
        handle._inode = handle.pfs.mds.lookup(path)
        return handle

    @classmethod
    def create(cls, clients: list[PFSClient], path: str,
               layout=None, max_inflight: Optional[int] = None) -> "MPIFile":
        """`MPI_File_open` with MODE_CREATE: new empty file."""
        handle = cls(clients, path, max_inflight=max_inflight)
        handle._inode = handle.pfs.create(path, layout)
        return handle

    @property
    def nranks(self) -> int:
        return len(self.clients)

    @property
    def inode(self) -> Inode:
        if self._inode is None:
            self._inode = self.pfs.mds.lookup(self.path)
        return self._inode

    @property
    def size(self) -> int:
        return self.inode.size

    def close(self) -> None:
        """`MPI_File_close` — drops the cached inode."""
        self._inode = None

    # -- independent ------------------------------------------------------
    def read_at(self, rank: int, offset: int, length: int):
        """`MPI_File_read_at`: independent read by one rank. DES process."""
        with tracer_of(self.env).span(
                "mpi.read_at", cat="mpiio",
                track=f"{self.clients[rank].node.name}.mpi",
                rank=rank, offset=offset, bytes=length):
            data = yield self.env.process(
                self.clients[rank].read(self.path, offset, length))
        return data

    # -- writes -----------------------------------------------------------
    def write_at(self, rank: int, offset: int, data: bytes):
        """`MPI_File_write_at`: independent write by one rank.
        DES process. Extends the file as needed."""
        with tracer_of(self.env).span(
                "mpi.write_at", cat="mpiio",
                track=f"{self.clients[rank].node.name}.mpi",
                rank=rank, offset=offset, bytes=len(data)):
            yield self.env.process(
                self.clients[rank].write(self.path, data, offset=offset))
        self._inode = self.pfs.mds.lookup(self.path)

    def write_at_all(self, requests: Sequence[Optional[tuple[int, bytes]]]):
        """`MPI_File_write_at_all`: two-phase collective write.

        ``requests[r]`` is rank r's (offset, data) or None. Writers'
        payloads are gathered onto byte-balanced aggregators, which then
        issue large coalesced writes — the write-side mirror of
        :meth:`read_at_all`. DES process.
        """
        if len(requests) != self.nranks:
            raise PFSError("one request entry per rank required")
        live = [(rank, off, data) for rank, req in enumerate(requests)
                if req is not None and len(req[1]) > 0
                for off, data in [req]]
        if not live:
            return
        collective = tracer_of(self.env).span(
            "mpi.write_at_all", cat="mpiio", track="mpiio",
            writers=len(live),
            bytes=sum(len(data) for _r, _off, data in live))
        collective.__enter__()
        # Overlapping writes are a data race under MPI semantics.
        spans = sorted((off, off + len(data)) for _r, off, data in live)
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(spans, spans[1:]):
            if lo_b < hi_a:
                raise PFSError("overlapping collective writes")

        merged = merge_ranges([(off, len(data)) for _r, off, data in live])
        domains = partition_domains(merged, self.nranks)

        # Phase 1: ship each writer's overlap with each domain to the
        # domain's aggregator.
        payloads: dict[int, list[tuple[int, bytes]]] = {}
        shuffles = []
        for agg_rank, domain in enumerate(domains):
            for d_off, d_len in domain:
                d_end = d_off + d_len
                for w_rank, w_off, w_data in live:
                    lo = max(d_off, w_off)
                    hi = min(d_end, w_off + len(w_data))
                    if lo >= hi:
                        continue
                    piece = w_data[lo - w_off:hi - w_off]
                    payloads.setdefault(agg_rank, []).append((lo, piece))
                    if w_rank != agg_rank:
                        shuffles.append(self.pfs.network.transfer(
                            self.clients[w_rank].node,
                            self.clients[agg_rank].node, len(piece)))
        if shuffles:
            yield AllOf(self.env, shuffles)

        # Phase 2: aggregators issue large contiguous writes in parallel.
        writers = []
        for agg_rank, pieces in payloads.items():
            pieces.sort()
            cursor = 0
            runs: list[tuple[int, bytes]] = []
            for off, piece in pieces:
                if runs and runs[-1][0] + len(runs[-1][1]) == off:
                    runs[-1] = (runs[-1][0], runs[-1][1] + piece)
                else:
                    runs.append((off, piece))
                cursor = off + len(piece)
            del cursor
            for off, blob in runs:
                writers.append(self.env.process(
                    self.clients[agg_rank].write(
                        self.path, blob, offset=off,
                        max_inflight=self.max_inflight)))
        if writers:
            yield AllOf(self.env, writers)
        self._inode = self.pfs.mds.lookup(self.path)
        collective.__exit__(None, None, None)

    # -- collective -------------------------------------------------------
    def _aggregate(self, rank: int, domain: list[Range], out: dict):
        inode = self.inode
        # read_extents maps logical ranges through the stripe layout
        # itself (the unified data plane), so the domain passes through.
        data = yield self.env.process(
            self.clients[rank].read_extents(
                inode, domain, max_inflight=self.max_inflight))
        # Slice the aggregator's contiguous haul back into its ranges.
        pieces = {}
        cursor = 0
        for off, length in domain:
            pieces[off] = data[cursor:cursor + length]
            cursor += length
        out[rank] = pieces

    def read_at_all(self, requests: Sequence[Optional[Range]]):
        """`MPI_File_read_at_all`: two-phase collective read. DES process.

        ``requests[r]`` is rank r's (offset, length), or None to
        participate without reading. Returns a list of bytes per rank.
        """
        if len(requests) != self.nranks:
            raise PFSError("one request entry per rank required")
        inode = self.inode
        for req in requests:
            if req is not None and req[0] + req[1] > inode.size:
                raise PFSError("collective read past EOF")
        merged = merge_ranges([r for r in requests if r is not None])
        domains = partition_domains(merged, self.nranks)
        collective = tracer_of(self.env).span(
            "mpi.read_at_all", cat="mpiio", track="mpiio",
            readers=sum(1 for r in requests if r is not None),
            bytes=sum(length for _off, length in merged))
        collective.__enter__()

        # Phase 1: aggregators fetch their file domains in parallel.
        hauls: dict[int, dict[int, bytes]] = {}
        aggs = [
            self.env.process(self._aggregate(rank, domain, hauls))
            for rank, domain in enumerate(domains) if domain
        ]
        if aggs:
            yield AllOf(self.env, aggs)

        # Phase 2: redistribute overlaps from aggregators to requesters.
        flat: list[tuple[int, int, int]] = []  # (offset, length, agg_rank)
        for rank, domain in enumerate(domains):
            for off, length in domain:
                flat.append((off, length, rank))
        flat.sort()

        shuffles = []
        results: list[bytes] = [b""] * self.nranks
        assembled: list[list[tuple[int, bytes]]] = [
            [] for _ in range(self.nranks)]
        for rank, req in enumerate(requests):
            if req is None:
                continue
            off, length = req
            end = off + length
            for a_off, a_len, a_rank in flat:
                lo = max(off, a_off)
                hi = min(end, a_off + a_len)
                if lo >= hi:
                    continue
                piece = hauls[a_rank][a_off][lo - a_off:hi - a_off]
                assembled[rank].append((lo, piece))
                if a_rank != rank:
                    shuffles.append(self.pfs.network.transfer(
                        self.clients[a_rank].node,
                        self.clients[rank].node, hi - lo))
        if shuffles:
            yield AllOf(self.env, shuffles)
        for rank, pieces in enumerate(assembled):
            if requests[rank] is not None:
                results[rank] = b"".join(p for _off, p in sorted(pieces))
        collective.__exit__(None, None, None)
        return results
