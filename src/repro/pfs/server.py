"""PFS server side: MDS (metadata), OST (object store), OSS (server node)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.node import Disk, Node
from repro.pfs.layout import StripeLayout
from repro.sim import Environment

__all__ = ["MDS", "OSS", "OST", "Inode", "PFSError"]

#: Simulated cost of one metadata RPC (lookup/create/stat) at the MDS.
METADATA_RPC_LATENCY = 0.0005


class PFSError(Exception):
    """File system level errors (missing paths, bad arguments...)."""


class OST:
    """Object storage target: one disk plus an object byte store.

    Objects are keyed by (inode id); contents are real bytearrays. The
    disk device charges simulated time for every read/write.
    """

    def __init__(self, env: Environment, disk: Disk, index: int):
        self.env = env
        self.disk = disk
        self.index = index
        self._objects: dict[int, bytearray] = {}
        self.failed = False

    def fail(self) -> None:
        """Failure injection: subsequent reads/writes raise PFSError
        until :meth:`recover` (Lustre has no client-visible replication,
        so a failed OST makes its stripes unreadable)."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def ensure_object(self, object_id: int) -> bytearray:
        return self._objects.setdefault(object_id, bytearray())

    def object_bytes(self, object_id: int) -> bytearray:
        try:
            return self._objects[object_id]
        except KeyError:
            raise PFSError(f"OST{self.index}: no object {object_id}") from None

    def has_object(self, object_id: int) -> bool:
        return object_id in self._objects

    def drop_object(self, object_id: int) -> None:
        self._objects.pop(object_id, None)

    def write_sync(self, object_id: int, offset: int, data: bytes) -> None:
        """Store bytes with no simulated time (setup/admin path)."""
        obj = self.ensure_object(object_id)
        end = offset + len(data)
        if len(obj) < end:
            obj.extend(b"\x00" * (end - len(obj)))
        obj[offset:end] = data

    def read_sync(self, object_id: int, offset: int, length: int) -> bytes:
        obj = self.object_bytes(object_id)
        if offset + length > len(obj):
            raise PFSError(
                f"OST{self.index}: short object {object_id} "
                f"({offset}+{length} > {len(obj)})")
        return bytes(obj[offset:offset + length])

    def read(self, object_id: int, offset: int, length: int):
        """Timed read: charges the disk, returns the bytes. DES process."""
        if self.failed:
            raise PFSError(f"OST{self.index} has failed")
        data = self.read_sync(object_id, offset, length)
        yield self.disk.read(length)
        return data

    def write(self, object_id: int, offset: int, data: bytes):
        """Timed write. DES process."""
        if self.failed:
            raise PFSError(f"OST{self.index} has failed")
        yield self.disk.write(len(data))
        self.write_sync(object_id, offset, data)


class OSS:
    """Object storage server: a storage node fronting several OSTs."""

    def __init__(self, env: Environment, node: Node,
                 ost_start_index: int = 0,
                 n_osts: Optional[int] = None):
        self.env = env
        self.node = node
        n = n_osts if n_osts is not None else len(node.disks)
        if n > len(node.disks):
            raise PFSError(
                f"{node.name}: {n} OSTs requested, {len(node.disks)} disks")
        self.osts = [
            OST(env, node.disks[i], ost_start_index + i) for i in range(n)
        ]


@dataclass
class Inode:
    """Metadata record for one file."""

    inode_id: int
    path: str
    layout: StripeLayout
    osts: list[int] = field(default_factory=list)  # global OST indices
    size: int = 0


class MDS:
    """Metadata server: namespace and inode table.

    Runs on a dedicated storage node (the paper uses one MGS + one MDS +
    OSS nodes); every namespace operation costs one metadata RPC.
    """

    def __init__(self, env: Environment, node: Node):
        self.env = env
        self.node = node
        self._namespace: dict[str, Inode] = {}
        self._next_inode = 1

    @staticmethod
    def normalize(path: str) -> str:
        norm = "/" + "/".join(p for p in path.split("/") if p)
        return norm

    def rpc(self):
        """One metadata round trip. DES process."""
        yield self.env.timeout(METADATA_RPC_LATENCY)

    # Synchronous metadata accessors (callers charge rpc() separately so
    # batch operations can amortise round trips, like real clients do).
    def create(self, path: str, layout: StripeLayout,
               osts: list[int]) -> Inode:
        norm = self.normalize(path)
        if norm in self._namespace:
            raise PFSError(f"file exists: {norm}")
        if len(osts) != layout.stripe_count:
            raise PFSError("OST list length != stripe_count")
        inode = Inode(self._next_inode, norm, layout, list(osts))
        self._next_inode += 1
        self._namespace[norm] = inode
        return inode

    def lookup(self, path: str) -> Inode:
        norm = self.normalize(path)
        try:
            return self._namespace[norm]
        except KeyError:
            raise PFSError(f"no such file: {norm}") from None

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._namespace

    def unlink(self, path: str) -> Inode:
        norm = self.normalize(path)
        try:
            return self._namespace.pop(norm)
        except KeyError:
            raise PFSError(f"no such file: {norm}") from None

    def listdir(self, path: str) -> list[str]:
        """All file paths directly under ``path`` (flat namespace model)."""
        prefix = self.normalize(path)
        if prefix != "/":
            prefix += "/"
        seen = []
        for p in self._namespace:
            if p.startswith(prefix):
                rest = p[len(prefix):]
                if "/" not in rest:
                    seen.append(p)
        return sorted(seen)
