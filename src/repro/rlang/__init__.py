"""R-like analysis layer.

The paper drives SciDP through R: map/reduce functions written in R
(`rmr2`), HDFS access (`rhdfs`), SQL over data frames (`sqldf`), and image
plotting (`plot3D::image2D` on a `Cairo` PNG device) — §IV-C/D/E. This
package provides the same workflow in Python:

- :class:`~repro.rlang.frame.DataFrame` — column-oriented data.frame.
- :func:`~repro.rlang.sqldf.sqldf` — SQL queries over data frames,
  lowered through the logical planner (:mod:`~repro.rlang.plan`,
  :mod:`~repro.rlang.optimizer`, :mod:`~repro.rlang.exec`).
- :class:`~repro.rlang.session.SQLSession` — SQL over scinc files on
  the PFS with projection/zone-map pushdown before bytes move.
- :func:`~repro.rlang.plot.image2d` — colormapped 2-D rasterisation.
- :mod:`~repro.rlang.png` — pure-Python PNG encoder (the Cairo stand-in).
- :mod:`~repro.rlang.rmr` — `rmr2`-style MapReduce binding.
- :mod:`~repro.rlang.rhdfs` — `rhdfs`-style storage access.
"""

from repro.rlang.frame import DataFrame, data_frame
from repro.rlang.sqldf import SQLError, parse, sqldf
from repro.rlang.session import ScincTable, SQLSession
from repro.rlang.plot import image2d
from repro.rlang.png import encode_png

__all__ = [
    "DataFrame",
    "SQLError",
    "SQLSession",
    "ScincTable",
    "data_frame",
    "encode_png",
    "image2d",
    "parse",
    "sqldf",
]
