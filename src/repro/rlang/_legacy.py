"""Frozen eager `sqldf` evaluator — the ISSUE-9 twin world.

This is the pre-planner evaluator, kept verbatim so the randomized
pushdown-equivalence suite and the BENCH_sql gate can pin the live
planner (:mod:`repro.rlang.plan` / ``optimizer`` / ``exec``) against the
exact historical semantics at 1e-9. Only :mod:`repro.rlang` itself and
:mod:`repro.bench` may import it (layering lint, "frozen sqldf
evaluator"); everyone else uses :func:`repro.rlang.sqldf`.

"It converts the SQL queries into operations upon R data frames since R
data frames are similar as tables." Supported surface:

    SELECT [DISTINCT] expr [AS alias], ... | *
    FROM <frame> [JOIN <frame> USING (col, ...)] ...
    [WHERE predicate]
    [GROUP BY col, ...]
    [HAVING predicate]
    [ORDER BY expr [ASC|DESC], ...]
    [LIMIT n]

Expressions: column refs, numeric/string literals, arithmetic
(+ - * / %), comparisons (= != <> < <= > >=), AND/OR/NOT, parentheses,
[NOT] IN (...), [NOT] BETWEEN ... AND ..., [NOT] LIKE 'pat%', and the
aggregates COUNT(*|expr), SUM, AVG, MIN, MAX. Everything is evaluated
vectorised over NumPy columns; joins are hash equi-joins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional, Union

import numpy as np

from repro.rlang.frame import DataFrame

__all__ = ["legacy_sqldf"]


class SQLError(Exception):
    """Lex, parse, or execution errors."""


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?
      |\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|%|\(|\)|,)
""", re.VERBOSE)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "AS", "AND", "OR", "NOT", "ASC", "DESC", "IN",
    "DISTINCT", "BETWEEN", "LIKE", "JOIN", "USING",
}

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass
class _Token:
    kind: str   # "number" | "string" | "ident" | "keyword" | "op"
    value: Any


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SQLError(f"bad character {sql[pos]!r} at position {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "number":
            value = float(text) if any(c in text for c in ".eE") \
                else int(text)
            tokens.append(_Token("number", value))
        elif match.lastgroup == "string":
            tokens.append(_Token("string", text[1:-1].replace("''", "'")))
        elif match.lastgroup == "ident":
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("keyword", upper))
            else:
                tokens.append(_Token("ident", text))
        else:
            tokens.append(_Token("op", text))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclass
class Column:
    name: str


@dataclass
class Literal:
    value: Any


@dataclass
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class UnaryOp:
    op: str  # "NOT" | "-"
    operand: "Expr"


@dataclass
class Aggregate:
    func: str
    arg: Optional["Expr"]  # None for COUNT(*)


@dataclass
class InList:
    expr: "Expr"
    options: list[Any]
    negated: bool = False


@dataclass
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass
class Like:
    expr: "Expr"
    pattern: str            # SQL pattern with % and _
    negated: bool = False


Expr = Union[Column, Literal, BinOp, UnaryOp, Aggregate, InList,
             Between, Like]


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str]


@dataclass
class Join:
    table: str
    using: list[str]


@dataclass
class Query:
    items: list[SelectItem]        # empty means SELECT *
    star: bool
    table: str
    joins: list[Join] = field(default_factory=list)
    distinct: bool = False
    where: Optional[Expr] = None
    group_by: list[str] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: Optional[int] = None


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SQLError("unexpected end of query")
        self.pos += 1
        return token

    def accept(self, kind: str, value: Any = None) -> Optional[_Token]:
        token = self.peek()
        if token and token.kind == kind and (
                value is None or token.value == value):
            self.pos += 1
            return token
        return None

    def expect(self, kind: str, value: Any = None) -> _Token:
        token = self.accept(kind, value)
        if token is None:
            have = self.peek()
            raise SQLError(
                f"expected {value or kind}, got "
                f"{have.value if have else 'end of query'!r}")
        return token

    # -- grammar --------------------------------------------------------
    def parse(self) -> Query:
        self.expect("keyword", "SELECT")
        distinct = bool(self.accept("keyword", "DISTINCT"))
        star = False
        items: list[SelectItem] = []
        if self.accept("op", "*"):
            star = True
        else:
            items.append(self.select_item())
            while self.accept("op", ","):
                items.append(self.select_item())
        self.expect("keyword", "FROM")
        table = self.expect("ident").value
        query = Query(items=items, star=star, table=table,
                      distinct=distinct)
        while self.accept("keyword", "JOIN"):
            join_table = self.expect("ident").value
            self.expect("keyword", "USING")
            self.expect("op", "(")
            using = [self.expect("ident").value]
            while self.accept("op", ","):
                using.append(self.expect("ident").value)
            self.expect("op", ")")
            query.joins.append(Join(join_table, using))
        if self.accept("keyword", "WHERE"):
            query.where = self.expr()
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            query.group_by.append(self.expect("ident").value)
            while self.accept("op", ","):
                query.group_by.append(self.expect("ident").value)
        if self.accept("keyword", "HAVING"):
            query.having = self.expr()
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            query.order_by.append(self.order_item())
            while self.accept("op", ","):
                query.order_by.append(self.order_item())
        if self.accept("keyword", "LIMIT"):
            token = self.expect("number")
            if not isinstance(token.value, int) or token.value < 0:
                raise SQLError("LIMIT must be a non-negative integer")
            query.limit = token.value
        if self.peek() is not None:
            raise SQLError(f"trailing input: {self.peek().value!r}")
        return query

    def select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").value
        else:
            maybe = self.peek()
            if maybe and maybe.kind == "ident":
                alias = self.next().value
        return SelectItem(expr, alias)

    def order_item(self) -> tuple[Expr, bool]:
        expr = self.expr()
        desc = False
        if self.accept("keyword", "DESC"):
            desc = True
        else:
            self.accept("keyword", "ASC")
        return expr, desc

    # expression precedence: OR < AND < NOT < comparison < add < mul < unary
    def expr(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.accept("keyword", "OR"):
            left = BinOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.accept("keyword", "AND"):
            left = BinOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.accept("keyword", "NOT"):
            return UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> Expr:
        left = self.additive()
        token = self.peek()
        if token and token.kind == "op" and token.value in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.next().value
            if op == "<>":
                op = "!="
            return BinOp(op, left, self.additive())
        if token and token.kind == "keyword" and token.value in (
                "IN", "NOT", "BETWEEN", "LIKE"):
            negated = False
            if self.accept("keyword", "NOT"):
                negated = True
            if self.accept("keyword", "BETWEEN"):
                low = self.additive()
                self.expect("keyword", "AND")
                high = self.additive()
                return Between(left, low, high, negated)
            if self.accept("keyword", "LIKE"):
                pattern = self.next()
                if pattern.kind != "string":
                    raise SQLError("LIKE needs a string pattern")
                return Like(left, pattern.value, negated)
            self.expect("keyword", "IN")
            self.expect("op", "(")
            options = [self.literal_value()]
            while self.accept("op", ","):
                options.append(self.literal_value())
            self.expect("op", ")")
            return InList(left, options, negated)
        return left

    def literal_value(self) -> Any:
        token = self.next()
        if token.kind in ("number", "string"):
            return token.value
        raise SQLError(f"expected literal in IN list, got {token.value!r}")

    def additive(self) -> Expr:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.value in ("+", "-"):
                op = self.next().value
                left = BinOp(op, left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> Expr:
        left = self.unary()
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.value in (
                    "*", "/", "%"):
                op = self.next().value
                left = BinOp(op, left, self.unary())
            else:
                return left

    def unary(self) -> Expr:
        if self.accept("op", "-"):
            return UnaryOp("-", self.unary())
        if self.accept("op", "+"):
            return self.unary()
        return self.primary()

    def primary(self) -> Expr:
        token = self.next()
        if token.kind == "number" or token.kind == "string":
            return Literal(token.value)
        if token.kind == "op" and token.value == "(":
            inner = self.expr()
            self.expect("op", ")")
            return inner
        if token.kind == "ident":
            name = token.value
            if name.upper() in _AGGREGATES and self.accept("op", "("):
                if self.accept("op", "*"):
                    self.expect("op", ")")
                    if name.upper() != "COUNT":
                        raise SQLError(f"{name}(*) is not valid")
                    return Aggregate("COUNT", None)
                arg = self.expr()
                self.expect("op", ")")
                return Aggregate(name.upper(), arg)
            return Column(name)
        raise SQLError(f"unexpected token {token.value!r}")


# --------------------------------------------------------------------------
# Executor
# --------------------------------------------------------------------------

def _has_aggregate(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, BinOp):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, (UnaryOp,)):
        return _has_aggregate(expr.operand)
    if isinstance(expr, (InList, Between, Like)):
        return _has_aggregate(expr.expr)
    return False


def _like_to_mask(values: np.ndarray, pattern: str) -> np.ndarray:
    """SQL LIKE: % = any run, _ = one char. Anchored full match."""
    import re as _re
    regex = _re.compile(
        "".join(".*" if ch == "%" else "." if ch == "_"
                else _re.escape(ch) for ch in pattern) + r"\Z")
    return np.array(
        [bool(regex.match(str(v))) for v in values], dtype=bool)


def _eval(expr: Expr, frame: DataFrame, n: int) -> np.ndarray:
    """Evaluate a non-aggregate expression to a length-n array."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return np.repeat(np.array([expr.value], dtype=object), n)
        return np.full(n, expr.value)
    if isinstance(expr, Column):
        return frame[expr.name]
    if isinstance(expr, UnaryOp):
        value = _eval(expr.operand, frame, n)
        if expr.op == "NOT":
            return ~value.astype(bool)
        return -value
    if isinstance(expr, InList):
        value = _eval(expr.expr, frame, n)
        mask = np.zeros(n, dtype=bool)
        for option in expr.options:
            mask |= (value == option)
        return ~mask if expr.negated else mask
    if isinstance(expr, Between):
        value = _eval(expr.expr, frame, n)
        low = _eval(expr.low, frame, n)
        high = _eval(expr.high, frame, n)
        mask = (value >= low) & (value <= high)
        return ~mask if expr.negated else mask
    if isinstance(expr, Like):
        value = _eval(expr.expr, frame, n)
        mask = _like_to_mask(value, expr.pattern)
        return ~mask if expr.negated else mask
    if isinstance(expr, BinOp):
        left = _eval(expr.left, frame, n)
        right = _eval(expr.right, frame, n)
        op = expr.op
        if op == "AND":
            return left.astype(bool) & right.astype(bool)
        if op == "OR":
            return left.astype(bool) | right.astype(bool)
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
        raise SQLError(f"unknown operator {op!r}")  # pragma: no cover
    if isinstance(expr, Aggregate):
        raise SQLError("aggregate used outside an aggregating context")
    raise SQLError(f"cannot evaluate {expr!r}")  # pragma: no cover


def _eval_aggregate(expr: Expr, frame: DataFrame, n: int) -> Any:
    """Evaluate an expression that may contain aggregates to a scalar."""
    if isinstance(expr, Aggregate):
        if expr.func == "COUNT" and expr.arg is None:
            return n
        values = _eval(expr.arg, frame, n)
        if n == 0:
            return 0 if expr.func == "COUNT" else float("nan")
        if expr.func == "COUNT":
            return int(len(values))
        if expr.func == "SUM":
            return values.sum()
        if expr.func == "AVG":
            return values.mean()
        if expr.func == "MIN":
            return values.min()
        if expr.func == "MAX":
            return values.max()
        raise SQLError(f"unknown aggregate {expr.func}")  # pragma: no cover
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        # A bare column in an aggregate context = the group key value.
        values = frame[expr.name]
        if len(values) == 0:
            return None
        return values[0]
    if isinstance(expr, UnaryOp):
        value = _eval_aggregate(expr.operand, frame, n)
        return (not value) if expr.op == "NOT" else -value
    if isinstance(expr, BinOp):
        left = _eval_aggregate(expr.left, frame, n)
        right = _eval_aggregate(expr.right, frame, n)
        return _eval(BinOp(expr.op, Literal(left), Literal(right)),
                     DataFrame(), 1)[0]
    raise SQLError(f"cannot aggregate {expr!r}")  # pragma: no cover


def _item_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, Column):
        return item.expr.name
    if isinstance(item.expr, Aggregate):
        arg = item.expr.arg.name if isinstance(item.expr.arg, Column) \
            else ("*" if item.expr.arg is None else "expr")
        return f"{item.expr.func.lower()}_{arg}"
    return f"col{index}"


def _project_plain(query: Query, frame: DataFrame) -> DataFrame:
    if query.star:
        return frame
    out = DataFrame()
    for i, item in enumerate(query.items):
        out[_item_name(item, i)] = _eval(item.expr, frame, frame.nrow)
    return out


def _hash_join(left: DataFrame, right: DataFrame,
               using: list[str]) -> DataFrame:
    """Inner equi-join on shared columns (``JOIN ... USING (cols)``).

    Result columns: the key columns once, then the remaining columns of
    each side; non-key name collisions are an error (no qualifiers in
    this dialect).
    """
    for key in using:
        if key not in left or key not in right:
            raise SQLError(f"USING column {key!r} missing from a side")
    left_rest = [c for c in left.names if c not in using]
    right_rest = [c for c in right.names if c not in using]
    clash = set(left_rest) & set(right_rest)
    if clash:
        raise SQLError(
            f"ambiguous non-key columns in join: {sorted(clash)}")

    index: dict[tuple, list[int]] = {}
    right_keys = [right[k] for k in using]
    for j in range(right.nrow):
        index.setdefault(
            tuple(col[j] for col in right_keys), []).append(j)

    left_rows: list[int] = []
    right_rows: list[int] = []
    left_keys = [left[k] for k in using]
    for i in range(left.nrow):
        for j in index.get(tuple(col[i] for col in left_keys), ()):
            left_rows.append(i)
            right_rows.append(j)

    li = np.array(left_rows, dtype=np.int64)
    ri = np.array(right_rows, dtype=np.int64)
    out = DataFrame()
    for key in using:
        out[key] = left[key][li] if len(li) else left[key][:0]
    for name in left_rest:
        out[name] = left[name][li] if len(li) else left[name][:0]
    for name in right_rest:
        out[name] = right[name][ri] if len(ri) else right[name][:0]
    return out


def _distinct_rows(frame: DataFrame) -> DataFrame:
    """Drop duplicate rows, keeping the first occurrence."""
    seen: set[tuple] = set()
    keep: list[int] = []
    columns = [frame[name] for name in frame.names]
    for i in range(frame.nrow):
        row = tuple(col[i] for col in columns)
        if row not in seen:
            seen.add(row)
            keep.append(i)
    return frame.subset(np.array(keep, dtype=np.int64))


def _group_frames(frame: DataFrame,
                  keys: list[str]) -> list[tuple[tuple, DataFrame]]:
    if frame.nrow == 0:
        return []
    columns = [frame[k] for k in keys]
    seen: dict[tuple, list[int]] = {}
    for i in range(frame.nrow):
        key = tuple(col[i] for col in columns)
        seen.setdefault(key, []).append(i)
    return [(key, frame.subset(np.array(rows)))
            for key, rows in seen.items()]


def _project_grouped(query: Query, frame: DataFrame) -> DataFrame:
    if query.star:
        raise SQLError("SELECT * cannot be combined with aggregation")
    groups = _group_frames(frame, query.group_by) if query.group_by \
        else [((), frame)]
    if query.having is not None:
        groups = [
            (key, grp) for key, grp in groups
            if bool(_eval_aggregate(query.having, grp, grp.nrow))
        ]
    rows: list[list[Any]] = []
    names = [_item_name(item, i) for i, item in enumerate(query.items)]
    for _key, grp in groups:
        rows.append([
            _eval_aggregate(item.expr, grp, grp.nrow)
            for item in query.items
        ])
    out = DataFrame()
    for j, name in enumerate(names):
        out[name] = np.array([row[j] for row in rows]) if rows \
            else np.array([])
    return out


def legacy_sqldf(sql: str, frames: dict[str, DataFrame]) -> DataFrame:
    """Run ``sql`` against the named data frames; returns a DataFrame.

    The frozen eager pipeline: join left-deep, filter, then either the
    aggregate branch (project, order by output column) or the plain
    branch (order on the source frame, project, distinct), then LIMIT.
    """
    query = _Parser(_tokenize(sql)).parse()
    try:
        frame = frames[query.table]
    except KeyError:
        raise SQLError(
            f"unknown table {query.table!r}; have {sorted(frames)}"
        ) from None
    for join in query.joins:
        try:
            right = frames[join.table]
        except KeyError:
            raise SQLError(
                f"unknown table {join.table!r}; have {sorted(frames)}"
            ) from None
        frame = _hash_join(frame, right, join.using)

    if query.where is not None:
        mask = _eval(query.where, frame, frame.nrow)
        frame = frame.subset(np.asarray(mask, dtype=bool))

    aggregating = query.group_by or any(
        _has_aggregate(item.expr) for item in query.items)
    if aggregating:
        if query.distinct:
            raise SQLError(
                "SELECT DISTINCT cannot be combined with aggregation")
        # ORDER BY for aggregate queries references output columns, so
        # project first, then order.
        result = _project_grouped(query, frame)
        for expr, desc in reversed(query.order_by):
            if not isinstance(expr, Column):
                raise SQLError(
                    "ORDER BY on aggregate queries must name an output "
                    "column")
            result = result.order_by(expr.name, decreasing=desc)
    else:
        # Order on the source frame (expressions allowed), then project.
        # A bare ORDER BY name that is a projection alias rather than a
        # source column resolves to the aliased expression.
        aliases = {
            _item_name(item, i): item.expr
            for i, item in enumerate(query.items)
        }
        ordered = frame
        for expr, desc in reversed(query.order_by):
            if isinstance(expr, Column) and expr.name not in frame \
                    and expr.name in aliases:
                expr = aliases[expr.name]
            keys = _eval(expr, ordered, ordered.nrow)
            order = np.argsort(keys, kind="stable")
            if desc:
                order = order[::-1]
            ordered = ordered.subset(order)
        result = _project_plain(query, ordered)
        if query.distinct:
            result = _distinct_rows(result)

    if query.limit is not None:
        result = result.head(query.limit)
    return result
