"""Animation assembly: a frame series along one dimension → animated GIF.

§II-A: "The visual outputs are usually animations which consist of a
series of images generated along a specific dimension." Fields are
normalised over the whole series (so frames are comparable), mapped to a
256-entry colormap palette, and LZW-encoded — real bytes, playable in
any browser.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.rlang.colormap import apply_colormap
from repro.rlang.gif import encode_gif
from repro.rlang.plot import resize_nearest

__all__ = ["animate_fields", "colormap_palette"]


def colormap_palette(name: str = "jet") -> np.ndarray:
    """The colormap sampled at 256 levels as a GIF palette."""
    ramp = np.linspace(0.0, 1.0, 256)
    return apply_colormap(ramp, name)


def animate_fields(fields: Sequence[np.ndarray],
                   resolution: tuple[int, int] = (96, 96),
                   colormap: str = "jet",
                   delay_cs: int = 20,
                   vmin: Optional[float] = None,
                   vmax: Optional[float] = None) -> bytes:
    """Encode a series of 2-D fields as an animated GIF.

    Normalisation spans the whole series so colour is comparable across
    frames (what a time animation of one variable needs).
    """
    if not fields:
        raise ValueError("need at least one field")
    stack = [np.asarray(f, dtype=np.float64) for f in fields]
    for field in stack:
        if field.ndim != 2:
            raise ValueError("fields must be 2-D")
    lo = min(np.nanmin(f) for f in stack) if vmin is None else vmin
    hi = max(np.nanmax(f) for f in stack) if vmax is None else vmax
    span = hi - lo
    height, width = resolution
    frames = []
    for field in stack:
        normalised = (field - lo) / span if span > 0 \
            else np.zeros_like(field)
        resampled = resize_nearest(normalised, height, width)
        index = np.clip(np.nan_to_num(resampled, nan=0.0), 0.0, 1.0)
        frames.append(np.round(index * 255).astype(np.uint8))
    return encode_gif(frames, colormap_palette(colormap),
                      delay_cs=delay_cs)
