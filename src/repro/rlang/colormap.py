"""Colormaps for 2-D field plotting.

`plot3D::image2D` defaults to a jet-like ramp; we provide ``jet`` plus a
perceptually friendlier ``viridis``-like alternative, both as piecewise
linear interpolations evaluated vectorised in NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["apply_colormap", "colormap_names"]

# Anchor colours (position, R, G, B) in [0, 1].
_MAPS: dict[str, list[tuple[float, float, float, float]]] = {
    "jet": [
        (0.000, 0.0, 0.0, 0.5),
        (0.125, 0.0, 0.0, 1.0),
        (0.375, 0.0, 1.0, 1.0),
        (0.625, 1.0, 1.0, 0.0),
        (0.875, 1.0, 0.0, 0.0),
        (1.000, 0.5, 0.0, 0.0),
    ],
    "viridis": [
        (0.00, 0.267, 0.005, 0.329),
        (0.25, 0.229, 0.322, 0.546),
        (0.50, 0.128, 0.567, 0.551),
        (0.75, 0.369, 0.789, 0.383),
        (1.00, 0.993, 0.906, 0.144),
    ],
    "greys": [
        (0.0, 0.0, 0.0, 0.0),
        (1.0, 1.0, 1.0, 1.0),
    ],
}


def colormap_names() -> list[str]:
    return sorted(_MAPS)


def apply_colormap(values: np.ndarray, name: str = "jet") -> np.ndarray:
    """Map values in [0, 1] to uint8 RGB. NaNs map to black."""
    try:
        anchors = _MAPS[name]
    except KeyError:
        raise ValueError(
            f"unknown colormap {name!r}; have {colormap_names()}") from None
    v = np.asarray(values, dtype=np.float64)
    nan_mask = np.isnan(v)
    v = np.clip(np.nan_to_num(v, nan=0.0), 0.0, 1.0)
    positions = np.array([a[0] for a in anchors])
    out = np.empty(v.shape + (3,), dtype=np.uint8)
    for channel in range(3):
        ramp = np.array([a[channel + 1] for a in anchors])
        out[..., channel] = np.round(
            np.interp(v, positions, ramp) * 255).astype(np.uint8)
    out[nan_mask] = 0
    return out
