"""Physical execution of logical plans over DataFrames (ISSUE 9).

The executor reuses the vectorized expression kernels of
:mod:`repro.rlang.sqldf` (``_eval`` / ``_eval_aggregate`` / join /
distinct helpers) so the planner path is operation-for-operation the
frozen eager evaluator — the randomized equivalence suite pins the two
worlds to identical frames. What the planner adds on top:

- scans are materialized through a ``resolve`` callback, so the same
  plan runs over in-memory frames (:func:`run_query`) or over
  SciDP-backed tables whose scan applies projection/zone-map pruning
  *before* bytes move (:mod:`repro.rlang.session`);
- GROUP BY and ORDER BY names resolve through SELECT aliases;
- unknown-column errors are :class:`SQLError` and list the available
  columns instead of surfacing a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.rlang import optimizer as _opt
from repro.rlang.frame import DataFrame
from repro.rlang.plan import (
    Aggregate_,
    Distinct,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    SortOutput,
    SortSource,
    lower,
    plan_scans,
    query_columns,
    referenced_columns,
)
from repro.rlang.sqldf import (
    Column,
    Expr,
    Query,
    SQLError,
    _distinct_rows,
    _eval,
    _eval_aggregate,
    _group_frames,
    _has_aggregate,
    _hash_join,
    _item_name,
)

__all__ = ["execute", "frame_scan", "plan_query", "run_query"]


def _eval_cols(expr: Expr, frame: DataFrame, n: int) -> np.ndarray:
    """``_eval`` with unknown columns surfaced as SQLError + listing."""
    try:
        return _eval(expr, frame, n)
    except KeyError as exc:
        raise SQLError(f"unknown column: {exc.args[0]}") from None


def _eval_aggregate_cols(expr: Expr, frame: DataFrame, n: int) -> Any:
    try:
        return _eval_aggregate(expr, frame, n)
    except KeyError as exc:
        raise SQLError(f"unknown column: {exc.args[0]}") from None


def frame_scan(frame: DataFrame, columns: Optional[list[str]],
               predicate: Optional[Expr]) -> DataFrame:
    """Materialize one in-memory scan: pushed predicate, then pushed
    projection. Row order is the frame's own, so later plan stages see
    exactly the rows the unoptimized plan would, minus excluded ones."""
    out = frame
    if predicate is not None:
        mask = _eval_cols(predicate, out, out.nrow)
        out = out.subset(np.asarray(mask, dtype=bool))
    if columns is not None:
        out = out.select(columns)
    return out


def _hash_join_build_left(left: DataFrame, right: DataFrame,
                          using: list[str]) -> DataFrame:
    """Broadcast-style join building the *left* side's hash index.

    Emits exactly the pair order of :func:`~repro.rlang.sqldf._hash_join`
    (left-major, right insertion order within a key), so the cost-model's
    build-side choice can never change results.
    """
    for key in using:
        if key not in left or key not in right:
            raise SQLError(f"USING column {key!r} missing from a side")
    left_rest = [c for c in left.names if c not in using]
    right_rest = [c for c in right.names if c not in using]
    clash = set(left_rest) & set(right_rest)
    if clash:
        raise SQLError(
            f"ambiguous non-key columns in join: {sorted(clash)}")

    index: dict[tuple, list[int]] = {}
    left_keys = [left[k] for k in using]
    for i in range(left.nrow):
        index.setdefault(
            tuple(col[i] for col in left_keys), []).append(i)

    matches: dict[int, list[int]] = {}
    right_keys = [right[k] for k in using]
    for j in range(right.nrow):
        for i in index.get(tuple(col[j] for col in right_keys), ()):
            matches.setdefault(i, []).append(j)

    left_rows: list[int] = []
    right_rows: list[int] = []
    for i in range(left.nrow):
        for j in matches.get(i, ()):
            left_rows.append(i)
            right_rows.append(j)

    li = np.array(left_rows, dtype=np.int64)
    ri = np.array(right_rows, dtype=np.int64)
    out = DataFrame()
    for key in using:
        out[key] = left[key][li] if len(li) else left[key][:0]
    for name in left_rest:
        out[name] = left[name][li] if len(li) else left[name][:0]
    for name in right_rest:
        out[name] = right[name][ri] if len(ri) else right[name][:0]
    return out


def _with_column(frame: DataFrame, name: str,
                 values: np.ndarray) -> DataFrame:
    out = DataFrame()
    for col in frame.names:
        out[col] = frame[col]
    out[name] = values
    return out


def _aggregate(node: Aggregate_, frame: DataFrame) -> DataFrame:
    if node.distinct:
        raise SQLError(
            "SELECT DISTINCT cannot be combined with aggregation")
    if node.star:
        raise SQLError("SELECT * cannot be combined with aggregation")
    aliases = {
        _item_name(item, i): item.expr
        for i, item in enumerate(node.items)
    }
    if node.group_by:
        keys: list[str] = []
        work = frame
        for i, name in enumerate(node.group_by):
            if name in frame:
                keys.append(name)
                continue
            # the ISSUE-9 usability fix: GROUP BY may name a SELECT
            # alias of a non-aggregate expression
            expr = aliases.get(name)
            if expr is None or _has_aggregate(expr):
                raise SQLError(
                    f"unknown column {name!r} in GROUP BY; "
                    f"have {frame.names}")
            hidden = f"__group_{i}__"
            work = _with_column(
                work, hidden, _eval_cols(expr, frame, frame.nrow))
            keys.append(hidden)
        groups = _group_frames(work, keys)
    else:
        groups = [((), frame)]
    if node.having is not None:
        groups = [
            (key, grp) for key, grp in groups
            if bool(_eval_aggregate_cols(node.having, grp, grp.nrow))
        ]
    rows: list[list[Any]] = []
    names = [_item_name(item, i) for i, item in enumerate(node.items)]
    for _key, grp in groups:
        rows.append([
            _eval_aggregate_cols(item.expr, grp, grp.nrow)
            for item in node.items
        ])
    out = DataFrame()
    for j, name in enumerate(names):
        out[name] = np.array([row[j] for row in rows]) if rows \
            else np.array([])
    return out


def execute(root: PlanNode,
            resolve: Callable[[Scan], DataFrame]) -> DataFrame:
    """Run a logical plan; ``resolve`` materializes each Scan node."""
    def run(node: PlanNode) -> DataFrame:
        if isinstance(node, Scan):
            return resolve(node)
        if isinstance(node, Join):
            left = run(node.left)
            right = resolve(node.right)
            if node.build_side == "left" and node.strategy == "broadcast":
                return _hash_join_build_left(left, right, node.using)
            return _hash_join(left, right, node.using)
        if isinstance(node, Filter):
            frame = run(node.child)
            mask = _eval_cols(node.predicate, frame, frame.nrow)
            return frame.subset(np.asarray(mask, dtype=bool))
        if isinstance(node, Aggregate_):
            return _aggregate(node, run(node.child))
        if isinstance(node, SortOutput):
            result = run(node.child)
            for expr, desc in reversed(node.order_by):
                if not isinstance(expr, Column):
                    raise SQLError(
                        "ORDER BY on aggregate queries must name an "
                        "output column")
                try:
                    result = result.order_by(expr.name, decreasing=desc)
                except KeyError as exc:
                    raise SQLError(
                        f"unknown column: {exc.args[0]}") from None
            return result
        if isinstance(node, SortSource):
            ordered = run(node.child)
            aliases = {
                _item_name(item, i): item.expr
                for i, item in enumerate(node.items)
            }
            for expr, desc in reversed(node.order_by):
                if isinstance(expr, Column) and expr.name not in ordered \
                        and expr.name in aliases:
                    expr = aliases[expr.name]
                keys = _eval_cols(expr, ordered, ordered.nrow)
                order = np.argsort(keys, kind="stable")
                if desc:
                    order = order[::-1]
                ordered = ordered.subset(order)
            return ordered
        if isinstance(node, Project):
            frame = run(node.child)
            if node.star:
                return frame
            out = DataFrame()
            for i, item in enumerate(node.items):
                out[_item_name(item, i)] = _eval_cols(
                    item.expr, frame, frame.nrow)
            return out
        if isinstance(node, Distinct):
            return _distinct_rows(run(node.child))
        if isinstance(node, Limit):
            return run(node.child).head(node.n)
        raise SQLError(f"cannot execute {node!r}")  # pragma: no cover

    return run(root)


def _frame_bytes(frame: DataFrame, columns: Optional[list[str]]) -> float:
    names = frame.names if columns is None else columns
    return float(sum(frame[name].nbytes for name in names
                     if name in frame))


def plan_query(query: Query, schemas: dict[str, list[str]],
               estimate: Optional[Callable[[Scan], float]] = None,
               optimize: bool = True,
               broadcast_bytes: float = _opt.BROADCAST_BYTES) -> PlanNode:
    """Lower + validate + (optionally) optimize a parsed query.

    ``schemas`` maps every table the query references to its column
    list. Column references that resolve against no table and no SELECT
    alias raise :class:`SQLError` here, *before* any pushdown prunes the
    scans — so the error can list the real available columns.
    """
    node = lower(query)
    needed, needs_all = query_columns(query)
    if not needs_all:
        available = sorted({c for cols in schemas.values() for c in cols})
        # a SELECT-item alias satisfies a reference only when the
        # aliased expression itself resolves (a bare `SELECT nope` is
        # its own alias and must still error)
        alias_names = {
            _item_name(item, i)
            for i, item in enumerate(query.items)
            if referenced_columns(item.expr) <= set(available)
        }
        for name in sorted(needed - alias_names - set(available)):
            raise SQLError(
                f"unknown column {name!r}; have {available}")
    if optimize:
        node = _opt.optimize(node, query, dict(schemas),
                             estimate=estimate,
                             broadcast_bytes=broadcast_bytes)
    return node


def run_query(query: Query, frames: dict[str, DataFrame],
              optimize: bool = True) -> DataFrame:
    """Plan + execute a parsed query over in-memory frames.

    ``optimize=False`` executes the plain lowered plan — the planner
    twin of the frozen eager evaluator, with no pushdown rewrites.
    """
    tables = {scan.table for scan in plan_scans(lower(query))}
    for name in tables:
        if name not in frames:
            raise SQLError(
                f"unknown table {name!r}; have {sorted(frames)}")
    schemas = {name: list(frames[name].names) for name in tables}

    def estimate(scan: Scan) -> float:
        return _frame_bytes(frames[scan.table], scan.columns)

    node = plan_query(query, schemas, estimate=estimate,
                      optimize=optimize)
    return execute(
        node,
        lambda scan: frame_scan(frames[scan.table], scan.columns,
                                scan.predicate))
