"""Column-oriented data.frame.

Columns are NumPy arrays of equal length; string columns use object
arrays. Supports the operations R users lean on: column access, boolean
subsetting, ordering, head, cbind/rbind — and is the table type the
:mod:`repro.rlang.sqldf` engine queries.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

import numpy as np

__all__ = ["DataFrame", "data_frame"]


def _as_column(values: Any) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"column must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


class DataFrame:
    """An ordered mapping of named, equal-length columns."""

    def __init__(self, columns: Optional[Mapping[str, Any]] = None):
        self._columns: dict[str, np.ndarray] = {}
        self._nrow = 0
        if columns:
            for name, values in columns.items():
                self[name] = values

    # -- shape -------------------------------------------------------------
    @property
    def nrow(self) -> int:
        return self._nrow

    @property
    def ncol(self) -> int:
        return len(self._columns)

    @property
    def names(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._nrow

    # -- columns -----------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self.names}") from None

    def __setitem__(self, name: str, values: Any) -> None:
        col = _as_column(values)
        if self._columns and len(col) != self._nrow:
            if len(col) == 1:  # R-style scalar recycling
                col = np.repeat(col, self._nrow)
            else:
                raise ValueError(
                    f"column {name!r} has {len(col)} rows, frame has "
                    f"{self._nrow}")
        if not self._columns:
            self._nrow = len(col)
        self._columns[name] = col

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def drop(self, name: str) -> "DataFrame":
        out = DataFrame()
        for col, values in self._columns.items():
            if col != name:
                out[col] = values
        return out

    def select(self, names: Iterable[str]) -> "DataFrame":
        out = DataFrame()
        for name in names:
            out[name] = self[name]
        return out

    # -- rows ----------------------------------------------------------------
    def subset(self, mask: Any) -> "DataFrame":
        """Rows where ``mask`` (boolean array or index array) selects."""
        mask = np.asarray(mask)
        out = DataFrame()
        for name, values in self._columns.items():
            out[name] = values[mask]
        return out

    def head(self, n: int = 6) -> "DataFrame":
        return self.subset(np.arange(min(n, self._nrow)))

    def order_by(self, name: str, decreasing: bool = False) -> "DataFrame":
        order = np.argsort(self[name], kind="stable")
        if decreasing:
            order = order[::-1]
        return self.subset(order)

    def row(self, i: int) -> dict[str, Any]:
        return {name: values[i] for name, values in self._columns.items()}

    def iter_rows(self):
        for i in range(self._nrow):
            yield self.row(i)

    # -- combination ----------------------------------------------------------
    def cbind(self, other: "DataFrame") -> "DataFrame":
        out = DataFrame()
        for name, values in self._columns.items():
            out[name] = values
        for name, values in other._columns.items():
            if name in out:
                raise ValueError(f"duplicate column {name!r}")
            out[name] = values
        return out

    def rbind(self, other: "DataFrame") -> "DataFrame":
        if self.ncol == 0:
            return other.copy()
        if other.ncol == 0:
            return self.copy()
        if self.names != other.names:
            raise ValueError(
                f"rbind column mismatch: {self.names} vs {other.names}")
        out = DataFrame()
        for name in self.names:
            out[name] = np.concatenate([self[name], other[name]])
        return out

    def copy(self) -> "DataFrame":
        out = DataFrame()
        for name, values in self._columns.items():
            out[name] = values.copy()
        return out

    # -- conversion -------------------------------------------------------------
    def to_dict(self) -> dict[str, list]:
        return {name: values.tolist()
                for name, values in self._columns.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self.names != other.names or self.nrow != other.nrow:
            return False
        return all(
            np.array_equal(self[n], other[n], equal_nan=False)
            if self[n].dtype.kind not in "fc"
            else np.allclose(self[n], other[n], equal_nan=True)
            for n in self.names)

    def __repr__(self) -> str:  # pragma: no cover
        cols = ", ".join(f"{n}<{v.dtype}>" for n, v in self._columns.items())
        return f"<DataFrame {self._nrow} rows: {cols}>"


def data_frame(**columns: Any) -> DataFrame:
    """R-style constructor: ``data_frame(x=[1,2], y=[3,4])``."""
    return DataFrame(columns)
