"""Pure-Python animated GIF (GIF89a) encoder and decoder.

The paper's visual outputs "are usually animations which consist of a
series of images generated along a specific dimension" (§II-A). This
module produces real, spec-conformant animated GIFs from indexed frames
(the colormap ramp is the palette, so no quantisation is needed), with a
full LZW coder; the decoder exists so tests can prove frame-exact round
trips.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["decode_gif", "encode_gif"]

_HEADER = b"GIF89a"
_MAX_CODE = 4096


# --------------------------------------------------------------------------
# LZW
# --------------------------------------------------------------------------

class _BitWriter:
    """LSB-first bit packer emitting 255-byte GIF sub-blocks."""

    def __init__(self):
        self._bytes = bytearray()
        self._current = 0
        self._nbits = 0

    def write(self, code: int, width: int) -> None:
        self._current |= code << self._nbits
        self._nbits += width
        while self._nbits >= 8:
            self._bytes.append(self._current & 0xFF)
            self._current >>= 8
            self._nbits -= 8

    def finish(self) -> bytes:
        if self._nbits:
            self._bytes.append(self._current & 0xFF)
        out = bytearray()
        for pos in range(0, len(self._bytes), 255):
            chunk = self._bytes[pos:pos + 255]
            out.append(len(chunk))
            out.extend(chunk)
        out.append(0)  # block terminator
        return bytes(out)


def _lzw_encode(data: bytes, min_code_size: int) -> bytes:
    clear = 1 << min_code_size
    eoi = clear + 1
    writer = _BitWriter()

    def reset_table():
        return ({bytes([i]): i for i in range(clear)},
                eoi + 1, min_code_size + 1)

    table, next_code, width = reset_table()
    writer.write(clear, width)
    if not data:
        writer.write(eoi, width)
        return writer.finish()

    w = bytes([data[0]])
    for byte in data[1:]:
        wk = w + bytes([byte])
        if wk in table:
            w = wk
            continue
        writer.write(table[w], width)
        table[wk] = next_code
        next_code += 1
        if next_code == (1 << width) and width < 12:
            width += 1
        if next_code >= _MAX_CODE:
            writer.write(clear, width)
            table, next_code, width = reset_table()
        w = bytes([byte])
    writer.write(table[w], width)
    # The decoder appends one more table entry after the final data code
    # and applies its early width bump; mirror that bump before EOI or the
    # decoder reads EOI one bit wider than we wrote it.
    if next_code == (1 << width) - 1 and width < 12:
        width += 1
    writer.write(eoi, width)
    return writer.finish()


class _BitReader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._current = 0
        self._nbits = 0

    def read(self, width: int) -> int:
        while self._nbits < width:
            if self._pos >= len(self._data):
                raise ValueError("LZW stream truncated")
            self._current |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._current & ((1 << width) - 1)
        self._current >>= width
        self._nbits -= width
        return value


def _lzw_decode(data: bytes, min_code_size: int) -> bytes:
    clear = 1 << min_code_size
    eoi = clear + 1
    reader = _BitReader(data)

    def reset_table():
        return ([bytes([i]) for i in range(clear)] + [b"", b""],
                min_code_size + 1)

    table, width = reset_table()
    out = bytearray()
    prev: bytes | None = None
    while True:
        code = reader.read(width)
        if code == clear:
            table, width = reset_table()
            prev = None
            continue
        if code == eoi:
            return bytes(out)
        if prev is None:
            entry = table[code]
        elif code < len(table):
            entry = table[code]
            table.append(prev + entry[:1])
        elif code == len(table):
            entry = prev + prev[:1]
            table.append(entry)
        else:
            raise ValueError(f"bad LZW code {code}")
        out.extend(entry)
        # The decoder constructs entries one step behind the encoder, so
        # it must widen one entry early to stay code-size synchronized.
        if len(table) == (1 << width) - 1 and width < 12:
            width += 1
        prev = entry


# --------------------------------------------------------------------------
# GIF container
# --------------------------------------------------------------------------

def encode_gif(frames: list[np.ndarray], palette: np.ndarray,
               delay_cs: int = 10, loop: bool = True) -> bytes:
    """Encode indexed frames as an animated GIF.

    ``frames``: uint8 arrays of shape (H, W) holding palette indices.
    ``palette``: (N<=256, 3) uint8 RGB. ``delay_cs``: per-frame delay in
    centiseconds.
    """
    if not frames:
        raise ValueError("need at least one frame")
    palette = np.asarray(palette, dtype=np.uint8)
    if palette.ndim != 2 or palette.shape[1] != 3 or len(palette) > 256:
        raise ValueError("palette must be (N<=256, 3) uint8")
    height, width = frames[0].shape
    for frame in frames:
        frame = np.asarray(frame)
        if frame.shape != (height, width) or frame.dtype != np.uint8:
            raise ValueError("frames must share one (H, W) uint8 shape")
        if frame.max(initial=0) >= len(palette):
            raise ValueError("frame index outside palette")

    # Global color table size: next power of two >= len(palette), >= 2.
    table_bits = max(1, int(np.ceil(np.log2(max(2, len(palette))))))
    table_size = 1 << table_bits
    full_palette = np.zeros((table_size, 3), dtype=np.uint8)
    full_palette[:len(palette)] = palette

    out = bytearray()
    out += _HEADER
    out += struct.pack("<HHBBB", width, height,
                       0x80 | (table_bits - 1), 0, 0)
    out += full_palette.tobytes()
    if loop:
        out += (b"\x21\xff\x0bNETSCAPE2.0"
                b"\x03\x01\x00\x00\x00")  # loop forever
    min_code_size = max(2, table_bits)
    for frame in frames:
        out += b"\x21\xf9\x04\x04" + struct.pack("<H", delay_cs) \
            + b"\x00\x00"  # graphic control: no transparency
        out += b"\x2c" + struct.pack("<HHHHB", 0, 0, width, height, 0)
        out += bytes([min_code_size])
        out += _lzw_encode(np.ascontiguousarray(frame).tobytes(),
                           min_code_size)
    out += b"\x3b"
    return bytes(out)


def decode_gif(data: bytes) -> tuple[list[np.ndarray], np.ndarray]:
    """Decode GIFs produced by :func:`encode_gif`.

    Returns (frames, palette). Supports the features the encoder emits:
    global color table, full-canvas frames, no transparency/interlace.
    """
    if data[:6] not in (b"GIF89a", b"GIF87a"):
        raise ValueError("not a GIF")
    width, height, flags, _bg, _aspect = struct.unpack(
        "<HHBBB", data[6:13])
    pos = 13
    palette = np.zeros((0, 3), dtype=np.uint8)
    if flags & 0x80:
        size = 2 << (flags & 0x07)
        palette = np.frombuffer(
            data[pos:pos + 3 * size], dtype=np.uint8).reshape(size, 3)
        pos += 3 * size

    frames: list[np.ndarray] = []
    while pos < len(data):
        marker = data[pos]
        pos += 1
        if marker == 0x3B:  # trailer
            break
        if marker == 0x21:  # extension: skip sub-blocks
            pos += 1  # label
            while data[pos] != 0:
                pos += 1 + data[pos]
            pos += 1
        elif marker == 0x2C:  # image descriptor
            left, top, fw, fh, local_flags = struct.unpack(
                "<HHHHB", data[pos:pos + 9])
            pos += 9
            if local_flags & 0x80:
                raise ValueError("local color tables not supported")
            min_code_size = data[pos]
            pos += 1
            lzw = bytearray()
            while data[pos] != 0:
                block_len = data[pos]
                lzw += data[pos + 1:pos + 1 + block_len]
                pos += 1 + block_len
            pos += 1
            pixels = _lzw_decode(bytes(lzw), min_code_size)
            frames.append(np.frombuffer(
                pixels, dtype=np.uint8).reshape(fh, fw))
        else:
            raise ValueError(f"unexpected GIF block {marker:#x}")
    return frames, palette
