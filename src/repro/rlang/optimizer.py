"""Rewrite passes over logical plans: projection + predicate pushdown,
interval extraction for zone-map chunk pruning, and the cost-based join
strategy (ISSUE 9).

Soundness rules, because pruning bugs are silent wrong answers:

- **Projection pushdown** keeps a *superset* of every column the query
  can read (items, predicates, join keys, group/having/order, and
  alias-resolved references). ``SELECT *`` disables it.
- **Predicate pushdown** moves a WHERE conjunct to a scan only when
  every column it reads belongs to that table's schema; joins here are
  inner equi-joins, so filtering a side early removes exactly the rows
  the full predicate would have removed after the join, in the same
  relative order (hash joins emit left-major pairs). Conjuncts with
  aggregates or unresolvable columns stay in the residual filter.
- **Interval extraction** (:func:`column_intervals`) only understands
  operators that are *False on NaN* (=, <, <=, >, >=, BETWEEN, IN, and
  AND/OR of those) with one bare column against literals. Everything
  else — NOT, !=, LIKE, arithmetic over the column — returns ``None``
  (unconstrained), so a chunk is only skipped when its zone map *proves*
  no value (NaN included) can satisfy the pushed conjunct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.rlang.plan import (
    Filter,
    Join,
    PlanNode,
    Scan,
    combine_conjuncts,
    conjuncts,
    plan_scans,
    referenced_columns,
)
from repro.rlang.sqldf import (
    Between,
    BinOp,
    Column,
    Expr,
    InList,
    Literal,
    Query,
    _has_aggregate,
)
from repro.rlang.plan import query_columns

__all__ = [
    "BROADCAST_BYTES",
    "Interval",
    "chunk_matches",
    "column_intervals",
    "optimize",
    "scan_constraints",
]

#: build-side byte estimate at or below which a join is annotated as a
#: map-side broadcast hash join rather than a repartition join
BROADCAST_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class Interval:
    """A numeric interval with independent open/closed endpoints."""

    lo: float = -math.inf
    hi: float = math.inf
    lo_open: bool = False
    hi_open: bool = False

    def is_empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def intersect(self, other: "Interval") -> "Interval":
        if other.lo > self.lo or (other.lo == self.lo and other.lo_open):
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open
        if other.hi < self.hi or (other.hi == self.hi and other.hi_open):
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def overlaps_range(self, mn: float, mx: float) -> bool:
        """Does the interval contain any point of the closed [mn, mx]?"""
        if self.hi < mn or (self.hi == mn and self.hi_open):
            return False
        if self.lo > mx or (self.lo == mx and self.lo_open):
            return False
        return True


def _intersect_unions(a: list[Interval],
                      b: list[Interval]) -> list[Interval]:
    out = []
    for x in a:
        for y in b:
            z = x.intersect(y)
            if not z.is_empty():
                out.append(z)
    return out


def _literal_number(expr: Expr) -> Optional[float]:
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return float(expr.value)
    return None


def column_intervals(expr: Expr, column: str) -> Optional[list[Interval]]:
    """The value intervals of ``column`` under which ``expr`` can hold.

    Returns ``None`` when the expression does not constrain the column
    (or uses an operator whose NaN/complement semantics make range
    reasoning unsound). An empty list means the predicate is
    unsatisfiable for any value of the column.
    """
    if isinstance(expr, BinOp) and expr.op == "AND":
        left = column_intervals(expr.left, column)
        right = column_intervals(expr.right, column)
        if left is None:
            return right
        if right is None:
            return left
        return _intersect_unions(left, right)
    if isinstance(expr, BinOp) and expr.op == "OR":
        left = column_intervals(expr.left, column)
        right = column_intervals(expr.right, column)
        if left is None or right is None:
            return None          # one branch unconstrained => anything
        return left + right
    if isinstance(expr, BinOp) and expr.op in ("=", "<", "<=", ">", ">="):
        op = expr.op
        lhs, rhs = expr.left, expr.right
        if not (isinstance(lhs, Column) and lhs.name == column):
            # literal-on-left comparisons flip
            if isinstance(rhs, Column) and rhs.name == column:
                lhs, rhs = rhs, lhs
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                      "=": "="}[op]
            else:
                return None
        lit = _literal_number(rhs)
        if lit is None:
            return None
        if op == "=":
            return [Interval(lit, lit)]
        if op == "<":
            return [Interval(hi=lit, hi_open=True)]
        if op == "<=":
            return [Interval(hi=lit)]
        if op == ">":
            return [Interval(lo=lit, lo_open=True)]
        return [Interval(lo=lit)]
    if isinstance(expr, Between) and not expr.negated:
        if isinstance(expr.expr, Column) and expr.expr.name == column:
            low = _literal_number(expr.low)
            high = _literal_number(expr.high)
            if low is not None and high is not None:
                return [Interval(low, high)]
        return None
    if isinstance(expr, InList) and not expr.negated:
        if isinstance(expr.expr, Column) and expr.expr.name == column:
            points = [float(v) for v in expr.options
                      if isinstance(v, (int, float))
                      and not isinstance(v, bool)]
            if len(points) == len(expr.options):
                return [Interval(p, p) for p in points]
        return None
    return None


def scan_constraints(predicate: Optional[Expr]
                     ) -> dict[str, list[Interval]]:
    """Per-column interval constraints implied by a pushed predicate.

    Only conjuncts referencing exactly one column contribute; multiple
    conjuncts on the same column intersect. Every contributing operator
    is False on NaN, so a chunk whose zone-map range misses all
    intervals — or whose values are all NaN — cannot contain a
    satisfying row.
    """
    out: dict[str, list[Interval]] = {}
    for part in conjuncts(predicate):
        cols = referenced_columns(part)
        if len(cols) != 1:
            continue
        (col,) = cols
        intervals = column_intervals(part, col)
        if intervals is None:
            continue
        if col in out:
            out[col] = _intersect_unions(out[col], intervals)
        else:
            out[col] = intervals
    return out


def chunk_matches(intervals: list[Interval], stats) -> bool:
    """Can a chunk with zone map ``stats=(min, max, count)`` contain a
    row satisfying a constraint? ``stats=None`` (no zone map recorded)
    conservatively matches."""
    if stats is None:
        return True
    mn, mx, count = stats
    if count == 0 or mn is None or mx is None:
        return False             # all NaN: range operators are False
    return any(iv.overlaps_range(mn, mx) for iv in intervals)


# --------------------------------------------------------------------------
# Plan rewrites
# --------------------------------------------------------------------------

def optimize(root: PlanNode, query: Query,
             schemas: dict[str, Optional[list[str]]],
             estimate: Optional[Callable[[Scan], float]] = None,
             broadcast_bytes: float = BROADCAST_BYTES) -> PlanNode:
    """Run the rewrite passes in place and return the root.

    ``schemas`` maps table name -> column list (None = unknown: that
    table gets no pushdown). ``estimate`` maps a (post-pushdown) Scan to
    its byte estimate for the join cost model; None skips the pass.
    """
    scans = plan_scans(root)
    _push_projections(scans, query, schemas)
    root = _push_predicates(root, schemas)
    if estimate is not None:
        _choose_join_strategies(root, estimate, broadcast_bytes)
    return root


def _push_projections(scans: list[Scan], query: Query,
                      schemas: dict[str, Optional[list[str]]]) -> None:
    needed, needs_all = query_columns(query)
    if needs_all:
        return
    for scan in scans:
        schema = schemas.get(scan.table)
        if schema is None:
            continue
        cols = [c for c in schema if c in needed]
        if not cols and schema:
            # a query that reads no columns (SELECT COUNT(*) FROM t,
            # SELECT 1 FROM t) must still see the table's row count,
            # and a zero-column DataFrame has nrow == 0 — keep one
            # column as the row-count carrier
            cols = [schema[0]]
        scan.columns = cols


def _push_predicates(root: PlanNode,
                     schemas: dict[str, Optional[list[str]]]) -> PlanNode:
    if not isinstance(root, (Filter, Join, Scan)):
        child = root.child
        root.child = _push_predicates(child, schemas)
        return root
    if not isinstance(root, Filter):
        return root
    scans = plan_scans(root.child)
    residual: list[Expr] = []
    pushed: dict[int, list[Expr]] = {}
    for part in conjuncts(root.predicate):
        if _has_aggregate(part):
            residual.append(part)
            continue
        cols = referenced_columns(part)
        targets = [
            scan for scan in scans
            if schemas.get(scan.table) is not None
            and cols and cols <= set(schemas[scan.table])
        ]
        if targets:
            # a conjunct on join-key columns lands on every side that
            # has them — inner equi-joins make that sound and prune more
            for scan in targets:
                pushed.setdefault(id(scan), []).append(part)
        else:
            residual.append(part)
    for scan in scans:
        parts = pushed.get(id(scan))
        if parts:
            scan.predicate = combine_conjuncts(parts)
    rest = combine_conjuncts(residual)
    if rest is None:
        return root.child
    root.predicate = rest
    return root


def _join_subtree_bytes(node: PlanNode,
                        estimate: Callable[[Scan], float]) -> float:
    return sum(estimate(scan) for scan in plan_scans(node))


def _choose_join_strategies(root: PlanNode,
                            estimate: Callable[[Scan], float],
                            broadcast_bytes: float) -> None:
    """Annotate each join with broadcast-vs-repartition and build side.

    Both strategies produce byte-identical output (pair order is
    left-major either way); the annotation decides which side's hash
    index is built — the map-side-combine-style broadcast when the
    small side fits — and feeds the session's counters.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            continue
        if isinstance(node, Join):
            left_bytes = _join_subtree_bytes(node.left, estimate)
            right_bytes = estimate(node.right)
            small = min(left_bytes, right_bytes)
            node.strategy = ("broadcast" if small <= broadcast_bytes
                             else "repartition")
            node.build_side = "right" if right_bytes <= left_bytes \
                else "left"
            stack.append(node.left)
            continue
        stack.append(node.child)
