"""Logical query plans for `sqldf` — lowering the AST (ISSUE 9).

:func:`lower` turns a parsed :class:`~repro.rlang.sqldf.Query` into a
tree of logical operators::

    Scan -> [Join]* -> [Filter] -> ( Aggregate -> [SortOutput]
                                   | [SortSource] -> Project -> [Distinct] )
          -> [Limit]

The node order mirrors the frozen eager evaluator exactly — the planner
is a *representation* change; semantics only move when the optimizer
rewrites the tree (projection/predicate pushdown, join strategy), and
those rewrites are proven result-identical by the randomized
equivalence suite. Scans carry the two pushdown slots the optimizer
fills in: ``columns`` (projection pruning — ``None`` = every column)
and ``predicate`` (conjuncts applied at scan time, before the plan's
residual ``Filter``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.rlang.sqldf import (
    Aggregate,
    Between,
    BinOp,
    Column,
    Expr,
    InList,
    Like,
    Query,
    SelectItem,
    UnaryOp,
    _has_aggregate,
    _item_name,
)

__all__ = [
    "Aggregate_",
    "Distinct",
    "Filter",
    "Join",
    "Limit",
    "PlanNode",
    "Project",
    "Scan",
    "SortOutput",
    "SortSource",
    "combine_conjuncts",
    "conjuncts",
    "explain",
    "lower",
    "plan_scans",
    "query_columns",
    "referenced_columns",
]


@dataclass
class Scan:
    """Read one named table.

    ``columns`` is the projection pushed down by the optimizer (None =
    all columns); ``predicate`` is the AND of pushed-down conjuncts,
    applied by the source right after materialization — for chunked
    scientific sources it additionally drives zone-map chunk pruning so
    excluded chunks never leave the PFS.
    """

    table: str
    columns: Optional[list[str]] = None
    predicate: Optional[Expr] = None


@dataclass
class Join:
    """Inner equi-join (``JOIN ... USING``) of ``left`` onto ``right``.

    ``strategy``/``build_side`` are cost-model annotations: broadcast
    hash joins build the small side's index, repartition joins keep the
    legacy right-side build. Either way the output rows are identical
    (left-major pair order); the choice only moves cost accounting.
    """

    left: "PlanNode"
    right: Scan
    using: list[str]
    strategy: str = "hash"      # "hash" | "broadcast" | "repartition"
    build_side: str = "right"


@dataclass
class Filter:
    child: "PlanNode"
    predicate: Expr


@dataclass
class Aggregate_:
    """GROUP BY / aggregate projection.

    ``group_by`` keeps the raw names; the executor resolves each against
    the source frame first and falls back to SELECT aliases (the ISSUE-9
    usability fix) — a name that is neither errors with the available
    columns listed.
    """

    child: "PlanNode"
    items: list[SelectItem]
    group_by: list[str]
    having: Optional[Expr]
    star: bool
    distinct: bool


@dataclass
class SortOutput:
    """ORDER BY over the projected output (the aggregate branch)."""

    child: "PlanNode"
    order_by: list  # [(Expr, desc)]


@dataclass
class SortSource:
    """ORDER BY on the pre-projection source frame (the plain branch);
    bare names resolve through SELECT aliases when absent from the
    source."""

    child: "PlanNode"
    order_by: list  # [(Expr, desc)]
    items: list[SelectItem]


@dataclass
class Project:
    child: "PlanNode"
    items: list[SelectItem]
    star: bool


@dataclass
class Distinct:
    child: "PlanNode"


@dataclass
class Limit:
    child: "PlanNode"
    n: int


PlanNode = Union[Scan, Join, Filter, Aggregate_, SortOutput, SortSource,
                 Project, Distinct, Limit]


def lower(query: Query) -> PlanNode:
    """AST -> logical plan, mirroring the eager evaluation order."""
    node: PlanNode = Scan(query.table)
    for join in query.joins:
        node = Join(node, Scan(join.table), list(join.using))
    if query.where is not None:
        node = Filter(node, query.where)
    aggregating = bool(query.group_by) or any(
        _has_aggregate(item.expr) for item in query.items)
    if aggregating:
        node = Aggregate_(node, query.items, list(query.group_by),
                          query.having, query.star, query.distinct)
        if query.order_by:
            node = SortOutput(node, list(query.order_by))
    else:
        if query.order_by:
            node = SortSource(node, list(query.order_by), query.items)
        node = Project(node, query.items, query.star)
        if query.distinct:
            node = Distinct(node)
    if query.limit is not None:
        node = Limit(node, query.limit)
    return node


# --------------------------------------------------------------------------
# Analyses shared by the optimizer and the executor
# --------------------------------------------------------------------------

def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a left-associated AND tree into its conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def combine_conjuncts(parts: list[Expr]) -> Optional[Expr]:
    """Re-associate conjuncts left-to-right (the parser's AND shape)."""
    if not parts:
        return None
    out = parts[0]
    for part in parts[1:]:
        out = BinOp("AND", out, part)
    return out


def referenced_columns(expr: Optional[Expr],
                       out: Optional[set] = None) -> set:
    """Every column name an expression reads."""
    if out is None:
        out = set()
    if expr is None:
        return out
    if isinstance(expr, Column):
        out.add(expr.name)
    elif isinstance(expr, BinOp):
        referenced_columns(expr.left, out)
        referenced_columns(expr.right, out)
    elif isinstance(expr, UnaryOp):
        referenced_columns(expr.operand, out)
    elif isinstance(expr, (InList, Like)):
        referenced_columns(expr.expr, out)
    elif isinstance(expr, Between):
        referenced_columns(expr.expr, out)
        referenced_columns(expr.low, out)
        referenced_columns(expr.high, out)
    elif isinstance(expr, Aggregate):
        referenced_columns(expr.arg, out)
    return out


def query_columns(query: Query) -> tuple[set, bool]:
    """``(column names a query may read, needs_all)``.

    ``needs_all`` is True for ``SELECT *`` — no projection pruning is
    possible. Names include predicate, join-key, group/having/order and
    alias-resolved references, so any scan keeping a superset of them is
    safe.
    """
    if query.star:
        return set(), True
    needed: set = set()
    aliases = {}
    for i, item in enumerate(query.items):
        referenced_columns(item.expr, needed)
        aliases[_item_name(item, i)] = item.expr
    referenced_columns(query.where, needed)
    referenced_columns(query.having, needed)
    for join in query.joins:
        needed.update(join.using)
    for name in query.group_by:
        needed.add(name)
        if name in aliases:
            referenced_columns(aliases[name], needed)
    for expr, _desc in query.order_by:
        referenced_columns(expr, needed)
        if isinstance(expr, Column) and expr.name in aliases:
            referenced_columns(aliases[expr.name], needed)
    return needed, False


def plan_scans(node: PlanNode) -> list[Scan]:
    """Every Scan in the tree, base table first, join order after."""
    if isinstance(node, Scan):
        return [node]
    if isinstance(node, Join):
        return plan_scans(node.left) + [node.right]
    return plan_scans(node.child)


def explain(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan tree (EXPLAIN-style), for logs and tests."""
    pad = "  " * indent
    if isinstance(node, Scan):
        cols = "*" if node.columns is None else ",".join(node.columns)
        pred = " pushed-predicate" if node.predicate is not None else ""
        return f"{pad}Scan {node.table} [{cols}]{pred}"
    if isinstance(node, Join):
        return (f"{pad}Join using({','.join(node.using)}) "
                f"{node.strategy}/build={node.build_side}\n"
                + explain(node.left, indent + 1) + "\n"
                + explain(node.right, indent + 1))
    label = type(node).__name__.rstrip("_")
    return f"{pad}{label}\n" + explain(node.child, indent + 1)
