"""2-D field plotting: the `plot3D::image2D` stand-in.

``image2d`` rasterises a 2-D array to a colormapped RGB image at a chosen
resolution (the paper renders 1,200×1,200 frames, §V-A), with optional
highlight markers for the "top 10 data points" analysis case (Fig. 9).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.rlang.colormap import apply_colormap
from repro.rlang.png import encode_png

__all__ = ["image2d", "plot_cost_model", "resize_nearest"]


def resize_nearest(field: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resample of a 2-D array to (height, width)."""
    if field.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {field.shape}")
    rows = (np.arange(height) * field.shape[0] // height)
    cols = (np.arange(width) * field.shape[1] // width)
    return field[rows[:, None], cols[None, :]]


def image2d(field: np.ndarray,
            resolution: tuple[int, int] = (1200, 1200),
            colormap: str = "jet",
            vmin: Optional[float] = None,
            vmax: Optional[float] = None,
            highlight: Optional[Sequence[tuple[int, int]]] = None,
            as_png: bool = True) -> bytes | np.ndarray:
    """Render ``field`` as a colormapped image.

    ``highlight`` marks (row, col) positions *in field coordinates* with a
    white cross. Returns PNG bytes (default) or the RGB array.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {field.shape}")
    height, width = resolution
    lo = np.nanmin(field) if vmin is None else vmin
    hi = np.nanmax(field) if vmax is None else vmax
    span = hi - lo
    normalised = (field - lo) / span if span > 0 else np.zeros_like(field)
    resampled = resize_nearest(normalised, height, width)
    rgb = apply_colormap(resampled, colormap)

    if highlight:
        scale_r = height / field.shape[0]
        scale_c = width / field.shape[1]
        arm = max(2, min(height, width) // 100)
        for r, c in highlight:
            cr = int((r + 0.5) * scale_r)
            cc = int((c + 0.5) * scale_c)
            r0, r1 = max(0, cr - arm), min(height, cr + arm + 1)
            c0, c1 = max(0, cc - arm), min(width, cc + arm + 1)
            rgb[r0:r1, cc % width] = 255
            rgb[cr % height, c0:c1] = 255
    if as_png:
        return encode_png(rgb)
    return rgb


def plot_cost_model(field_elements: int, resolution: tuple[int, int],
                    per_pixel: float = 2.0e-8,
                    per_element: float = 5.0e-9,
                    fixed: float = 0.02) -> float:
    """Simulated seconds to plot one frame.

    Calibrated so a 1,250×1,250 level at 1,200×1,200 lands near the
    ~0.06 s/level Plot cost visible in the paper's Fig. 7 decomposition.
    """
    pixels = resolution[0] * resolution[1]
    return fixed + pixels * per_pixel + field_elements * per_element
