"""Pure-Python PNG encoder and a minimal decoder for verification.

Stands in for the `Cairo`/`CairoPNG` graphics device (§IV-E.3). Writes
real, spec-conformant PNG files (8-bit RGB/RGBA, non-interlaced) from
uint8 arrays of shape (H, W, 3|4); the decoder is used by the tests to
prove plots round-trip pixel-exactly.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = ["decode_png", "encode_png"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(kind: bytes, payload: bytes) -> bytes:
    return (struct.pack(">I", len(payload)) + kind + payload
            + struct.pack(">I", zlib.crc32(kind + payload) & 0xFFFFFFFF))


def encode_png(image: np.ndarray, compression_level: int = 6) -> bytes:
    """Encode an (H, W, 3|4) uint8 array as a PNG byte string."""
    arr = np.asarray(image)
    if arr.dtype != np.uint8:
        raise ValueError(f"image must be uint8, got {arr.dtype}")
    if arr.ndim != 3 or arr.shape[2] not in (3, 4):
        raise ValueError(f"image must be (H, W, 3|4), got {arr.shape}")
    height, width, channels = arr.shape
    if height == 0 or width == 0:
        raise ValueError("image must be non-empty")
    color_type = 2 if channels == 3 else 6
    ihdr = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    # Filter type 0 (None) per scanline; zlib does the heavy lifting.
    raw = np.empty((height, 1 + width * channels), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = arr.reshape(height, width * channels)
    idat = zlib.compress(raw.tobytes(), compression_level)
    return (_SIGNATURE
            + _chunk(b"IHDR", ihdr)
            + _chunk(b"IDAT", idat)
            + _chunk(b"IEND", b""))


def decode_png(data: bytes) -> np.ndarray:
    """Decode PNGs produced by :func:`encode_png` (filter-0, 8-bit)."""
    if data[:8] != _SIGNATURE:
        raise ValueError("not a PNG")
    pos = 8
    width = height = channels = None
    idat = b""
    while pos < len(data):
        (length,) = struct.unpack(">I", data[pos:pos + 4])
        kind = data[pos + 4:pos + 8]
        payload = data[pos + 8:pos + 8 + length]
        crc_expect = struct.unpack(
            ">I", data[pos + 8 + length:pos + 12 + length])[0]
        if zlib.crc32(kind + payload) & 0xFFFFFFFF != crc_expect:
            raise ValueError(f"bad CRC in {kind!r} chunk")
        if kind == b"IHDR":
            width, height, depth, color_type, comp, filt, interlace = \
                struct.unpack(">IIBBBBB", payload)
            if depth != 8 or interlace != 0 or color_type not in (2, 6):
                raise ValueError("unsupported PNG variant")
            channels = 3 if color_type == 2 else 4
        elif kind == b"IDAT":
            idat += payload
        elif kind == b"IEND":
            break
        pos += 12 + length
    if width is None or channels is None:
        raise ValueError("missing IHDR")
    raw = np.frombuffer(zlib.decompress(idat), dtype=np.uint8)
    stride = 1 + width * channels
    raw = raw.reshape(height, stride)
    if not np.all(raw[:, 0] == 0):
        raise ValueError("only filter type 0 is supported")
    return raw[:, 1:].reshape(height, width, channels).copy()
