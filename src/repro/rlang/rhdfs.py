"""`rhdfs`-style storage access.

"The images and the analysis results will be combined and stored into
HDFS using the rhdfs package in Reduce task" (§IV-E.3). Thin R-flavoured
wrappers (``hdfs_put``, ``hdfs_get``, ``hdfs_ls``) over a storage client,
usable from inside map/reduce functions (timed) or outside (sync).
"""

from __future__ import annotations

__all__ = ["RHDFS"]


class RHDFS:
    """R-facing storage handle bound to one node's client.

    ``flusher`` (a :class:`repro.io.write.WriteBehindFlusher`) makes
    :meth:`hdfs_put` hand its payload off asynchronously — the reduce
    task's plot store overlaps the next group's rendering — with the
    job's drain barrier guaranteeing everything lands before commit.
    """

    def __init__(self, storage, node, flusher=None):
        self.storage = storage
        self.node = node
        self.client = storage.client(node)
        self.env = self.client.env
        self.flusher = flusher

    @classmethod
    def open(cls, registry, url: str, node, flusher=None) -> "RHDFS":
        """Bind to whatever backend a URL's scheme names.

        ``registry`` is a :class:`repro.io.registry.StorageRegistry`;
        ``url`` can be scheme-only (``"hdfs://"``) — rhdfs calls take
        backend-local paths as usual.
        """
        backend, _path = registry.resolve(url)
        return cls(backend, node, flusher=flusher)

    def hdfs_put(self, path: str, data: bytes):
        """Write ``data`` to ``path`` (timed). DES process.

        With a write-behind flusher attached the put returns
        immediately (the flush overlaps later compute); synchronously
        otherwise.
        """
        if self.flusher is not None:
            self.flusher.submit(self.client, path, data)
            return
        yield self.env.process(self.client.write(path, data))

    def hdfs_get(self, path: str):
        """Read ``path`` (timed). DES process returning bytes."""
        data = yield self.env.process(self.client.read(path))
        return data

    def hdfs_ls(self, path: str):
        """List a directory (timed). DES process returning paths."""
        listing = yield self.env.process(self.client.listdir(path))
        return listing

    def hdfs_exists(self, path: str):
        """Existence check (timed). DES process returning bool."""
        present = yield self.env.process(self.client.exists(path))
        return present
