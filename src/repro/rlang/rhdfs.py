"""`rhdfs`-style storage access.

"The images and the analysis results will be combined and stored into
HDFS using the rhdfs package in Reduce task" (§IV-E.3). Thin R-flavoured
wrappers (``hdfs_put``, ``hdfs_get``, ``hdfs_ls``) over a storage client,
usable from inside map/reduce functions (timed) or outside (sync).
"""

from __future__ import annotations

__all__ = ["RHDFS"]


class RHDFS:
    """R-facing storage handle bound to one node's client."""

    def __init__(self, storage, node):
        self.storage = storage
        self.node = node
        self.client = storage.client(node)
        self.env = self.client.env

    @classmethod
    def open(cls, registry, url: str, node) -> "RHDFS":
        """Bind to whatever backend a URL's scheme names.

        ``registry`` is a :class:`repro.io.registry.StorageRegistry`;
        ``url`` can be scheme-only (``"hdfs://"``) — rhdfs calls take
        backend-local paths as usual.
        """
        backend, _path = registry.resolve(url)
        return cls(backend, node)

    def hdfs_put(self, path: str, data: bytes):
        """Write ``data`` to ``path`` (timed). DES process."""
        yield self.env.process(self.client.write(path, data))

    def hdfs_get(self, path: str):
        """Read ``path`` (timed). DES process returning bytes."""
        data = yield self.env.process(self.client.read(path))
        return data

    def hdfs_ls(self, path: str):
        """List a directory (timed). DES process returning paths."""
        listing = yield self.env.process(self.client.listdir(path))
        return listing

    def hdfs_exists(self, path: str):
        """Existence check (timed). DES process returning bool."""
        present = yield self.env.process(self.client.exists(path))
        return present
