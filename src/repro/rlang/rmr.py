"""`rmr2`-style MapReduce binding.

"rmr2 provides the fundamental API support to communicate with underlying
Hadoop" (§IV-E.3). The R-facing surface is:

    mapreduce(input=..., map=..., reduce=..., ...)

where map/reduce receive ``keyval`` pairs. This module exposes the same
names over :class:`repro.mapreduce.JobRunner`. It is intentionally thin —
the point of the paper's design is that the R layer rides the unmodified
engine while SciDP swaps the input format underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.mapreduce import JobConf, JobRunner

__all__ = ["RMRSession", "keyval"]


@dataclass(frozen=True)
class keyval:  # noqa: N801 - matches the rmr2 function name
    """An rmr2 key-value pair."""

    key: Any
    val: Any


class RMRSession:
    """Binds R-style mapreduce calls to a simulated cluster + storage."""

    def __init__(self, env, nodes, storage, network, master_node=None):
        self.env = env
        self.nodes = nodes
        self.storage = storage
        self.network = network
        self.master_node = master_node

    def mapreduce(self,
                  input: str | list[str],                # noqa: A002
                  map: Callable,                          # noqa: A002
                  input_format,
                  reduce: Optional[Callable] = None,      # noqa: A002
                  combine: Optional[Callable] = None,
                  output: Optional[str] = None,
                  n_reducers: int = 1,
                  name: str = "rmr-job",
                  **params):
        """Run an rmr2-style job. DES process returning the JobResult.

        ``map(key, value)`` returns a ``keyval``, a list of them, or None;
        ``reduce(key, values)`` likewise. Compute accounting hooks may be
        attached by passing ``map_cost(key, value) -> (phase, seconds)``
        iterables via params["costs"].
        """
        costs = params.pop("costs", None)

        def mapper(ctx, key, value):
            if costs is not None:
                for phase, seconds in costs(key, value):
                    ctx.charge(seconds, phase)
            self._emit_all(ctx, map(key, value))

        def reducer(ctx, key, values):
            self._emit_all(ctx, reduce(key, values))

        conf = JobConf(
            name=name,
            mapper=mapper,
            reducer=reducer if reduce is not None else None,
            combiner=None if combine is None else (
                lambda ctx, key, values:
                self._emit_all(ctx, combine(key, values))),
            input_format=input_format,
            n_reducers=n_reducers if reduce is not None else 0,
            input_paths=[input] if isinstance(input, str) else list(input),
            output_path=output,
            params=params,
        )
        runner = JobRunner(self.env, self.nodes, self.storage,
                           self.network, conf,
                           master_node=self.master_node)
        result = yield self.env.process(runner.run())
        return result

    @staticmethod
    def _emit_all(ctx, out) -> None:
        if out is None:
            return
        if isinstance(out, keyval):
            ctx.emit(out.key, out.val)
            return
        for item in out:
            if not isinstance(item, keyval):
                raise TypeError(
                    f"map/reduce must return keyval(s), got {item!r}")
            ctx.emit(item.key, item.val)
