"""SQL over SciDP-resident scinc files: the pushdown scan path (ISSUE 9).

:class:`SQLSession` runs `sqldf` queries whose tables live as scinc
containers on the parallel file system. The planner's pushdown slots
(:class:`~repro.rlang.plan.Scan` ``columns`` / ``predicate``) become
storage-level pruning *before any PFS bytes move*:

- **Projection pushdown**: only the referenced variables' chunks are
  fetched; unreferenced variables never produce a read.
- **Zone-map pruning**: each pushed conjunct's per-column intervals
  (:func:`~repro.rlang.optimizer.scan_constraints`) are tested against
  the per-chunk ``[min, max, count]`` statistics recorded at scinc write
  time; chunks the zone map proves empty of matches are skipped, and —
  because excluded chunks exclude their *rows* — the matching region
  also prunes chunks of unconstrained variables. Dimension columns
  prune exactly from the chunk grid coordinates.

Every skipped chunk is accounted (``io.read.pfs.skipped_*`` via
``ReadPlanner.account_skipped``, plus the session's ``sql.*`` counters)
so the Fig. 9-style bytes-scanned reduction is measurable, and each
query emits ``sql.parse/plan/prune/scan/exec`` spans.

Twin-world discipline: ``engine="legacy"`` materializes every referenced
table in full — the same header + chunk reads, in the same order, as the
planner with ``pushdown=False`` — then runs the frozen
:func:`~repro.rlang._legacy.legacy_sqldf`. Identical reads + identical
row-cost charge = identical simulated timings by construction, which the
session tests pin at 1e-9.

Layering: storage is reached only through :mod:`repro.io` (the registry
hands back a client; its planner does the accounting) and the format
layer parses headers — no ``repro.pfs``/``repro.hdfs`` imports here.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import costs
from repro.formats.container import (
    MAGIC_LEN,
    ChunkRecord,
    ContainerHeader,
    VariableIndex,
    read_header,
)
from repro.io.plan import ScanPlan
from repro.io.registry import StorageRegistry
from repro.obs.metrics import metrics_of
from repro.obs.trace import tracer_of
from repro.rlang._legacy import legacy_sqldf
from repro.rlang.exec import execute, frame_scan, plan_query
from repro.rlang.frame import DataFrame
from repro.rlang.optimizer import (
    BROADCAST_BYTES,
    chunk_matches,
    scan_constraints,
)
from repro.rlang.plan import Join, PlanNode, Scan, lower, plan_scans
from repro.rlang.sqldf import SQLError, parse

__all__ = ["ScincTable", "SQLSession"]

#: first header read size (mirrors the File Explorer's probe)
_HEADER_PROBE = 4096


@dataclass
class ScincTable:
    """One scinc file exposed as a SQL table.

    Columns are the dimension names of the selected variables followed
    by the variable leaf names, in file order; every selected variable
    must share one shape and dimension tuple (the NU-WRF layout).
    """

    name: str
    url: str
    variables: Optional[list[str]] = None
    # resolved at header-load time
    dims: list[str] = field(default_factory=list)
    shape: tuple = ()
    var_paths: list[str] = field(default_factory=list)

    def bind(self, header: ContainerHeader) -> None:
        paths = []
        for path in header.variable_paths():
            var = header.variable(path)
            if self.variables is None or var.name in self.variables \
                    or var.path in self.variables:
                paths.append(path)
        if not paths:
            raise SQLError(
                f"table {self.name!r}: no variables selected from "
                f"{self.url} (asked for {self.variables})")
        first = header.variable(paths[0])
        for path in paths[1:]:
            var = header.variable(path)
            if var.shape != first.shape or var.dims != first.dims:
                raise SQLError(
                    f"table {self.name!r}: variable {var.name!r} shape "
                    f"{var.shape} does not match {first.name!r} "
                    f"{first.shape}; register them as separate tables")
        self.dims = list(first.dims)
        self.shape = first.shape
        self.var_paths = paths

    @property
    def schema(self) -> list[str]:
        return self.dims + [p.rsplit("/", 1)[-1] for p in self.var_paths]


@dataclass
class ScanInfo:
    """Per-scan prune/read accounting exposed on ``last_scan_info``."""

    table: str
    columns: list[str]
    chunks_read: int = 0
    chunks_pruned: int = 0
    bytes_read: int = 0
    bytes_skipped: int = 0
    variables_pruned: int = 0
    plans: list[ScanPlan] = field(default_factory=list)


class SQLSession:
    """Queries over registered frames and scinc-backed tables.

    ``pushdown`` toggles the optimizer rewrites (the perf knob);
    ``engine`` selects ``"planner"`` or the frozen ``"legacy"``
    evaluator (the correctness/timing twin). Both default to the
    planner with pushdown on.
    """

    def __init__(self, env, registry: StorageRegistry, node,
                 pushdown: bool = True, engine: str = "planner",
                 broadcast_bytes: float = BROADCAST_BYTES,
                 track: str = "sql"):
        if engine not in ("planner", "legacy"):
            raise ValueError(f"unknown engine {engine!r}")
        self.env = env
        self.registry = registry
        self.node = node
        self.pushdown = pushdown
        self.engine = engine
        self.broadcast_bytes = broadcast_bytes
        self.track = track
        self.frames: dict[str, DataFrame] = {}
        self.tables: dict[str, ScincTable] = {}
        self._clients: dict[int, tuple] = {}
        #: url -> (ContainerHeader, file size); headers are read once
        #: per file per session, with one timed charge
        self._headers: dict[str, tuple[ContainerHeader, int]] = {}
        self.last_scan_info: list[ScanInfo] = []

    # -- registration ------------------------------------------------------
    def register_frame(self, name: str, frame: DataFrame) -> None:
        self.frames[name] = frame

    def register_scinc(self, name: str, url: str,
                       variables: Optional[list[str]] = None) -> None:
        self.tables[name] = ScincTable(name, url, variables=variables)

    # -- storage plumbing --------------------------------------------------
    def _open(self, url: str):
        backend, path = self.registry.resolve(url)
        key = id(backend)
        if key not in self._clients:
            self._clients[key] = (backend.client(self.node), None)
        return self._clients[key][0], path

    def _count(self, name: str, value: int) -> None:
        registry = metrics_of(self.env)
        if registry is not None and value:
            registry.counter(name).inc(value)

    def _load_header(self, table: ScincTable):
        """DES process: read + parse one file's header (cached)."""
        if table.url in self._headers:
            if not table.var_paths:
                table.bind(self._headers[table.url][0])
            return
        client, path = self._open(table.url)
        inode = yield self.env.process(client.stat(path))
        probe = min(_HEADER_PROBE, inode.size)
        head = yield self.env.process(client.read(path, 0, probe))
        header_len = int.from_bytes(
            head[MAGIC_LEN:MAGIC_LEN + 8], "little")
        data_start = MAGIC_LEN + 8 + header_len
        if data_start > len(head):
            head += yield self.env.process(
                client.read(path, len(head), data_start - len(head)))
        header = read_header(io.BytesIO(head))
        self._headers[table.url] = (header, inode.size)
        table.bind(header)

    # -- pruning -----------------------------------------------------------
    def _region_mask(self, table: ScincTable, header: ContainerHeader,
                     constraints) -> Optional[np.ndarray]:
        """Elementwise keep-region implied by the pushed constraints.

        None = nothing provably excluded. Sound by construction: a cell
        goes False only when some pushed conjunct is False over it — via
        an exact dimension-coordinate test or a zone map proving its
        chunk holds no satisfying value.
        """
        region: Optional[np.ndarray] = None
        leaf = {p.rsplit("/", 1)[-1]: p for p in table.var_paths}
        for col, intervals in constraints.items():
            if col in table.dims:
                axis = table.dims.index(col)
                coords = np.arange(table.shape[axis])
                keep1d = np.zeros(table.shape[axis], dtype=bool)
                for iv in intervals:
                    keep1d |= np.array(
                        [iv.overlaps_range(c, c) for c in coords])
                mask = np.broadcast_to(
                    keep1d.reshape(
                        [-1 if i == axis else 1
                         for i in range(len(table.shape))]),
                    table.shape)
            elif col in leaf:
                var = header.variable(leaf[col])
                if not any(rec.stats is not None for rec in var.chunks):
                    continue  # no zone maps recorded: nothing to prove
                mask = np.zeros(table.shape, dtype=bool)
                for rec in var.chunks:
                    if chunk_matches(intervals, rec.stats):
                        mask[var.chunk_slices(rec.index)] = True
            else:
                continue
            region = mask.copy() if region is None else region & mask
        return region

    @staticmethod
    def _kept_chunks(var: VariableIndex, region: Optional[np.ndarray]
                     ) -> tuple[list[ChunkRecord], list[ChunkRecord]]:
        if region is None:
            return list(var.chunks), []
        kept, skipped = [], []
        for rec in var.chunks:
            if region[var.chunk_slices(rec.index)].any():
                kept.append(rec)
            else:
                skipped.append(rec)
        return kept, skipped

    # -- materialization ---------------------------------------------------
    def _materialize(self, scan: Scan, info: ScanInfo):
        """DES process: one scinc scan -> DataFrame, pruned up front."""
        table = self.tables[scan.table]
        header, _size = self._headers[table.url]
        client, path = self._open(table.url)
        data_start = header.data_start
        tracer = tracer_of(self.env)

        schema = table.schema
        columns = list(scan.columns) if scan.columns is not None \
            else list(schema)
        constraints = scan_constraints(scan.predicate) \
            if scan.predicate is not None else {}

        with tracer.span("sql.prune", cat="sql", track=self.track,
                         table=scan.table):
            region = self._region_mask(table, header, constraints)
            leaf = {p.rsplit("/", 1)[-1]: p for p in table.var_paths}
            needed_vars = [leaf[c] for c in columns if c in leaf]
            plan_per_var: dict[str, tuple] = {}
            for var_path in needed_vars:
                var = header.variable(var_path)
                kept, skipped = self._kept_chunks(var, region)
                plan_per_var[var_path] = (var, kept, skipped)
            # whole variables the projection dropped
            info.variables_pruned = len(table.var_paths) - len(needed_vars)
            for var_path in table.var_paths:
                if var_path not in plan_per_var:
                    var = header.variable(var_path)
                    dropped = sum(rec.nbytes for rec in var.chunks)
                    info.bytes_skipped += dropped
                    planner = getattr(client, "planner", None)
                    if planner is not None and dropped:
                        planner.account_skipped(
                            dropped, chunks=len(var.chunks))

        with tracer.span("sql.scan", cat="sql", track=self.track,
                         table=scan.table):
            arrays: dict[str, np.ndarray] = {}
            for var_path in needed_vars:
                var, kept, skipped = plan_per_var[var_path]
                plan = ScanPlan(
                    pieces=tuple((data_start + rec.offset, rec.nbytes)
                                 for rec in kept),
                    skipped=tuple((data_start + rec.offset, rec.nbytes)
                                  for rec in skipped))
                info.plans.append(plan)
                info.chunks_read += len(kept)
                info.chunks_pruned += len(skipped)
                info.bytes_read += plan.total_bytes
                info.bytes_skipped += plan.skipped_bytes
                if skipped:
                    planner = getattr(client, "planner", None)
                    if planner is not None:
                        planner.account_skipped(
                            plan.skipped_bytes, chunks=len(skipped))
                arr = np.zeros(var.shape, dtype=var.dtype)
                if kept:
                    blob = yield self.env.process(client.read_extents(
                        path, list(plan.pieces)))
                    pos = 0
                    raw_total = 0
                    for rec in kept:
                        stored = blob[pos:pos + rec.nbytes]
                        pos += rec.nbytes
                        raw = zlib.decompress(stored) if var.compressed \
                            else stored
                        raw_total += len(raw)
                        slices = var.chunk_slices(rec.index)
                        shape = tuple(s.stop - s.start for s in slices)
                        arr[slices] = np.frombuffer(
                            raw, dtype=var.dtype).reshape(shape)
                    if var.compressed and raw_total:
                        yield self.env.timeout(
                            raw_total / costs.DECOMPRESS_BYTES_PER_SEC)
                arrays[var.path] = arr

        rows = np.flatnonzero(region.ravel()) if region is not None \
            else None
        frame = DataFrame()
        coords = None
        for col in columns:
            if col in table.dims:
                if coords is None:
                    n = int(np.prod(table.shape))
                    idx = rows if rows is not None else np.arange(n)
                    coords = np.unravel_index(idx, table.shape)
                frame[col] = np.asarray(
                    coords[table.dims.index(col)], dtype=np.int64)
            else:
                flat = arrays[leaf[col]].ravel()
                frame[col] = flat[rows] if rows is not None else flat
        return frame

    # -- the query entry point ---------------------------------------------
    def query(self, sql: str):
        """DES process: run ``sql`` and return the result DataFrame."""
        tracer = tracer_of(self.env)
        self.last_scan_info = []
        with tracer.span("sql.query", cat="sql", track=self.track):
            with tracer.span("sql.parse", cat="sql", track=self.track):
                query = parse(sql)
            raw_scans = plan_scans(lower(query))
            for scan in raw_scans:
                if scan.table in self.tables:
                    yield from self._load_header(self.tables[scan.table])
                elif scan.table not in self.frames:
                    known = sorted(set(self.frames) | set(self.tables))
                    raise SQLError(
                        f"unknown table {scan.table!r}; have {known}")

            with tracer.span("sql.plan", cat="sql", track=self.track):
                schemas = {}
                for scan in raw_scans:
                    if scan.table in self.tables:
                        schemas[scan.table] = self.tables[scan.table].schema
                    else:
                        schemas[scan.table] = list(
                            self.frames[scan.table].names)
                node = plan_query(
                    query, schemas, estimate=self._estimate,
                    optimize=(self.engine == "planner" and self.pushdown),
                    broadcast_bytes=self.broadcast_bytes)

            if self.engine == "legacy":
                result, rows = yield from self._run_legacy(sql, raw_scans)
            else:
                result, rows = yield from self._run_planner(node)

            with tracer.span("sql.exec", cat="sql", track=self.track):
                yield self.env.timeout(
                    costs.SQL_QUERY_OVERHEAD
                    + rows / costs.SQL_ROWS_PER_SEC)
            self._count("sql.queries", 1)
            for entry in self.last_scan_info:
                self._count("sql.chunks_pruned", entry.chunks_pruned)
                self._count("sql.bytes_skipped", entry.bytes_skipped)
                self._count("sql.bytes_scanned", entry.bytes_read)
                self._count("sql.variables_pruned",
                            entry.variables_pruned)
            return result

    def _estimate(self, scan: Scan) -> float:
        if scan.table in self.frames:
            frame = self.frames[scan.table]
            names = frame.names if scan.columns is None else [
                c for c in scan.columns if c in frame]
            return float(sum(frame[c].nbytes for c in names))
        table = self.tables[scan.table]
        header, _size = self._headers[table.url]
        n = int(np.prod(table.shape)) if table.shape else 0
        total = 0.0
        columns = table.schema if scan.columns is None else scan.columns
        leaf = {p.rsplit("/", 1)[-1]: p for p in table.var_paths}
        for col in columns:
            if col in leaf:
                total += header.variable(leaf[col]).nbytes
            else:
                total += 8 * n
        return total

    def _run_planner(self, node: PlanNode):
        materialized: dict[int, DataFrame] = {}
        shared: dict[tuple, DataFrame] = {}
        rows = 0
        for scan in plan_scans(node):
            if scan.table in self.frames:
                frame = self.frames[scan.table]
            else:
                # identical unpushed scans of one table read once, like
                # the legacy evaluator's per-table materialization
                key = (scan.table,
                       tuple(scan.columns) if scan.columns is not None
                       else None)
                if scan.predicate is None and key in shared:
                    frame = shared[key]
                    materialized[id(scan)] = frame
                    rows += frame.nrow
                    continue
                info = ScanInfo(
                    table=scan.table,
                    columns=list(scan.columns)
                    if scan.columns is not None
                    else list(self.tables[scan.table].schema))
                self.last_scan_info.append(info)
                frame = yield from self._materialize(scan, info)
                if scan.predicate is None:
                    shared[key] = frame
            rows += frame.nrow
            materialized[id(scan)] = frame

        def resolve(scan: Scan) -> DataFrame:
            if id(scan) in materialized:
                frame = materialized[id(scan)]
                # pruning is conservative: the pushed predicate still
                # runs over the surviving rows
                return frame_scan(frame, None, scan.predicate) \
                    if scan.table in self.tables \
                    else frame_scan(frame, scan.columns, scan.predicate)
            return frame_scan(self.frames[scan.table], scan.columns,
                              scan.predicate)

        result = execute(node, resolve)
        return result, rows

    def _run_legacy(self, sql: str, raw_scans: list[Scan]):
        """The frozen evaluator over fully materialized tables.

        Reads every chunk of every selected variable of each referenced
        scinc table, once, in scan order — exactly what the planner does
        with ``pushdown=False`` — so the two engines are timing twins.
        """
        frames = dict(self.frames)
        rows = 0
        seen: set[str] = set()
        for scan in raw_scans:
            if scan.table in frames:
                rows += frames[scan.table].nrow
                continue
            if scan.table in seen:
                rows += frames[scan.table].nrow
                continue
            seen.add(scan.table)
            info = ScanInfo(table=scan.table,
                            columns=list(self.tables[scan.table].schema))
            self.last_scan_info.append(info)
            full = Scan(scan.table)  # no pushdown: all columns, chunks
            frame = yield from self._materialize(full, info)
            frames[scan.table] = frame
            rows += frame.nrow
        return legacy_sqldf(sql, frames), rows
