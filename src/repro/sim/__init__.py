"""Deterministic discrete-event simulation kernel.

A small, simpy-like engine: an :class:`Environment` owns a virtual clock and
an event queue; *processes* are Python generators that ``yield`` events
(timeouts, resource requests, other processes) and are resumed when those
events fire. Everything is deterministic — ties are broken by insertion
order, never by wall-clock or hashing.

The performance layer of the SciDP reproduction (disks, network links, CPU
slots) is built entirely on this kernel.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.cache import CacheStats, ReadAheadCache
from repro.sim.pipeline import FanoutWindow, bounded_fanout
from repro.sim.resources import Container, Resource, SharedBandwidth, Store
from repro.sim.stats import IntervalTimer, Monitor

__all__ = [
    "AllOf",
    "AnyOf",
    "CacheStats",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "IntervalTimer",
    "Monitor",
    "Process",
    "ReadAheadCache",
    "Resource",
    "SharedBandwidth",
    "SimulationError",
    "Store",
    "Timeout",
    "FanoutWindow",
    "bounded_fanout",
]
