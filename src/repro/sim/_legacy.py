"""Frozen reference implementations of reworked simulation hot paths.

Two generations of freezes live here, each kept verbatim as an
executable specification:

- :class:`LegacySharedBandwidth` — the original O(n)-rescan
  processor-sharing pipe predating the virtual-time rework.
  Equivalence tests drive seeded transfer schedules through both
  implementations and require identical completion times and orders.
- ``Legacy*`` engine classes (:class:`LegacyEnvironment`,
  :class:`LegacyEvent`, :class:`LegacyTimeout`, :class:`LegacyProcess`,
  :class:`LegacyAllOf`, :class:`LegacyAnyOf`) — the pre-slotted/pooled
  DES core. Twin-world tests replay seeded schedules of mixed
  timeouts/interrupts/conditions on both engines and require identical
  resume order, clocks at 1e-9, and identical exception surfacing; the
  sim-scale benchmark gates the new engine's events/sec against this
  one. ``Interrupt`` and ``SimulationError`` are shared with the live
  engine so exception identity is comparable across worlds.

Not part of the public API — simulation code must use
:mod:`repro.sim`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.engine import (
    NORMAL,
    URGENT,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)

__all__ = [
    "LegacyAllOf",
    "LegacyAnyOf",
    "LegacyEnvironment",
    "LegacyEvent",
    "LegacyProcess",
    "LegacySharedBandwidth",
    "LegacyTimeout",
]


# --------------------------------------------------------------------------
# Frozen engine core (pre-slotted/pooled), verbatim apart from renames.
# --------------------------------------------------------------------------

_PENDING = object()


class LegacyEvent:
    """A happening at a point in simulated time (frozen engine)."""

    def __init__(self, env: "LegacyEnvironment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["LegacyEvent"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL
                ) -> "LegacyEvent":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL
             ) -> "LegacyEvent":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self, priority)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class LegacyTimeout(LegacyEvent):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, env: "LegacyEnvironment", delay: float,
                 value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, NORMAL, delay)

    @property
    def triggered(self) -> bool:  # scheduled at construction
        return True


class _LegacyInitialize(LegacyEvent):
    """Kicks a freshly created process on the next queue pop."""

    def __init__(self, env: "LegacyEnvironment", process: "LegacyProcess"):
        super().__init__(env)
        self._value = None
        self.callbacks = [process._resume]
        env._schedule(self, URGENT)

    @property
    def triggered(self) -> bool:
        return True


class LegacyProcess(LegacyEvent):
    """A running process (frozen engine)."""

    def __init__(self, env: "LegacyEnvironment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[LegacyEvent] = None
        _LegacyInitialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        ev = LegacyEvent(self.env)
        ev._exception = Interrupt(cause)
        ev._value = None
        ev.defused = True
        ev.callbacks = []
        self.env._schedule(ev, URGENT)
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        ev.callbacks.append(self._resume)

    def _resume(self, event: LegacyEvent) -> None:
        self.env._active = self
        while True:
            try:
                if event._exception is not None:
                    event.defused = True
                    next_target = self._generator.throw(event._exception)
                else:
                    next_target = self._generator.send(event._value)
            except StopIteration as stop:
                self._value = stop.value
                self.env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._exception = exc
                self._value = None
                self.env._schedule(self, NORMAL)
                break

            if not isinstance(next_target, LegacyEvent):
                exc = SimulationError(
                    f"process yielded non-event {next_target!r}")
                event = LegacyEvent(self.env)
                event._exception = exc
                continue  # throw it right back in

            if next_target.processed:
                event = next_target
                continue

            next_target.callbacks.append(self._resume)
            self._target = next_target
            break
        self.env._active = None


class _LegacyCondition(LegacyEvent):
    """Base for the frozen AllOf/AnyOf composite events."""

    def __init__(self, env: "LegacyEnvironment",
                 events: Iterable[LegacyEvent]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        self._pending = 0
        already_failed: Optional[BaseException] = None
        any_processed = False
        for ev in self.events:
            if ev.processed:
                any_processed = True
                if ev._exception is not None:
                    ev.defused = True
                    already_failed = ev._exception
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        if already_failed is not None:
            self.fail(already_failed)
        else:
            self._maybe_finish(any_processed)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events
            if ev.processed and ev._exception is None
        }

    def _check(self, event: LegacyEvent) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._pending -= 1
        self._maybe_finish(any_processed=True)

    def _maybe_finish(self, any_processed: bool) -> None:
        raise NotImplementedError


class LegacyAllOf(_LegacyCondition):
    """Fires when every constituent event has fired (frozen engine)."""

    def _maybe_finish(self, any_processed: bool) -> None:
        if not self.triggered and self._pending <= 0:
            self.succeed(self._collect())


class LegacyAnyOf(_LegacyCondition):
    """Fires as soon as one constituent event fires (frozen engine)."""

    def _maybe_finish(self, any_processed: bool) -> None:
        if self.triggered:
            return
        if any_processed or not self.events:
            self.succeed(self._collect())


class LegacyEnvironment:
    """Simulation environment (frozen engine): clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, LegacyEvent]] = []
        self._seq = 0
        self._active: Optional[LegacyProcess] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[LegacyProcess]:
        return self._active

    def event(self) -> LegacyEvent:
        return LegacyEvent(self)

    def timeout(self, delay: float, value: Any = None) -> LegacyTimeout:
        return LegacyTimeout(self, delay, value)

    def process(self, generator: Generator) -> LegacyProcess:
        return LegacyProcess(self, generator)

    def all_of(self, events: Iterable[LegacyEvent]) -> LegacyAllOf:
        return LegacyAllOf(self, events)

    def any_of(self, events: Iterable[LegacyEvent]) -> LegacyAnyOf:
        return LegacyAnyOf(self, events)

    def _schedule(self, event: LegacyEvent, priority: int,
                  delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: Optional[float | LegacyEvent] = None) -> Any:
        stop_event: Optional[LegacyEvent] = None
        deadline = float("inf")
        if isinstance(until, LegacyEvent):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if self.peek() > deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired")
        if deadline != float("inf"):
            self._now = deadline
        return None


# --------------------------------------------------------------------------
# Frozen pre-virtual-time SharedBandwidth (runs on the live engine).
# --------------------------------------------------------------------------


class _Transfer:
    __slots__ = ("remaining", "event", "total")

    def __init__(self, nbytes: float, event: Event):
        self.remaining = float(nbytes)
        self.total = float(nbytes)
        self.event = event


class LegacySharedBandwidth:
    """Processor-sharing pipe that rescans every active transfer on each
    membership change (the historical implementation)."""

    def __init__(self, env: Environment, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._active: list[_Transfer] = []
        self._last_update = env.now
        self._generation = 0
        self.bytes_moved = 0.0
        self.busy_time = 0.0
        self.observer = None

    @property
    def n_active(self) -> int:
        return len(self._active)

    def transfer(self, nbytes: float, latency: float = 0.0) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = Event(self.env)
        if latency > 0:
            delay = self.env.timeout(latency)
            delay.callbacks.append(lambda _ev: self._admit(nbytes, done))
        else:
            self._admit(nbytes, done)
        return done

    def _admit(self, nbytes: float, done: Event) -> None:
        self.bytes_moved += nbytes
        if nbytes == 0:
            done.succeed()
            return
        self._advance()
        self._active.append(_Transfer(nbytes, done))
        if self.observer is not None:
            self.observer(len(self._active))
        self._reschedule()

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        self.busy_time += elapsed
        rate = self.capacity / len(self._active)
        drained = elapsed * rate
        for xfer in self._active:
            xfer.remaining = max(0.0, xfer.remaining - drained)

    def _reschedule(self) -> None:
        self._generation += 1
        if not self._active:
            return
        gen = self._generation
        rate = self.capacity / len(self._active)
        min_remaining = min(x.remaining for x in self._active)
        delay = min_remaining / rate
        wake = self.env.timeout(delay)
        wake.callbacks.append(lambda _ev: self._on_wake(gen))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return
        self._advance()
        eps = 1e-6
        finished = [x for x in self._active if x.remaining <= eps]
        if not finished and self._active:
            floor = min(x.remaining for x in self._active) + eps
            finished = [x for x in self._active if x.remaining <= floor]
        done_set = set(id(x) for x in finished)
        self._active = [x for x in self._active if id(x) not in done_set]
        if finished and self.observer is not None:
            self.observer(len(self._active))
        for xfer in finished:
            xfer.event.succeed(priority=URGENT)
        self._reschedule()

    def time_for(self, nbytes: float) -> float:
        return nbytes / self.capacity

    def utilization(self, since: float = 0.0) -> float:
        self._advance()
        span = self.env.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time / span)
