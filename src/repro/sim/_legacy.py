"""Reference implementation of the pre-virtual-time SharedBandwidth.

This is the original O(n)-rescan processor-sharing pipe, kept verbatim
as an executable specification: equivalence tests drive seeded transfer
schedules through both implementations and require identical completion
times and orders, and the data-path micro-benchmark measures the
Python-level work the virtual-time rework saves. Not part of the public
API — simulation code must use :class:`repro.sim.SharedBandwidth`.
"""

from __future__ import annotations

from repro.sim.engine import URGENT, Environment, Event

__all__ = ["LegacySharedBandwidth"]


class _Transfer:
    __slots__ = ("remaining", "event", "total")

    def __init__(self, nbytes: float, event: Event):
        self.remaining = float(nbytes)
        self.total = float(nbytes)
        self.event = event


class LegacySharedBandwidth:
    """Processor-sharing pipe that rescans every active transfer on each
    membership change (the historical implementation)."""

    def __init__(self, env: Environment, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._active: list[_Transfer] = []
        self._last_update = env.now
        self._generation = 0
        self.bytes_moved = 0.0
        self.busy_time = 0.0
        self.observer = None

    @property
    def n_active(self) -> int:
        return len(self._active)

    def transfer(self, nbytes: float, latency: float = 0.0) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = Event(self.env)
        if latency > 0:
            delay = self.env.timeout(latency)
            delay.callbacks.append(lambda _ev: self._admit(nbytes, done))
        else:
            self._admit(nbytes, done)
        return done

    def _admit(self, nbytes: float, done: Event) -> None:
        self.bytes_moved += nbytes
        if nbytes == 0:
            done.succeed()
            return
        self._advance()
        self._active.append(_Transfer(nbytes, done))
        if self.observer is not None:
            self.observer(len(self._active))
        self._reschedule()

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        self.busy_time += elapsed
        rate = self.capacity / len(self._active)
        drained = elapsed * rate
        for xfer in self._active:
            xfer.remaining = max(0.0, xfer.remaining - drained)

    def _reschedule(self) -> None:
        self._generation += 1
        if not self._active:
            return
        gen = self._generation
        rate = self.capacity / len(self._active)
        min_remaining = min(x.remaining for x in self._active)
        delay = min_remaining / rate
        wake = self.env.timeout(delay)
        wake.callbacks.append(lambda _ev: self._on_wake(gen))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return
        self._advance()
        eps = 1e-6
        finished = [x for x in self._active if x.remaining <= eps]
        if not finished and self._active:
            floor = min(x.remaining for x in self._active) + eps
            finished = [x for x in self._active if x.remaining <= floor]
        done_set = set(id(x) for x in finished)
        self._active = [x for x in self._active if id(x) not in done_set]
        if finished and self.observer is not None:
            self.observer(len(self._active))
        for xfer in finished:
            xfer.event.succeed(priority=URGENT)
        self._reschedule()

    def time_for(self, nbytes: float) -> float:
        return nbytes / self.capacity

    def utilization(self, since: float = 0.0) -> float:
        self._advance()
        span = self.env.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time / span)
