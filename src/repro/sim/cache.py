"""Split-aware LRU read-ahead cache for the pipelined data path.

One :class:`ReadAheadCache` per compute node holds recently fetched
stored byte ranges keyed by ``(path, offset, length)`` so overlapping
hyperslab reads — and the map runtime's double-buffered prefetch — do
not refetch from the PFS. The cache is byte-bounded with LRU eviction.

In-flight fetches are first-class: while one task's fetch for a key is
outstanding, a second reader for the same key *joins* the pending event
instead of issuing a duplicate request (the prefetch-overlap case the
``repro.obs`` report surfaces). Counters are shared through a
:class:`CacheStats` so every node's cache on a job rolls up into one
row.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["CacheStats", "ReadAheadCache"]


class CacheStats:
    """Shared hit/miss/overlap counters for one or more caches."""

    __slots__ = ("name", "hits", "misses", "overlap_hits",
                 "bytes_from_cache", "bytes_inserted", "evictions",
                 "prefetch_fills")

    def __init__(self, name: str = ""):
        self.name = name
        #: lookups served from cached bytes
        self.hits = 0
        #: lookups that had to issue a fetch
        self.misses = 0
        #: lookups that joined another reader's in-flight fetch
        self.overlap_hits = 0
        self.bytes_from_cache = 0
        self.bytes_inserted = 0
        self.evictions = 0
        #: fills performed by background prefetchers
        self.prefetch_fills = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.overlap_hits

    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a PFS fetch (hits + joins)."""
        total = self.lookups
        if total == 0:
            return 0.0
        return (self.hits + self.overlap_hits) / total

    def as_dict(self) -> dict:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "overlap_hits": self.overlap_hits,
            "bytes_from_cache": self.bytes_from_cache,
            "bytes_inserted": self.bytes_inserted,
            "evictions": self.evictions,
            "prefetch_fills": self.prefetch_fills,
        }


class _Reservation:
    """The right (and duty) to fill one missing cache key."""

    __slots__ = ("_cache", "key", "event", "settled")

    def __init__(self, cache: "ReadAheadCache", key, event: Event):
        self._cache = cache
        self.key = key
        self.event = event
        self.settled = False

    def fill(self, data: bytes, prefetched: bool = False) -> None:
        """Deliver the fetched bytes: inserts, then wakes any joiners."""
        if self.settled:
            raise SimulationError(f"reservation {self.key!r} already settled")
        self.settled = True
        self._cache._fill(self, data, prefetched)

    def abort(self, exc: Optional[BaseException] = None) -> None:
        """Give up on the fetch; joiners see ``exc`` (or a KeyError)."""
        if self.settled:
            return
        self.settled = True
        self._cache._abort(self, exc)


class ReadAheadCache:
    """Byte-bounded LRU over fetched ranges, with in-flight joining.

    The lookup protocol readers follow::

        data = cache.get(key)            # hit -> bytes, else None
        if data is None:
            waiter = cache.join(key)     # someone already fetching?
            if waiter is not None:
                data = yield waiter      # overlap: ride their fetch
            else:
                res = cache.reserve(key)  # miss: fetch it yourself
                ... fetch ...
                res.fill(data)            # or res.abort(exc)
    """

    def __init__(self, env: Environment, capacity_bytes: int,
                 name: str = "", stats: Optional[CacheStats] = None):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.env = env
        self.capacity_bytes = int(capacity_bytes)
        self.name = name
        self.stats = stats if stats is not None else CacheStats(name)
        self._entries: "OrderedDict" = OrderedDict()  # key -> bytes
        self._inflight: dict = {}  # key -> _Reservation
        self._used = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, key) -> bool:
        return key in self._entries

    # -- lookup protocol -------------------------------------------------
    def get(self, key) -> Optional[bytes]:
        """Cached bytes for ``key`` (counts a hit), or None."""
        data = self._entries.get(key)
        if data is None:
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.bytes_from_cache += len(data)
        return data

    def join(self, key) -> Optional[Event]:
        """The in-flight fetch event for ``key`` (counts an overlap hit),
        or None when nobody is fetching it."""
        reservation = self._inflight.get(key)
        if reservation is None:
            return None
        self.stats.overlap_hits += 1
        return reservation.event

    def reserve(self, key) -> _Reservation:
        """Claim the fetch of a missing key (counts a miss)."""
        if key in self._inflight:
            raise SimulationError(
                f"key {key!r} already reserved; call join() first")
        self.stats.misses += 1
        reservation = _Reservation(self, key, Event(self.env))
        self._inflight[key] = reservation
        return reservation

    # -- reservation plumbing --------------------------------------------
    def _fill(self, reservation: _Reservation, data: bytes,
              prefetched: bool) -> None:
        self._inflight.pop(reservation.key, None)
        self._insert(reservation.key, data)
        if prefetched:
            self.stats.prefetch_fills += 1
        reservation.event.succeed(data)

    def _abort(self, reservation: _Reservation,
               exc: Optional[BaseException]) -> None:
        self._inflight.pop(reservation.key, None)
        event = reservation.event
        event.fail(exc if exc is not None
                   else KeyError(f"fetch of {reservation.key!r} aborted"))
        # Pre-defuse: with no joiners the failure is already handled by
        # the reserving reader; joiners re-defuse when it is thrown in.
        event.defused = True

    def _insert(self, key, data: bytes) -> None:
        size = len(data)
        if size > self.capacity_bytes:
            return  # would evict everything and still not fit
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= len(old)
        while self._used + size > self.capacity_bytes and self._entries:
            _evicted_key, evicted = self._entries.popitem(last=False)
            self._used -= len(evicted)
            self.stats.evictions += 1
        self._entries[key] = data
        self._used += size
        self.stats.bytes_inserted += size
