"""Chunked float64 column storage — the measurement substrate.

:class:`FloatColumn` is an append-only column of doubles tuned for the
simulator's recording hot paths: appends go to a flat Python list (the
cheapest per-sample container CPython has — no per-sample objects, no
numpy scalar boxing), and every ``chunk`` elements the buffer is frozen
into one contiguous ``float64`` array. Reads materialise on demand.

The buffer list is intentionally long-lived: freezing copies it into a
numpy chunk and then ``clear()``\\ s it in place, so hot paths may cache
a direct reference to :attr:`FloatColumn.buf` and keep appending through
it across flushes. :class:`~repro.sim.stats.Monitor` stores its sample
series in two of these, and ``repro.obs.columnar`` builds its fixed-width
event tables on top.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["CHUNK_ELEMENTS", "FloatColumn"]

#: elements per frozen chunk (tables multiply by their row width so a
#: chunk always holds whole rows)
CHUNK_ELEMENTS = 65536


class FloatColumn:
    """Append-only chunked column of float64 values."""

    __slots__ = ("buf", "flush_at", "_chunks", "_frozen")

    def __init__(self, chunk: int = CHUNK_ELEMENTS):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        #: pending (not yet frozen) values; identity is stable across
        #: flushes, so callers may cache a reference for fast appends
        self.buf: list[float] = []
        #: flush threshold in elements — when ``len(buf)`` reaches this,
        #: call :meth:`flush`
        self.flush_at = chunk
        self._chunks: list[np.ndarray] = []
        self._frozen = 0

    def __len__(self) -> int:
        return self._frozen + len(self.buf)

    @property
    def nbytes(self) -> int:
        """Approximate storage footprint of the frozen chunks."""
        return sum(chunk.nbytes for chunk in self._chunks)

    def append(self, value: float) -> None:
        buf = self.buf
        buf.append(value)
        if len(buf) >= self.flush_at:
            self.flush()

    def extend(self, values: Iterable[float]) -> None:
        buf = self.buf
        buf.extend(values)
        if len(buf) >= self.flush_at:
            self.flush()

    def extend_array(self, values: np.ndarray) -> None:
        """Bulk-ingest a numpy vector as one frozen chunk (no per-element
        Python work)."""
        if len(values) == 0:
            return
        self.flush()
        arr = np.ascontiguousarray(values, dtype=np.float64)
        self._chunks.append(arr)
        self._frozen += len(arr)

    def flush(self) -> None:
        """Freeze the pending buffer into a chunk (no-op when empty)."""
        buf = self.buf
        if not buf:
            return
        self._chunks.append(np.array(buf, dtype=np.float64))
        self._frozen += len(buf)
        buf.clear()

    def array(self) -> np.ndarray:
        """Materialise the whole column as one contiguous array."""
        parts = list(self._chunks)
        if self.buf:
            parts.append(np.array(self.buf, dtype=np.float64))
        if not parts:
            return np.empty(0, dtype=np.float64)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def tolist(self) -> list[float]:
        """Materialise as a plain list of Python floats."""
        return self.array().tolist()

    def last(self) -> float:
        """The most recently appended value (raises on empty)."""
        if self.buf:
            return self.buf[-1]
        if self._chunks:
            return float(self._chunks[-1][-1])
        raise ValueError("column has no values")
