"""Core event loop, events, and process coroutines.

Semantics follow the classic process-interaction style:

- :class:`Event` has three states: pending, triggered (scheduled on the
  queue), and processed (callbacks ran). Events carry a value or an
  exception.
- :class:`Process` wraps a generator. Each ``yield expr`` must produce an
  :class:`Event`; the process resumes with the event's value (or the event's
  exception is thrown into the generator).
- :class:`Environment.run` pops events in ``(time, priority, seq)`` order,
  so simultaneous events fire in the order they were scheduled —
  deterministic by construction.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Priority for ordinary events.
NORMAL = 1
#: Priority for "urgent" bookkeeping events (resource releases) so that a
#: release at time t is observed by a request at the same t.
URGENT = 0


class SimulationError(Exception):
    """Raised for illegal engine operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the interrupter-supplied reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Callbacks are invoked exactly once, when the environment processes the
    event. Use :meth:`succeed` / :meth:`fail` to trigger manually.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        #: Set when the exception was handed to someone (prevents the engine
        #: from re-raising unhandled failures that a process caught).
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (may not be processed)."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self, priority)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, NORMAL, delay)

    @property
    def triggered(self) -> bool:  # scheduled at construction
        return True


class _Initialize(Event):
    """Kicks a freshly created process on the next queue pop."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self.callbacks = [process._resume]
        env._schedule(self, URGENT)

    @property
    def triggered(self) -> bool:
        return True


class Process(Event):
    """A running process. It is itself an event that fires on termination.

    Yield a ``Process`` to wait for it; its return value (via ``return`` in
    the generator) becomes the event value.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event we're waiting on
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        ev = Event(self.env)
        ev._exception = Interrupt(cause)
        ev._value = None
        ev.defused = True
        ev.callbacks = []
        self.env._schedule(ev, URGENT)
        # Detach from whatever we were waiting on, then resume with the
        # interrupt once the injected event is processed.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        ev.callbacks.append(self._resume)

    # -- engine plumbing -------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active = self
        while True:
            try:
                if event._exception is not None:
                    event.defused = True
                    next_target = self._generator.throw(event._exception)
                else:
                    next_target = self._generator.send(event._value)
            except StopIteration as stop:
                self._value = stop.value
                self.env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._exception = exc
                self._value = None
                self.env._schedule(self, NORMAL)
                break

            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process yielded non-event {next_target!r}")
                event = Event(self.env)
                event._exception = exc
                continue  # throw it right back in

            if next_target.processed:
                # Already done: resume immediately with its outcome.
                event = next_target
                continue

            next_target.callbacks.append(self._resume)
            self._target = next_target
            break
        self.env._active = None


class _Condition(Event):
    """Base for AllOf/AnyOf composite events.

    The result dict contains only *processed* (delivered) constituent
    events — a pending Timeout scheduled for later never leaks its value in.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        self._pending = 0
        already_failed: Optional[BaseException] = None
        any_processed = False
        for ev in self.events:
            if ev.processed:
                any_processed = True
                if ev._exception is not None:
                    ev.defused = True
                    already_failed = ev._exception
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        if already_failed is not None:
            self.fail(already_failed)
        else:
            self._maybe_finish(any_processed)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events
            if ev.processed and ev._exception is None
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._pending -= 1
        self._maybe_finish(any_processed=True)

    def _maybe_finish(self, any_processed: bool) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired (fails fast on error)."""

    def _maybe_finish(self, any_processed: bool) -> None:
        if not self.triggered and self._pending <= 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one constituent event fires."""

    def _maybe_finish(self, any_processed: bool) -> None:
        if self.triggered:
            return
        if any_processed or not self.events:
            self.succeed(self._collect())


class Environment:
    """Simulation environment: virtual clock plus the event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process; returns its Process event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a number (absolute simulated time) or an event —
        in the latter case the event's value is returned.
        """
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if self.peek() > deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired")
        if deadline != float("inf"):
            self._now = deadline
        return None
