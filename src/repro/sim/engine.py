"""Core event loop, events, and process coroutines.

Semantics follow the classic process-interaction style:

- :class:`Event` has three states: pending, triggered (scheduled on the
  queue), and processed (callbacks ran). Events carry a value or an
  exception.
- :class:`Process` wraps a generator. Each ``yield expr`` must produce an
  :class:`Event`; the process resumes with the event's value (or the event's
  exception is thrown into the generator).
- :class:`Environment.run` pops events in ``(time, priority, seq)`` order,
  so simultaneous events fire in the order they were scheduled —
  deterministic by construction.

The implementation is tuned for cluster-scale event counts (millions of
events per run) while keeping pop order bit-identical to the frozen
reference in :mod:`repro.sim._legacy`:

- every event class carries ``__slots__`` — no per-event ``__dict__``;
- ``(priority, seq)`` are packed into one integer sort key, so heap
  entries are 3-tuples and tie-breaking is a single int compare;
- events scheduled *at the current instant* (resource grants, process
  terminations, condition triggers — the dominant class) go to per-
  priority FIFO buckets instead of the heap: append/pop is O(1) and the
  heap only ever holds genuinely future timestamps;
- :class:`Timeout` and the internal initialize events are recycled
  through free lists. An event is recycled only when the engine can
  *prove* nobody else references it (an exact CPython refcount check
  after its callbacks ran), so user-held events are never corrupted;
- a process detaches from the event it waits on by tombstoning its
  callback slot in place (O(1)) instead of ``list.remove`` (O(n)),
  with a lazy sweep once tombstones dominate a long callback list —
  interrupting waiters on a wide ``AnyOf``/``AllOf`` fan-in is linear,
  not quadratic.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Priority for ordinary events.
NORMAL = 1
#: Priority for "urgent" bookkeeping events (resource releases) so that a
#: release at time t is observed by a request at the same t.
URGENT = 0

#: Sort-key span per priority level: ``key = priority * _SPAN + seq``
#: orders exactly like the historical ``(priority, seq)`` tuple for any
#: run shorter than 2**56 scheduling operations.
_SPAN = 1 << 56

#: Free-list bound — enough to absorb any realistic steady-state churn
#: without pinning memory after a burst.
_POOL_MAX = 1024

#: Tombstone-sweep thresholds: compact an event's callback list once it
#: holds more than _SWEEP_MIN tombstones and they are at least half of
#: the list (amortised O(1) per detach).
_SWEEP_MIN = 16

_INF = float("inf")


class SimulationError(Exception):
    """Raised for illegal engine operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the interrupter-supplied reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from a legitimate None value.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Callbacks are invoked exactly once, when the environment processes the
    event. Use :meth:`succeed` / :meth:`fail` to trigger manually.

    A ``None`` entry in :attr:`callbacks` is a tombstone left by an O(1)
    detach (see :meth:`Process.interrupt`); the dispatch loop skips them.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "defused",
                 "_dead")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        #: Set when the exception was handed to someone (prevents the engine
        #: from re-raising unhandled failures that a process caught).
        self.defused = False
        #: tombstoned (None) entries currently in ``callbacks``
        self._dead = 0

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (may not be processed)."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        # inlined env._schedule(self, priority) — succeed is the hottest
        # trigger path (slot grants, process terminations)
        env = self.env
        seq = env._seq = env._seq + 1
        if priority == 1:
            env._bn.append((_SPAN + seq, self))
        elif priority == 0:
            env._bu.append((seq, self))
        else:
            heappush(env._queue, (env._now, priority * _SPAN + seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self, priority)
        return self

    # -- callback-list maintenance --------------------------------------
    def _sweep(self) -> None:
        """Compact tombstoned callback entries in place.

        Waiting processes store the index of their callback slot, so the
        compaction re-indexes every live process entry (found through the
        bound method's ``__self__``).
        """
        cbs = self.callbacks
        if cbs is None:
            return
        alive = [cb for cb in cbs if cb is not None]
        cbs[:] = alive
        self._dead = 0
        for i, cb in enumerate(alive):
            owner = getattr(cb, "__self__", None)
            if owner is not None and isinstance(owner, Process) \
                    and owner._target is self:
                owner._tidx = i

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Instances the engine can prove are unreferenced after they fire are
    recycled through :attr:`Environment._timeout_pool` — create timeouts
    via :meth:`Environment.timeout` to benefit.
    """

    __slots__ = ("delay",)

    #: scheduled at construction — shadows the base property
    triggered = True

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._exception = None
        self.defused = False
        self._dead = 0
        self.delay = delay
        env._schedule(self, NORMAL, delay)


class _Initialize(Event):
    """Kicks a freshly created process on the next queue pop."""

    __slots__ = ()

    triggered = True

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._cb]
        self._value = None
        self._exception = None
        self.defused = False
        self._dead = 0
        env._schedule(self, URGENT)


class Process(Event):
    """A running process. It is itself an event that fires on termination.

    Yield a ``Process`` to wait for it; its return value (via ``return`` in
    the generator) becomes the event value.
    """

    __slots__ = ("_generator", "_target", "_tidx", "_cb", "name")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        self.defused = False
        self._dead = 0
        self._generator = generator
        #: event we're waiting on, and the index of our callback in it
        self._target: Optional[Event] = None
        self._tidx = -1
        #: the one bound-method object appended to targets — identity is
        #: what makes the O(1) tombstone detach possible
        self._cb = self._resume
        #: the wrapped generator's qualified name, for reprs and errors
        self.name = getattr(generator, "__qualname__", "") \
            or type(generator).__name__
        env._init(self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        ev = Event(self.env)
        ev._exception = Interrupt(cause)
        ev._value = None
        ev.defused = True
        self.env._schedule(ev, URGENT)
        # Detach from whatever we were waiting on, then resume with the
        # interrupt once the injected event is processed.
        target = self._target
        if target is not None:
            self._detach(target)
            self._target = None
        ev.callbacks.append(self._cb)

    def _detach(self, target: Event) -> None:
        """Drop our callback from ``target`` in O(1) via tombstoning."""
        cbs = target.callbacks
        if cbs is None:
            return
        i = self._tidx
        if 0 <= i < len(cbs) and cbs[i] is self._cb:
            cbs[i] = None
            dead = target._dead = target._dead + 1
            if dead > _SWEEP_MIN and dead * 2 >= len(cbs):
                target._sweep()
        else:  # defensive: index went stale (should not happen)
            try:
                cbs.remove(self._cb)
            except ValueError:
                pass

    # -- engine plumbing -------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active = self
        self._target = None
        gen = self._generator
        while True:
            try:
                if event._exception is not None:
                    event.defused = True
                    next_target = gen.throw(event._exception)
                else:
                    next_target = gen.send(event._value)
            except StopIteration as stop:
                self._value = stop.value
                seq = env._seq = env._seq + 1
                env._bn.append((_SPAN + seq, self))
                break
            except BaseException as exc:
                self._exception = exc
                self._value = None
                seq = env._seq = env._seq + 1
                env._bn.append((_SPAN + seq, self))
                break

            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event "
                    f"{next_target!r}")
                event = Event(env)
                event._exception = exc
                continue  # throw it right back in

            cbs = next_target.callbacks
            if cbs is None:
                # Already done: resume immediately with its outcome.
                event = next_target
                continue

            self._tidx = len(cbs)
            cbs.append(self._cb)
            self._target = next_target
            break
        env._active = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "alive")
        return f"<Process {self.name!r} {state} at {id(self):#x}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events.

    The result dict contains only *processed* (delivered) constituent
    events — a pending Timeout scheduled for later never leaks its value in.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        self.defused = False
        self._dead = 0
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        pending = 0
        already_failed: Optional[BaseException] = None
        any_processed = False
        check = self._check
        for ev in self.events:
            if ev.callbacks is None:
                any_processed = True
                if ev._exception is not None:
                    ev.defused = True
                    already_failed = ev._exception
            else:
                pending += 1
                ev.callbacks.append(check)
        self._pending = pending
        if already_failed is not None:
            self.fail(already_failed)
        else:
            self._maybe_finish(any_processed)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self.events
            if ev.callbacks is None and ev._exception is None
        }

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING or self._exception is not None:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._pending -= 1
        self._maybe_finish(any_processed=True)

    def _maybe_finish(self, any_processed: bool) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired (fails fast on error)."""

    __slots__ = ()

    def _maybe_finish(self, any_processed: bool) -> None:
        if not self.triggered and self._pending <= 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one constituent event fires."""

    __slots__ = ()

    def _maybe_finish(self, any_processed: bool) -> None:
        if self.triggered:
            return
        if any_processed or not self.events:
            self.succeed(self._collect())


class Environment:
    """Simulation environment: virtual clock plus the event queue.

    Scheduling internals (see the module docstring): future events live
    in a ``(time, key, event)`` min-heap where ``key`` packs ``(priority,
    seq)``; events scheduled at the *current* instant go to per-priority
    FIFO deques (``_bu`` urgent, ``_bn`` normal) that are always drained
    before the clock can advance, so heap churn is paid only for real
    timestamp changes. Pop order is identical to the frozen legacy heap.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: future events: (time, priority * _SPAN + seq, event) min-heap
        self._queue: list = []
        self._seq = 0
        self._active: Optional[Process] = None
        #: same-instant FIFO buckets: (key, event) per priority
        self._bu: list = []  # URGENT
        self._bn: list = []  # NORMAL
        #: cursor of already-popped entries at the bucket heads (cheaper
        #: than popleft-style shifting; reset whenever both drain)
        self._bu_head = 0
        self._bn_head = 0
        #: free lists of proven-unreferenced fired events
        self._timeout_pool: list = []
        self._init_pool: list = []
        self._event_pool: list = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            # recycled state: callbacks is a parked empty list; restore
            # the pristine pending state
            ev._value = _PENDING
            ev._exception = None
            ev.defused = False
            return ev
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` for ``delay``, recycled from the free list
        when one is available."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            to = pool.pop()
            # recycled state: callbacks is a parked empty list,
            # _exception is None (timeouts cannot fail)
            to._value = value
            to.defused = False
            to.delay = delay
            seq = self._seq = self._seq + 1
            if delay and self._now + delay > self._now:
                heappush(self._queue,
                         (self._now + delay, _SPAN + seq, to))
            else:
                self._bn.append((_SPAN + seq, to))
            return to
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process; returns its Process event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _init(self, process: Process) -> None:
        """Schedule a process's kick-off event (pooled)."""
        pool = self._init_pool
        if pool:
            ev = pool.pop()
            ev.callbacks.append(process._cb)
            self._schedule(ev, URGENT)
        else:
            _Initialize(self, process)

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        seq = self._seq = self._seq + 1
        if delay:
            t = self._now + delay
            if t > self._now:
                heappush(self._queue, (t, priority * _SPAN + seq, event))
                return
            # fell back to "now" (float underflow against a large clock):
            # same-instant handling below keeps (priority, seq) order
        if priority == 1:
            self._bn.append((_SPAN + seq, event))
        elif priority == 0:
            self._bu.append((seq, event))
        else:
            heappush(self._queue, (self._now, priority * _SPAN + seq, event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        if self._bu_head < len(self._bu) or self._bn_head < len(self._bn):
            return self._now
        q = self._queue
        return q[0][0] if q else _INF

    def _pop(self) -> Optional[Event]:
        """Remove and return the next event in (time, priority, seq)
        order, advancing the clock; None when nothing is scheduled."""
        q = self._queue
        bu, bu_head = self._bu, self._bu_head
        bn, bn_head = self._bn, self._bn_head
        if bu_head < len(bu):
            bucket, head, key = bu, bu_head, bu[bu_head][0]
        elif bn_head < len(bn):
            bucket, head, key = bn, bn_head, bn[bn_head][0]
        else:
            if bu_head:
                bu.clear()
                self._bu_head = 0
            if bn_head:
                bn.clear()
                self._bn_head = 0
            if not q:
                return None
            when, _key, event = heappop(q)
            self._now = when
            return event
        # A heap entry at this same instant predates every bucket entry
        # of its own priority but may still outrank the bucket head.
        if q:
            top = q[0]
            if top[0] == self._now and top[1] < key:
                heappop(q)
                event = top[2]
                return event
        entry = bucket[head]
        bucket[head] = None  # drop the ref; cursor-based drain
        if bucket is bu:
            self._bu_head = head + 1
        else:
            self._bn_head = head + 1
        return entry[1]

    def step(self) -> None:
        """Process exactly one event."""
        event = self._pop()
        if event is None:
            raise SimulationError("no scheduled events")
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                if cb is not None:
                    cb(event)
        if event._exception is not None and not event.defused:
            raise event._exception
        # Recycle engine-internal churn the moment it is provably
        # unreferenced: exactly two refs means "this local + the
        # getrefcount argument" — no process, condition, or user code
        # holds the event, so reuse cannot be observed.
        cls = event.__class__
        if cls is Timeout:
            if getrefcount(event) == 2 and \
                    len(self._timeout_pool) < _POOL_MAX:
                callbacks.clear()
                event.callbacks = callbacks  # park the list for reuse
                event._value = None
                event._dead = 0
                self._timeout_pool.append(event)
        elif cls is _Initialize:
            if getrefcount(event) == 2 and \
                    len(self._init_pool) < _POOL_MAX:
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                event._dead = 0
                self._init_pool.append(event)
        elif cls is Event:
            if getrefcount(event) == 2 and \
                    len(self._event_pool) < _POOL_MAX:
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                event._exception = None
                event._dead = 0
                self._event_pool.append(event)

    def _empty(self) -> bool:
        return not (self._queue or self._bu_head < len(self._bu)
                    or self._bn_head < len(self._bn))

    def _drain(self) -> None:
        """Run until nothing is scheduled — the hot full-drain loop.

        Semantically identical to ``while not _empty(): step()`` but with
        pop, dispatch, and recycling fused into one frame so the engine
        pays zero method-call overhead per event. Bucket cursors are
        written back before callbacks run, so callbacks observing
        ``peek()``/scheduling new events see consistent state.
        """
        q = self._queue
        bu, bn = self._bu, self._bn
        pool_t, pool_i = self._timeout_pool, self._init_pool
        pool_e = self._event_pool
        while True:
            # -- pop (mirrors _pop) -----------------------------------
            bu_head, bn_head = self._bu_head, self._bn_head
            event = None
            if bu_head < len(bu):
                bucket, head, key = bu, bu_head, bu[bu_head][0]
            elif bn_head < len(bn):
                bucket, head, key = bn, bn_head, bn[bn_head][0]
            else:
                if bu_head:
                    bu.clear()
                    self._bu_head = 0
                if bn_head:
                    bn.clear()
                    self._bn_head = 0
                if not q:
                    return
                when, _key, event = heappop(q)
                self._now = when
            if event is None:
                if q:
                    top = q[0]
                    if top[0] == self._now and top[1] < key:
                        heappop(q)
                        event = top[2]
                    # drop the peeked tuple in every path — a stale ref
                    # here would defeat the refcount-proven recycling of
                    # the next heap-popped event
                    top = None
                if event is None:
                    event = bucket[head][1]
                    bucket[head] = None
                    if bucket is bu:
                        self._bu_head = head + 1
                    else:
                        self._bn_head = head + 1
                bucket = None
            # -- dispatch (mirrors step) ------------------------------
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for cb in callbacks:
                    if cb is not None:
                        cb(event)
            if event._exception is not None and not event.defused:
                raise event._exception
            cls = event.__class__
            if cls is Timeout:
                if getrefcount(event) == 2 and len(pool_t) < _POOL_MAX:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    event._dead = 0
                    pool_t.append(event)
            elif cls is _Initialize:
                if getrefcount(event) == 2 and len(pool_i) < _POOL_MAX:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    event._dead = 0
                    pool_i.append(event)
            elif cls is Event:
                if getrefcount(event) == 2 and len(pool_e) < _POOL_MAX:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._value = None
                    event._exception = None
                    event._dead = 0
                    pool_e.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a number (absolute simulated time) or an event —
        in the latter case the event's value is returned.
        """
        stop_event: Optional[Event] = None
        deadline = _INF
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self._now})")

        if stop_event is None and deadline == _INF:
            self._drain()
            return None
        step = self.step

        while not self._empty():
            if stop_event is not None and stop_event.callbacks is None:
                return stop_event.value
            if self.peek() > deadline:
                self._now = deadline
                return None
            step()

        if stop_event is not None:
            if stop_event.callbacks is None:
                return stop_event.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired")
        if deadline != _INF:
            self._now = deadline
        return None
