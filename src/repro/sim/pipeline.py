"""Bounded-window fan-out: the data path's pipelining primitive.

:func:`bounded_fanout` drives a list of process *factories* keeping at
most ``max_inflight`` of them running at once — the sliding-window
request issue the paper's parallel PFS readers rely on. Results come
back in input order regardless of completion order.

``max_inflight <= 0`` (or a window at least as large as the input) is
the unbounded fan-out: every process is created up front and awaited
with a single :class:`AllOf`, which is the legacy shape callers used
before windows existed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Sequence

from repro.sim.engine import AllOf, AnyOf, Environment, Event

__all__ = ["FanoutWindow", "bounded_fanout"]


def bounded_fanout(env: Environment, factories: Sequence[Callable],
                   max_inflight: int = 0):
    """Run ``factories`` (thunks returning DES generators) with at most
    ``max_inflight`` concurrently in flight. DES process returning the
    results in input order.

    Use with ``yield from`` to keep the window loop inside the calling
    process, or wrap in ``env.process(...)`` to run it standalone. A
    failing constituent propagates its exception (fail-fast, like
    :class:`AllOf`); processes already in flight keep running.
    """
    factories = list(factories)
    if not factories:
        return []
    if max_inflight <= 0 or max_inflight >= len(factories):
        procs = [env.process(factory()) for factory in factories]
        done = yield AllOf(env, procs)
        return [done[proc] for proc in procs]
    results: list = [None] * len(factories)
    inflight: dict = {}  # Process -> input index
    issued = 0
    while issued < len(factories) or inflight:
        while issued < len(factories) and len(inflight) < max_inflight:
            proc = env.process(factories[issued]())
            inflight[proc] = issued
            issued += 1
        yield AnyOf(env, list(inflight))
        finished = [proc for proc in inflight if proc.triggered]
        for proc in finished:
            results[inflight.pop(proc)] = proc.value
    return results


class FanoutWindow:
    """An *open-ended* bounded window: :func:`bounded_fanout` for work
    that is discovered over time rather than known up front.

    Producers :meth:`submit` process factories as work appears (e.g. a
    reducer submitting a fetch for each map output the moment it
    commits); at most ``max_inflight`` run concurrently, the rest queue.
    After :meth:`close`, :meth:`drain` (a DES generator — use with
    ``yield from``) waits for everything and returns results in
    submission order. A failing constituent is re-raised from
    :meth:`drain` at the first opportunity (fail-fast); siblings
    already in flight keep running, like :func:`bounded_fanout`.

    ``max_inflight <= 0`` runs everything submitted immediately
    (unbounded), mirroring the legacy fan-out shape.
    """

    def __init__(self, env: Environment, max_inflight: int = 0):
        self._env = env
        self._max = max_inflight
        self._queue: deque = deque()  # (index, factory) not yet started
        self._active = 0
        self._results: list = []
        self._completed = 0
        self._closed = False
        self._failure: Optional[BaseException] = None
        self._stir: Optional[Event] = None  # wakes a blocked drain()

    @property
    def submitted(self) -> int:
        return len(self._results)

    def submit(self, factory: Callable) -> int:
        """Queue one process factory; returns its result index."""
        if self._closed:
            raise RuntimeError("submit() after close()")
        index = len(self._results)
        self._results.append(None)
        self._queue.append((index, factory))
        self._fill()
        return index

    def close(self) -> None:
        """No more submissions; lets :meth:`drain` finish."""
        self._closed = True
        self._wake()

    def _fill(self) -> None:
        while self._queue and (self._max <= 0 or self._active < self._max):
            index, factory = self._queue.popleft()
            self._active += 1
            self._env.process(self._run(index, factory))

    def _wake(self) -> None:
        if self._stir is not None and not self._stir.triggered:
            self._stir.succeed()

    def _run(self, index: int, factory: Callable):
        # Failures are captured, not raised, so an un-watched fetch
        # cannot escape env.step() while the consumer waits elsewhere;
        # drain() re-raises the first one.
        try:
            self._results[index] = yield from factory()
        except BaseException as exc:
            if self._failure is None:
                self._failure = exc
        finally:
            self._active -= 1
            self._completed += 1
            self._fill()
            self._wake()

    def drain(self):
        """DES generator: block until closed and fully completed, then
        return all results in submission order."""
        while True:
            if self._failure is not None:
                raise self._failure
            if self._closed and not self._queue \
                    and self._completed == len(self._results):
                return list(self._results)
            self._stir = Event(self._env)
            yield self._stir
            self._stir = None
