"""Bounded-window fan-out: the data path's pipelining primitive.

:func:`bounded_fanout` drives a list of process *factories* keeping at
most ``max_inflight`` of them running at once — the sliding-window
request issue the paper's parallel PFS readers rely on. Results come
back in input order regardless of completion order.

``max_inflight <= 0`` (or a window at least as large as the input) is
the unbounded fan-out: every process is created up front and awaited
with a single :class:`AllOf`, which is the legacy shape callers used
before windows existed.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.engine import AllOf, AnyOf, Environment

__all__ = ["bounded_fanout"]


def bounded_fanout(env: Environment, factories: Sequence[Callable],
                   max_inflight: int = 0):
    """Run ``factories`` (thunks returning DES generators) with at most
    ``max_inflight`` concurrently in flight. DES process returning the
    results in input order.

    Use with ``yield from`` to keep the window loop inside the calling
    process, or wrap in ``env.process(...)`` to run it standalone. A
    failing constituent propagates its exception (fail-fast, like
    :class:`AllOf`); processes already in flight keep running.
    """
    factories = list(factories)
    if not factories:
        return []
    if max_inflight <= 0 or max_inflight >= len(factories):
        procs = [env.process(factory()) for factory in factories]
        done = yield AllOf(env, procs)
        return [done[proc] for proc in procs]
    results: list = [None] * len(factories)
    inflight: dict = {}  # Process -> input index
    issued = 0
    while issued < len(factories) or inflight:
        while issued < len(factories) and len(inflight) < max_inflight:
            proc = env.process(factories[issued]())
            inflight[proc] = issued
            issued += 1
        yield AnyOf(env, list(inflight))
        finished = [proc for proc in inflight if proc.triggered]
        for proc in finished:
            results[inflight.pop(proc)] = proc.value
    return results
