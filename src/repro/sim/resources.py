"""Shared resources for the simulation kernel.

- :class:`Resource` — counted slots with a FIFO wait queue (CPU task slots).
- :class:`Container` — continuous quantity (memory bytes).
- :class:`Store` — FIFO object queue (message channels).
- :class:`SharedBandwidth` — a processor-sharing pipe: ``capacity`` bytes/s
  divided equally among all in-flight transfers. Disks and network links are
  instances of this; contention effects in the paper's figures emerge from
  it rather than being hard-coded.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.sim.engine import URGENT, Environment, Event, SimulationError

__all__ = ["Container", "FLUID_TRANSFERS", "Resource", "SharedBandwidth",
           "Store"]

#: Process-wide default for :class:`SharedBandwidth`'s fluid-approximation
#: knob. Off by default: every pipe runs the exact processor-sharing
#: machinery and event order is bit-identical to the frozen legacy engine.
#: Flip to ``True`` (or pass ``fluid=True`` per pipe) to collapse
#: uncontended steady transfers into one closed-form completion event.
FLUID_TRANSFERS = False


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        #: simulated time the request joined the queue — grant time minus
        #: this is the queue wait the metrics layer samples
        self.requested_at = resource.env.now
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical slots handed out FIFO."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()
        #: Optional callable(wait_seconds) invoked at every grant — the
        #: hook the metrics layer feeds queue-wait percentiles through.
        self.wait_observer = None

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Return an event that fires when a slot is granted."""
        return Request(self)

    def _enqueue(self, req: Request) -> None:
        if len(self._users) < self.capacity and not self._waiting:
            self._users.add(req)
            if self.wait_observer is not None:
                self.wait_observer(0.0)
            req.succeed(priority=URGENT)
        else:
            self._waiting.append(req)

    def release(self, req: Request) -> None:
        """Free the slot held by ``req``; wakes the next waiter, if any."""
        if req in self._users:
            self._users.remove(req)
        elif req in self._waiting:  # cancelled before being granted
            self._waiting.remove(req)
            return
        else:
            raise SimulationError("release of a request that holds no slot")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            if self.wait_observer is not None:
                self.wait_observer(self.env.now - nxt.requested_at)
            nxt.succeed(priority=URGENT)


class Container:
    """A continuous quantity with blocking ``get`` and non-blocking ``put``."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0, name: str = ""):
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed(priority=URGENT)
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed(priority=URGENT)
                    progress = True


class Store:
    """FIFO queue of Python objects with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = ""):
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self._items) < self.capacity:
                ev, item = self._putters.popleft()
                self._items.append(item)
                ev.succeed(priority=URGENT)
                progress = True
            while self._getters and self._items:
                ev = self._getters.popleft()
                ev.succeed(self._items.popleft(), priority=URGENT)
                progress = True


class _Transfer:
    __slots__ = ("finish_tag", "event", "total", "seq")

    def __init__(self, nbytes: float, event: Event, finish_tag: float,
                 seq: int):
        self.total = float(nbytes)
        self.event = event
        #: virtual-time service level at which this transfer completes
        self.finish_tag = finish_tag
        #: admission order, for deterministic completion tie-breaks
        self.seq = seq


class SharedBandwidth:
    """Processor-sharing pipe: ``capacity`` bytes/s split across transfers.

    ``transfer(nbytes)`` returns an event that fires when the bytes have
    drained through the pipe. While *n* transfers are active each proceeds
    at ``capacity / n``; start/finish of any transfer re-apportions the
    remainder, which is the standard fluid model for disk and NIC
    contention.

    Bookkeeping uses the virtual-time formulation: one cumulative
    per-transfer service counter advances at ``capacity / n`` bytes per
    second, and each transfer carries a fixed finish tag (counter at
    admission + its bytes) in a heap. A membership change is O(log n) —
    no per-transfer rescan — while the simulated timings are identical
    to walking every active transfer, since a transfer's remaining bytes
    are always ``finish_tag - counter``.

    ``latency`` adds a fixed delay before the transfer joins the pipe —
    used for per-request seek/RPC overheads.

    ``fluid`` (default: module-level :data:`FLUID_TRANSFERS`, off) is the
    opt-in fluid approximation: a transfer admitted to an *idle* pipe is
    not entered into the PS heap at all — one closed-form completion
    timeout (``nbytes / capacity``) fires its done event. If a second
    transfer arrives first, the in-flight fluid transfer re-expands into
    the PS machinery with its exact remaining bytes and the pending
    closed-form completion is invalidated, so contention is still modelled
    precisely. For uncontended transfers the fluid path emits the same
    two events at the same times and sequence points as the PS path, so
    results are identical; under contention the completion *ordering
    within a timestamp* may legally differ (see DESIGN.md §13).
    """

    def __init__(self, env: Environment, capacity: float, name: str = "",
                 fluid: Optional[bool] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        #: fluid-approximation knob (mutable; consulted per admission)
        self.fluid = FLUID_TRANSFERS if fluid is None else bool(fluid)
        #: completion event of the in-flight fluid transfer, if any.
        #: Invariant: non-None implies the PS heap is empty.
        self._fluid_done: Optional[Event] = None
        self._fluid_nbytes = 0.0
        self._fluid_start = 0.0
        #: busy_time already credited for the in-flight fluid transfer
        self._fluid_accrued = 0.0
        self._fluid_gen = 0
        #: cumulative per-transfer service, in bytes (virtual time)
        self._vtime = 0.0
        #: (finish_tag, seq, transfer) min-heap of active transfers
        self._heap: list[tuple[float, int, _Transfer]] = []
        self._seq = 0
        self._last_update = env.now
        self._generation = 0
        #: Total bytes ever pushed through (for utilisation statistics).
        self.bytes_moved = 0.0
        #: Simulated seconds with at least one transfer in flight.
        self.busy_time = 0.0
        #: Optional callable(in_flight_count) invoked after every
        #: membership change — the hook the metrics layer samples through.
        self.observer = None

    @property
    def n_active(self) -> int:
        return len(self._heap) + (self._fluid_done is not None)

    def transfer(self, nbytes: float, latency: float = 0.0) -> Event:
        """Move ``nbytes`` through the pipe; returns the completion event."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = Event(self.env)
        if latency > 0:
            delay = self.env.timeout(latency)
            delay.callbacks.append(lambda _ev: self._admit(nbytes, done))
        else:
            self._admit(nbytes, done)
        return done

    def _admit(self, nbytes: float, done: Event) -> None:
        self.bytes_moved += nbytes
        if nbytes == 0:
            done.succeed()
            return
        if self._fluid_done is not None:
            self._collapse_fluid()
        elif self.fluid and not self._heap:
            # Idle pipe: one closed-form completion event. Mirrors the
            # PS path exactly for a lone transfer — same timeout delay
            # (vtime resets to 0 when idle, so delay == nbytes/capacity),
            # same observer call, same URGENT done — hence identical
            # event sequence when no second transfer arrives.
            self._fluid_done = done
            self._fluid_nbytes = float(nbytes)
            self._fluid_start = self.env.now
            self._fluid_accrued = 0.0
            self._fluid_gen += 1
            gen = self._fluid_gen
            if self.observer is not None:
                self.observer(1)
            wake = self.env.timeout(nbytes / self.capacity)
            wake.callbacks.append(lambda _ev: self._fluid_complete(gen))
            return
        self._advance()
        self._seq += 1
        xfer = _Transfer(nbytes, done, self._vtime + float(nbytes),
                         self._seq)
        heapq.heappush(self._heap, (xfer.finish_tag, xfer.seq, xfer))
        if self.observer is not None:
            self.observer(len(self._heap))
        self._reschedule()

    def _advance(self) -> None:
        """Accrue service since the last membership change."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if self._fluid_done is not None:
            acc = (now - self._fluid_start) - self._fluid_accrued
            if acc > 0:
                self.busy_time += acc
                self._fluid_accrued = now - self._fluid_start
        if elapsed <= 0 or not self._heap:
            return
        self.busy_time += elapsed
        rate = self.capacity / len(self._heap)
        self._vtime += elapsed * rate

    def _fluid_complete(self, generation: int) -> None:
        """Closed-form completion of an uncontended fluid transfer."""
        if generation != self._fluid_gen or self._fluid_done is None:
            return  # re-expanded into the PS heap before completing
        now = self.env.now
        self.busy_time += (now - self._fluid_start) - self._fluid_accrued
        self._last_update = now
        done = self._fluid_done
        self._fluid_done = None
        if self.observer is not None:
            self.observer(0)
        done.succeed(priority=URGENT)

    def _collapse_fluid(self) -> None:
        """Re-expand the in-flight fluid transfer into the PS machinery.

        Called when a second transfer arrives: the fluid transfer joins
        the heap with its exact remaining bytes, the pending closed-form
        completion is invalidated, and contention proceeds under the
        precise processor-sharing model.
        """
        now = self.env.now
        elapsed = now - self._fluid_start
        self.busy_time += elapsed - self._fluid_accrued
        drained = elapsed * self.capacity
        remaining = max(self._fluid_nbytes - drained, 0.0)
        done = self._fluid_done
        self._fluid_done = None
        self._fluid_gen += 1  # pending closed-form completion is now stale
        self._last_update = now
        self._vtime = 0.0
        self._seq += 1
        xfer = _Transfer(remaining, done, self._vtime + remaining, self._seq)
        heapq.heappush(self._heap, (xfer.finish_tag, xfer.seq, xfer))
        # No observer call here: the admission that triggered the collapse
        # reports the new in-flight count right after pushing its transfer.

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._generation += 1
        if not self._heap:
            # Idle pipe: restart virtual time at zero so a lone transfer's
            # arithmetic (tag - vtime == nbytes - drained) matches the
            # per-transfer subtraction bit for bit, and the counter never
            # grows without bound across a long run.
            self._vtime = 0.0
            return
        gen = self._generation
        rate = self.capacity / len(self._heap)
        min_remaining = max(0.0, self._heap[0][0] - self._vtime)
        delay = min_remaining / rate
        wake = self.env.timeout(delay)
        wake.callbacks.append(lambda _ev: self._on_wake(gen))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later membership change
        self._advance()
        # Float quantization can leave a sub-byte residue whose drain time
        # underflows against a large `now` (now + delay == now), which
        # would livelock. An unchanged generation means no transfer joined
        # or left since this wake was scheduled, so the transfer(s) it was
        # scheduled for have mathematically finished: force-finish the
        # minimum-remaining transfer when the epsilon test misses it.
        eps = 1e-6
        finished: list[_Transfer] = []
        while self._heap and self._heap[0][0] - self._vtime <= eps:
            finished.append(heapq.heappop(self._heap)[2])
        if not finished and self._heap:
            floor = (self._heap[0][0] - self._vtime) + eps
            while self._heap and self._heap[0][0] - self._vtime <= floor:
                finished.append(heapq.heappop(self._heap)[2])
        if finished and self.observer is not None:
            self.observer(len(self._heap))
        for xfer in sorted(finished, key=lambda x: x.seq):
            xfer.event.succeed(priority=URGENT)
        self._reschedule()

    def time_for(self, nbytes: float) -> float:
        """Uncontended transfer time — calibration/diagnostics helper."""
        return nbytes / self.capacity

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of [since, now] this pipe had transfers in flight.

        Based on busy time (a pipe halved between two transfers is still
        fully busy); an idle window counts against utilisation.
        """
        self._advance()
        span = self.env.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time / span)
