"""Measurement helpers for simulated experiments.

:class:`Monitor` records ``(time, value)`` samples and computes summary
statistics including the time-weighted average (the right mean for
utilisation-style series). :class:`IntervalTimer` accumulates named
durations — the experiment harness uses it for the Read/Convert/Plot
decomposition of Fig. 7.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Environment

__all__ = ["IntervalTimer", "Monitor"]


class Monitor:
    """Time-stamped sample recorder."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, value: float) -> None:
        """Record ``value`` at the current simulated time."""
        self.times.append(self.env.now)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        """Plain (unweighted) mean of recorded values."""
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return min(self.values)

    @property
    def maximum(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return max(self.values)

    @property
    def last(self) -> float:
        """The most recently recorded value."""
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return self.values[-1]

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1))

    def time_average(self, until: Optional[float] = None) -> float:
        """Step-function time-weighted mean of the series.

        Each recorded value is held until the next sample; the final value
        is held until ``until`` (default: current simulated time).
        """
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        end = self.env.now if until is None else until
        total = 0.0
        span = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else end
            dt = max(0.0, t_next - t)
            total += v * dt
            span += dt
        if span == 0:
            return self.values[-1]
        return total / span


class IntervalTimer:
    """Accumulates named durations across a simulated run.

    Usage inside a process::

        t0 = env.now
        yield disk.transfer(nbytes)
        timer.add("read", env.now - t0)
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for {phase!r}")
        self.totals[phase] = self.totals.get(phase, 0.0) + duration
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def total(self, phase: str) -> float:
        return self.totals.get(phase, 0.0)

    def count(self, phase: str) -> int:
        return self.counts.get(phase, 0)

    def mean(self, phase: str) -> float:
        n = self.counts.get(phase, 0)
        if n == 0:
            raise ValueError(f"no samples for phase {phase!r}")
        return self.totals[phase] / n

    def merge(self, other: "IntervalTimer") -> None:
        """Fold another timer's accumulations into this one."""
        for phase, total in other.totals.items():
            self.totals[phase] = self.totals.get(phase, 0.0) + total
            self.counts[phase] = (
                self.counts.get(phase, 0) + other.counts[phase])

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)
