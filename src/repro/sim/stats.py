"""Measurement helpers for simulated experiments.

:class:`Monitor` records ``(time, value)`` samples and computes summary
statistics including the time-weighted average (the right mean for
utilisation-style series). :class:`IntervalTimer` accumulates named
durations — the experiment harness uses it for the Read/Convert/Plot
decomposition of Fig. 7.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sim.columns import FloatColumn
from repro.sim.engine import Environment

__all__ = ["IntervalTimer", "Monitor"]


class Monitor:
    """Time-stamped sample recorder, columnar-backed.

    Samples land in two chunked :class:`~repro.sim.columns.FloatColumn`
    stores (no per-sample tuples or objects); statistics are re-derived
    from the columns with vectorised numpy. The ``times``/``values``
    views materialise plain Python lists, matching the historical
    list-based contract bit for bit (float64 round-trips exactly).
    """

    __slots__ = ("env", "name", "_times", "_values", "_tbuf", "_vbuf",
                 "_flush_at")

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._times = FloatColumn()
        self._values = FloatColumn()
        # Cached buffer references for the recording hot path —
        # FloatColumn.buf identity is stable across flushes by contract.
        self._tbuf = self._times.buf
        self._vbuf = self._values.buf
        self._flush_at = self._times.flush_at

    def record(self, value: float) -> None:
        """Record ``value`` at the current simulated time."""
        tbuf = self._tbuf
        tbuf.append(self.env._now)
        self._vbuf.append(float(value))
        if len(tbuf) >= self._flush_at:
            self._times.flush()
            self._values.flush()

    def record_many(self, times, values) -> None:
        """Bulk-ingest aligned ``times``/``values`` sequences.

        Accepts any float iterables (numpy arrays take the no-per-element
        chunk path). Timestamps must be non-decreasing and start at or
        after the last recorded sample for ``time_average`` to stay
        meaningful — callers batching per-event samples already satisfy
        this.
        """
        if isinstance(times, np.ndarray):
            if len(times) != len(values):
                raise ValueError("times and values must align")
            self._times.extend_array(times)
            self._values.extend_array(np.asarray(values, dtype=np.float64))
            return
        times = [float(t) for t in times]
        values = [float(v) for v in values]
        if len(times) != len(values):
            raise ValueError("times and values must align")
        self._times.extend(times)
        self._values.extend(values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> list[float]:
        """Sample timestamps as a plain list (materialised on demand)."""
        return self._times.tolist()

    @property
    def values(self) -> list[float]:
        """Sample values as a plain list (materialised on demand)."""
        return self._values.tolist()

    @property
    def mean(self) -> float:
        """Plain (unweighted) mean of recorded values."""
        if not len(self._values):
            raise ValueError(f"monitor {self.name!r} has no samples")
        arr = self._values.array()
        return float(arr.sum() / len(arr))

    @property
    def minimum(self) -> float:
        if not len(self._values):
            raise ValueError(f"monitor {self.name!r} has no samples")
        return float(self._values.array().min())

    @property
    def maximum(self) -> float:
        if not len(self._values):
            raise ValueError(f"monitor {self.name!r} has no samples")
        return float(self._values.array().max())

    @property
    def last(self) -> float:
        """The most recently recorded value."""
        if not len(self._values):
            raise ValueError(f"monitor {self.name!r} has no samples")
        return self._values.last()

    @property
    def stdev(self) -> float:
        if len(self._values) < 2:
            return 0.0
        arr = self._values.array()
        mu = arr.sum() / len(arr)
        return math.sqrt(float(((arr - mu) ** 2).sum()) / (len(arr) - 1))

    def time_average(self, until: Optional[float] = None) -> float:
        """Step-function time-weighted mean of the series.

        Each recorded value is held until the next sample; the final value
        is held until ``until`` (default: current simulated time).
        Computed as one vectorised dot product over the columns.
        """
        if not len(self._values):
            raise ValueError(f"monitor {self.name!r} has no samples")
        end = self.env.now if until is None else until
        times = self._times.array()
        values = self._values.array()
        t_next = np.empty_like(times)
        t_next[:-1] = times[1:]
        t_next[-1] = end
        dt = np.maximum(0.0, t_next - times)
        span = float(dt.sum())
        if span == 0:
            return float(values[-1])
        return float(np.dot(values, dt)) / span


class IntervalTimer:
    """Accumulates named durations across a simulated run.

    Usage inside a process::

        t0 = env.now
        yield disk.transfer(nbytes)
        timer.add("read", env.now - t0)
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for {phase!r}")
        self.totals[phase] = self.totals.get(phase, 0.0) + duration
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def total(self, phase: str) -> float:
        return self.totals.get(phase, 0.0)

    def count(self, phase: str) -> int:
        return self.counts.get(phase, 0)

    def mean(self, phase: str) -> float:
        n = self.counts.get(phase, 0)
        if n == 0:
            raise ValueError(f"no samples for phase {phase!r}")
        return self.totals[phase] / n

    def merge(self, other: "IntervalTimer") -> None:
        """Fold another timer's accumulations into this one."""
        for phase, total in other.totals.items():
            self.totals[phase] = self.totals.get(phase, 0.0) + total
            self.counts[phase] = (
                self.counts.get(phase, 0) + other.counts[phase])

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)
