"""Spark-like engine with a SciDP data source (the paper's future work).

§VII: "SciDP can be extended to support other BD frameworks, such as
Spark" — and the related-work systems SciSpark and H5Spark teach Spark
to read scientific data *on HDFS*. This package builds a miniature
Spark: lazy RDD lineage, narrow transformations pipelined inside tasks,
stages split at shuffle dependencies, locality-aware executors on the
simulated cluster — and, through :meth:`Context.scidp_variable`, an RDD
whose partitions are SciDP dummy blocks read straight off the PFS,
completing the paper's integration story for a second framework.

    ctx = Context(env, nodes, hdfs, network, scidp=scidp)
    rdd = ctx.scidp_variable("/nuwrf", variables=["QR"])
    peaks = (rdd.map(lambda kv: (kv[0][1], float(kv[1].max())))
                .reduce_by_key(max)
                .collect())
"""

from repro.sparklike.rdd import RDD, SparkLikeError
from repro.sparklike.context import Context

__all__ = ["Context", "RDD", "SparkLikeError"]
