"""Spark-like engine with a SciDP data source (the paper's future work).

§VII: "SciDP can be extended to support other BD frameworks, such as
Spark" — and the related-work systems SciSpark and H5Spark teach Spark
to read scientific data *on HDFS*. This package builds a miniature
Spark: lazy RDD lineage, narrow transformations fused inside tasks,
stages cut at shuffle dependencies by a DAG scheduler that tracks
partition states, a byte-accounted ``cache()``/``persist()`` tier with
spill to shared storage, lineage-based recovery from executor loss —
and, through :meth:`Context.scidp_variable`, an RDD whose partitions
are SciDP dummy blocks read straight off the PFS, completing the
paper's integration story for a second framework.

    ctx = Context(env, nodes, hdfs, network, scidp=scidp)
    rdd = ctx.scidp_variable("/nuwrf", variables=["QR"])
    peaks = (rdd.map(lambda kv: (kv[0][1], float(kv[1].max())))
                .reduce_by_key(max)
                .collect())

The frozen v1 eager engine lives in :mod:`repro.sparklike._legacy`
(import guarded by the layering lint: tests and benches only) as the
twin-world reference — a default-knob v2 context reproduces its event
trace at 1e-9.
"""

from repro.sparklike.cache import MEMORY_AND_DISK, MEMORY_ONLY
from repro.sparklike.rdd import RDD, SparkLikeError
from repro.sparklike.context import Context

__all__ = ["Context", "MEMORY_AND_DISK", "MEMORY_ONLY", "RDD",
           "SparkLikeError"]
