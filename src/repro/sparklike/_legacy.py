"""Frozen v1 Spark-like engine: eager per-action execution.

This is the pre-DAG engine exactly as it shipped — transformations
built lineage but every action re-walked the chain with nested
per-operator task processes, shuffle outputs lived on a plain list, and
caching was an unbounded cluster-wide dict. The lazy DAG engine
(:mod:`repro.sparklike.rdd` / :mod:`repro.sparklike.scheduler`) pins
its default-knob results and simulated timings against this module at
1e-9, the same twin-world guard-rail the engine/obs/shuffle/write
refactors used.

Only the twin-world tests and the engine-vs-engine bench may import it
(enforced by the layering lint); it keeps its direct
``repro.core.reader`` import because the storage-isolation rule for the
live engine explicitly exempts this frozen copy.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.reader import PFSReader
from repro.mapreduce.shuffle import (
    estimate_size,
    group_sorted,
    hash_partition,
    sort_run,
)
from repro.sim import AllOf

__all__ = ["LegacyContext", "LegacyRDD", "LegacyShuffleDependency",
           "LegacyTaskContext", "SparkLikeError"]


class SparkLikeError(Exception):
    """Engine-level errors."""


class LegacyShuffleDependency:
    """A wide dependency: the child stage needs a hash repartition of the
    parent's output."""

    def __init__(self, parent: "LegacyRDD", n_partitions: int):
        self.parent = parent
        self.n_partitions = n_partitions
        #: the _ShuffledRDD that owns the partitioning logic (set by it)
        self.child: Optional["LegacyRDD"] = None


class LegacyRDD:
    """A lazy, partitioned dataset (v1 engine).

    Subclasses implement :meth:`compute` — a DES process yielding the
    records of one partition — and :meth:`partition_locations` for
    locality.
    """

    def __init__(self, ctx, n_partitions: int,
                 shuffle_dep: Optional[LegacyShuffleDependency] = None,
                 parent: Optional["LegacyRDD"] = None):
        self.ctx = ctx
        self.n_partitions = n_partitions
        self.shuffle_dep = shuffle_dep
        self.parent = parent
        self._id = ctx._next_rdd_id()
        self._cached = False

    # -- to be provided by subclasses -------------------------------------
    def compute(self, index: int, task):
        """DES process returning the partition's record list."""
        raise NotImplementedError  # pragma: no cover

    # -- caching -----------------------------------------------------------
    def cache(self) -> "LegacyRDD":
        """Persist computed partitions in executor memory, like Spark's
        ``cache()``: later actions reuse them instead of recomputing,
        paying only a transfer when the partition lives on another
        node."""
        self._cached = True
        return self

    def iterator(self, index: int, task):
        """Cache-aware access to one partition. DES process."""
        if self._cached:
            hit = self.ctx._rdd_cache.get((self._id, index))
            if hit is not None:
                node, records = hit
                self.ctx.metrics["cache_hits"] = \
                    self.ctx.metrics.get("cache_hits", 0) + 1
                if node is not task.node:
                    size = estimate_size(records)
                    if size:
                        yield self.ctx.network.transfer(
                            node, task.node, size)
                return records
        records = yield self.ctx.env.process(self.compute(index, task))
        if self._cached:
            self.ctx._rdd_cache[(self._id, index)] = (task.node, records)
        return records

    def partition_locations(self, index: int) -> list[str]:
        """Preferred executor nodes for this partition."""
        if self.parent is not None:
            return self.parent.partition_locations(index)
        return []

    # -- narrow transformations --------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "LegacyRDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [fn(r) for r in records])

    def flat_map(self, fn: Callable[[Any], Any]) -> "LegacyRDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [o for r in records for o in fn(r)])

    def filter(self, predicate: Callable[[Any], bool]) -> "LegacyRDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [r for r in records
                                         if predicate(r)])

    def map_partitions(self,
                       fn: Callable[[Any, list], list]) -> "LegacyRDD":
        return _MapPartitionsRDD(self, fn)

    def key_by(self, fn: Callable[[Any], Any]) -> "LegacyRDD":
        return self.map(lambda r: (fn(r), r))

    def map_values(self, fn: Callable[[Any], Any]) -> "LegacyRDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    # -- wide transformations ---------------------------------------------
    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      n_partitions: Optional[int] = None) -> "LegacyRDD":
        return _ShuffledRDD(self, n_partitions, combiner=fn)

    def group_by_key(self,
                     n_partitions: Optional[int] = None) -> "LegacyRDD":
        return _ShuffledRDD(self, n_partitions, combiner=None)

    # -- actions -----------------------------------------------------------
    def collect(self) -> list:
        return self.ctx._run_job(self)

    def count(self) -> int:
        counted = _MapPartitionsRDD(
            self, lambda task, records: [len(records)])
        return sum(counted.collect())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        partials = _MapPartitionsRDD(
            self, lambda task, records: (
                [_fold(records, fn)] if records else []))
        values = partials.collect()
        if not values:
            raise SparkLikeError("reduce of an empty RDD")
        return _fold(values, fn)

    def take(self, n: int) -> list:
        if n < 0:
            raise SparkLikeError("take(n) needs n >= 0")
        return self.collect()[:n]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} id={self._id} "
                f"partitions={self.n_partitions}>")


def _fold(values, fn):
    it = iter(values)
    acc = next(it)
    for value in it:
        acc = fn(acc, value)
    return acc


class _MapPartitionsRDD(LegacyRDD):
    """Narrow transformation, pipelined inside the parent's task."""

    def __init__(self, parent: LegacyRDD, fn: Callable):
        super().__init__(parent.ctx, parent.n_partitions, parent=parent)
        self.fn = fn

    def compute(self, index: int, task):
        records = yield self.ctx.env.process(
            self.parent.iterator(index, task))
        out = self.fn(task, records)
        task.charge(len(records) * self.ctx.record_cost, "compute")
        return out


class _ShuffledRDD(LegacyRDD):
    """Wide transformation: introduces a stage boundary."""

    def __init__(self, parent: LegacyRDD, n_partitions: Optional[int],
                 combiner: Optional[Callable]):
        n = n_partitions or parent.ctx.default_parallelism
        super().__init__(parent.ctx, n,
                         shuffle_dep=LegacyShuffleDependency(parent, n))
        self.shuffle_dep.child = self
        self.combiner = combiner

    def partition_locations(self, index: int) -> list[str]:
        return []  # reducer-side partitions have no locality

    def map_side_partition(self, records: list) -> list[list]:
        buckets: list[list] = [[] for _ in range(self.n_partitions)]
        for key, value in records:
            buckets[hash_partition(key, self.n_partitions)].append(
                (key, value))
        if self.combiner is not None:
            for i, bucket in enumerate(buckets):
                combined = []
                for key, values in group_sorted(sort_run(bucket)):
                    combined.append((key, _fold(values, self.combiner)))
                buckets[i] = combined
        return buckets

    def merge(self, runs: list[list]) -> list:
        merged = sort_run([kv for run in runs for kv in run])
        out = []
        for key, values in group_sorted(merged):
            if self.combiner is not None:
                out.append((key, _fold(values, self.combiner)))
            else:
                out.append((key, values))
        return out

    def compute(self, index: int, task):
        runs = yield self.ctx.env.process(
            task.fetch_shuffle(self.shuffle_dep, index))
        out = self.merge(runs)
        task.charge(sum(len(r) for r in runs) * self.ctx.record_cost,
                    "merge")
        return out


class LegacyTaskContext:
    """What RDD compute chains see inside one executor task."""

    def __init__(self, ctx: "LegacyContext", node, stage_id: int,
                 index: int):
        self.ctx = ctx
        self.node = node
        self.stage_id = stage_id
        self.index = index
        self._charges: dict[str, float] = {}

    def charge(self, seconds: float, phase: str = "compute") -> None:
        if seconds < 0:
            raise SparkLikeError("charge must be >= 0")
        self._charges[phase] = self._charges.get(phase, 0.0) + seconds

    def take_charges(self) -> dict[str, float]:
        charges, self._charges = self._charges, {}
        return charges

    def fetch_shuffle(self, dep: LegacyShuffleDependency, index: int):
        """Pull bucket ``index`` from every map output. DES process."""
        outputs = self.ctx._shuffle_outputs[id(dep)]
        runs = []
        transfers = []
        for node, buckets in outputs:
            bucket = buckets[index]
            runs.append(bucket)
            size = estimate_size(bucket)
            if size and node is not self.node:
                transfers.append(self.ctx.network.transfer(
                    node, self.node, size))
        if transfers:
            yield AllOf(self.ctx.env, transfers)
        return runs


class _ParallelRDD(LegacyRDD):
    """Driver-provided data split into partitions."""

    def __init__(self, ctx, data: list, n_partitions: int):
        super().__init__(ctx, n_partitions)
        share = -(-len(data) // n_partitions) if data else 1
        self.slices = [
            data[i * share:(i + 1) * share] for i in range(n_partitions)
        ]

    def compute(self, index: int, task):
        # Driver data is shipped to the executor.
        size = estimate_size(self.slices[index])
        if size:
            yield self.ctx.network.transfer(
                self.ctx.driver_node, task.node, size)
        return list(self.slices[index])


class _TextFileRDD(LegacyRDD):
    """One partition per storage block; records are whole text lines."""

    def __init__(self, ctx, path: str):
        storage = ctx.storage
        partitions = []  # (file_blocks, position within file)
        for file_path in (storage.listdir(path) or [path]):
            file_blocks = storage.get_blocks(file_path)
            for i in range(len(file_blocks)):
                partitions.append((file_blocks, i))
        if not partitions:
            raise SparkLikeError(f"no input at {path!r}")
        super().__init__(ctx, len(partitions))
        self.partitions = partitions

    def partition_locations(self, index: int) -> list[str]:
        _blocks, i = self.partitions[index]
        return list(_blocks[i].locations)

    def compute(self, index: int, task):
        blocks, i = self.partitions[index]
        client = self.ctx.storage.client(task.node)
        data = yield self.ctx.env.process(client.read_block(blocks[i]))

        head = 0
        if i > 0:
            prev = blocks[i - 1]
            last = yield self.ctx.env.process(
                client.read_block(prev, prev.length - 1, 1))
            if last != b"\n":
                newline = data.find(b"\n")
                if newline < 0:
                    return []  # mid-line of one huge record
                head = newline + 1

        tail = data
        if i + 1 < len(blocks) and not data.endswith(b"\n"):
            extra = b""
            for nxt in blocks[i + 1:]:
                piece = yield self.ctx.env.process(
                    client.read_block(nxt, 0, min(1024, nxt.length)))
                newline = piece.find(b"\n")
                if newline >= 0:
                    extra += piece[:newline]
                    break
                extra += piece
            tail = data + extra
        return tail[head:].splitlines()


class _SciDPRDD(LegacyRDD):
    """One partition per SciDP dummy block: the PFS-direct source."""

    def __init__(self, ctx, pfs_path: str,
                 variables: Optional[list[str]] = None):
        if ctx.scidp is None:
            raise SparkLikeError("context has no SciDP runtime attached")
        proc = ctx.env.process(
            ctx.scidp.map_input(pfs_path, variables=variables))
        ctx.env.run()
        entries = proc.value
        self.blocks = [
            (virtual_path, block)
            for virtual_path, blocks in entries for block in blocks
        ]
        if not self.blocks:
            raise SparkLikeError(f"no scientific input at {pfs_path!r}")
        super().__init__(ctx, len(self.blocks))

    def compute(self, index: int, task):
        _virtual_path, block = self.blocks[index]
        reader = PFSReader(self.ctx.scidp.pfs_client(task.node))
        data = yield self.ctx.env.process(
            reader.read_block(block.virtual))
        vb = block.virtual
        if vb.hyperslab is None:
            key = (vb.source_path, vb.offset)
        else:
            key = (vb.source_path, vb.hyperslab["variable"],
                   tuple(vb.hyperslab["start"]))
        return [(key, data)]


class LegacyContext:
    """The v1 Spark-like driver: sources, scheduling, executors."""

    def __init__(self, env, nodes, storage, network, scidp=None,
                 executor_cores: int = 4,
                 record_cost: float = 1e-7,
                 task_startup: float = 0.01):
        if not nodes:
            raise SparkLikeError("need at least one executor node")
        self.env = env
        self.nodes = list(nodes)
        self.storage = storage
        self.network = network
        self.scidp = scidp
        self.executor_cores = executor_cores
        self.record_cost = record_cost
        self.task_startup = task_startup
        self.driver_node = self.nodes[0]
        self.default_parallelism = len(self.nodes) * 2
        self._rdd_seq = 0
        self._stage_seq = 0
        #: id(LegacyShuffleDependency) -> [(node, buckets)] map outputs
        self._shuffle_outputs: dict[int, list] = {}
        #: (rdd id, partition index) -> (node, records) for cached RDDs
        self._rdd_cache: dict[tuple[int, int], tuple] = {}
        #: simple job metrics for tests/benches
        self.metrics: dict[str, Any] = {"stages": 0, "tasks": 0}

    def _next_rdd_id(self) -> int:
        self._rdd_seq += 1
        return self._rdd_seq

    # -- sources ------------------------------------------------------------
    def parallelize(self, data: list,
                    n_partitions: Optional[int] = None) -> LegacyRDD:
        return _ParallelRDD(self, list(data),
                            n_partitions or self.default_parallelism)

    def text_file(self, path: str) -> LegacyRDD:
        return _TextFileRDD(self, path)

    def scidp_variable(self, pfs_path: str,
                       variables: Optional[list[str]] = None) -> LegacyRDD:
        return _SciDPRDD(self, pfs_path, variables)

    # -- scheduling ---------------------------------------------------------
    def _stages_for(self, rdd: LegacyRDD) -> list[LegacyShuffleDependency]:
        """Shuffle dependencies below ``rdd``, deepest first."""
        deps: list[LegacyShuffleDependency] = []

        def walk(r: Optional[LegacyRDD]):
            if r is None:
                return
            if r.shuffle_dep is not None:
                walk(r.shuffle_dep.parent)
                deps.append(r.shuffle_dep)
            else:
                walk(r.parent)

        walk(rdd)
        return deps

    def _run_stage(self, rdd: LegacyRDD, shuffle_into=None):
        """Run one stage over all of ``rdd``'s partitions. DES process."""
        self._stage_seq += 1
        stage_id = self._stage_seq
        self.metrics["stages"] += 1
        pending = list(range(rdd.n_partitions))
        results: dict[int, list] = {}

        def pick(node_name: str) -> Optional[int]:
            for pos, index in enumerate(pending):
                if node_name in rdd.partition_locations(index):
                    return pending.pop(pos)
            return pending.pop(0) if pending else None

        def executor(node):
            while True:
                index = pick(node.name)
                if index is None:
                    return
                self.metrics["tasks"] += 1
                task = LegacyTaskContext(self, node, stage_id, index)
                yield self.env.timeout(self.task_startup)
                records = yield self.env.process(
                    rdd.iterator(index, task))
                for _phase, seconds in sorted(
                        task.take_charges().items()):
                    yield self.env.timeout(seconds)
                if shuffle_into is not None:
                    buckets = shuffle_into_rdd.map_side_partition(records)
                    # Shuffle write: buffered to local disk like Spark.
                    size = estimate_size(records)
                    if size:
                        yield node.disk.write(size)
                    self._shuffle_outputs[id(shuffle_into)].append(
                        (node, buckets))
                else:
                    results[index] = (node, records)

        shuffle_into_rdd = None
        if shuffle_into is not None:
            self._shuffle_outputs[id(shuffle_into)] = []
            shuffle_into_rdd = shuffle_into.child

        workers = []
        for node in self.nodes:
            for _core in range(self.executor_cores):
                workers.append(self.env.process(executor(node)))
        yield AllOf(self.env, workers)
        return results

    def _run_job(self, final: LegacyRDD) -> list:
        """Execute the lineage and collect at the driver (blocking)."""
        deps = self._stages_for(final)

        def driver():
            for dep in deps:
                if id(dep) in self._shuffle_outputs:
                    continue  # shuffle outputs cached from a prior action
                yield self.env.process(
                    self._run_stage(dep.parent, shuffle_into=dep))
            results = yield self.env.process(self._run_stage(final))
            # Results travel back to the driver.
            transfers = []
            for _index, (node, records) in results.items():
                size = estimate_size(records)
                if size:
                    transfers.append(self.network.transfer(
                        node, self.driver_node, size))
            if transfers:
                yield AllOf(self.env, transfers)
            return results

        proc = self.env.process(driver())
        self.env.run()
        results = proc.value
        out: list = []
        for index in sorted(results):
            out.extend(results[index][1])
        return out
