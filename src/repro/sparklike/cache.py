"""The ``cache()``/``persist()`` tier: byte-accounted executor memory
with LRU eviction and spill to shared storage.

One :class:`BlockStore` per context holds every persisted partition,
pinned to the node that computed it (the legacy single-copy model —
remote consumers pay one transfer). Capacity is per node and byte-
accounted through :func:`~repro.mapreduce.shuffle.estimate_size`; a
:class:`~repro.sim.CacheStats` feeds the obs metrics registry so
``report`` shows the cache rows next to the read-ahead caches.

Under memory pressure the least-recently-used block on the inserting
node is evicted. "memory"-level blocks are simply dropped (the lineage
recomputes them on demand); "memory_and_disk" blocks spill to shared
storage through the registry-resolved client — i.e. the
``repro.io.write`` planner path of the backing store — and later reads
pay a timed reload instead of a recompute. The default unbounded
capacity performs no simulated work at all, preserving the frozen v1
engine's event shape bit for bit.
"""

from __future__ import annotations

from typing import Optional

from repro.mapreduce.shuffle import estimate_size
from repro.sim import CacheStats

__all__ = ["MEMORY_AND_DISK", "MEMORY_ONLY", "BlockStore"]

#: storage levels accepted by :meth:`repro.sparklike.rdd.RDD.persist`
MEMORY_ONLY = "memory"
MEMORY_AND_DISK = "memory_and_disk"


class BlockStore:
    """Cluster-wide view of persisted RDD partitions."""

    def __init__(self, ctx, capacity_bytes: Optional[int] = None):
        self.ctx = ctx
        #: per-node byte budget; None = unbounded (legacy behavior)
        self.capacity = capacity_bytes
        self.stats = CacheStats("sparklike.cache")
        #: key -> [node, records, nbytes, level]; dict order is LRU
        #: (reinserted on every hit)
        self._entries: dict[tuple, list] = {}
        self._node_bytes: dict[str, int] = {}
        #: key -> (spill url, nbytes, records) — blocks that live on
        #: shared storage after a memory_and_disk eviction
        self._spilled: dict[tuple, tuple] = {}

    # -- memory tier ------------------------------------------------------
    def get(self, key: tuple):
        """``(node, records)`` on a memory hit, else None (counts the
        miss). Pure Python: a hit performs no simulated work."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        # LRU touch: move to the back of the insertion order
        del self._entries[key]
        self._entries[key] = entry
        self.stats.hits += 1
        self.stats.bytes_from_cache += entry[2]
        return entry[0], entry[1]

    def nbytes(self, key: tuple) -> int:
        entry = self._entries.get(key)
        return entry[2] if entry is not None else 0

    def put(self, key: tuple, task, records: list, level: str):
        """Insert one computed partition; DES generator (only yields
        when an eviction spills). Call with ``yield from``."""
        ctx = self.ctx
        node = task.node
        if node.name in ctx.lost_nodes:
            return  # orphaned task on an executor that was lost mid-run
        old = self._entries.pop(key, None)
        if old is not None:
            self._node_bytes[old[0].name] -= old[2]
        nbytes = estimate_size(records)
        self._entries[key] = [node, records, nbytes, level]
        self._node_bytes[node.name] = \
            self._node_bytes.get(node.name, 0) + nbytes
        self.stats.bytes_inserted += nbytes
        if self.capacity is None:
            return
        while self._node_bytes.get(node.name, 0) > self.capacity:
            victim = next((k for k, e in self._entries.items()
                           if e[0].name == node.name), None)
            if victim is None:  # pragma: no cover - accounting drift
                break
            vnode, vrecords, vbytes, vlevel = self._entries.pop(victim)
            self._node_bytes[vnode.name] -= vbytes
            self.stats.evictions += 1
            ctx.metrics["cache_evictions"] = \
                ctx.metrics.get("cache_evictions", 0) + 1
            if vlevel == MEMORY_AND_DISK and victim not in self._spilled:
                yield from self._spill(victim, vnode, vrecords, vbytes,
                                       task)

    # -- disk tier --------------------------------------------------------
    def _spill(self, key: tuple, node, records: list, nbytes: int, task):
        """Write an evicted block to shared storage (timed)."""
        ctx = self.ctx
        url = f"{ctx.spill_base}/rdd{key[0]}_p{key[1]}"
        client, path = ctx.registry.open(url, node)
        with task.phase("spill"):
            yield ctx.env.process(client.write(path, bytes(nbytes)))
        self._spilled[key] = (url, nbytes, records)
        ctx.metrics["cache_spills"] = \
            ctx.metrics.get("cache_spills", 0) + 1

    def has_spilled(self, key: tuple) -> bool:
        return key in self._spilled

    def load_spilled(self, key: tuple, task):
        """Reload a spilled block (timed read). DES generator."""
        ctx = self.ctx
        url, _nbytes, records = self._spilled[key]
        client, path = ctx.registry.open(url, task.node)
        with task.phase("read"):
            yield ctx.env.process(client.read(path))
        ctx.metrics["cache_disk_hits"] = \
            ctx.metrics.get("cache_disk_hits", 0) + 1
        return list(records)

    # -- invalidation -----------------------------------------------------
    def invalidate_node(self, name: str) -> list[tuple]:
        """Drop every memory block pinned to a lost executor; spilled
        copies survive (they live on shared storage)."""
        lost = [k for k, e in self._entries.items() if e[0].name == name]
        for key in lost:
            _node, _records, nbytes, _level = self._entries.pop(key)
            self._node_bytes[name] = \
                self._node_bytes.get(name, 0) - nbytes
        return lost

    def drop_rdd(self, rdd_id: int) -> None:
        for key in [k for k in self._entries if k[0] == rdd_id]:
            node, _records, nbytes, _level = self._entries.pop(key)
            self._node_bytes[node.name] -= nbytes
        for key in [k for k in self._spilled if k[0] == rdd_id]:
            del self._spilled[key]
