"""Context, sources, DAG scheduler, and executors."""

from __future__ import annotations

from typing import Any, Optional

from repro.core.reader import PFSReader
from repro.mapreduce.shuffle import estimate_size
from repro.sim import AllOf
from repro.sparklike.rdd import RDD, ShuffleDependency, SparkLikeError

__all__ = ["Context", "TaskContext"]


class TaskContext:
    """What RDD compute chains see inside one executor task."""

    def __init__(self, ctx: "Context", node, stage_id: int, index: int):
        self.ctx = ctx
        self.node = node
        self.stage_id = stage_id
        self.index = index
        self._charges: dict[str, float] = {}

    def charge(self, seconds: float, phase: str = "compute") -> None:
        if seconds < 0:
            raise SparkLikeError("charge must be >= 0")
        self._charges[phase] = self._charges.get(phase, 0.0) + seconds

    def take_charges(self) -> dict[str, float]:
        charges, self._charges = self._charges, {}
        return charges

    def fetch_shuffle(self, dep: ShuffleDependency, index: int):
        """Pull bucket ``index`` from every map output. DES process."""
        outputs = self.ctx._shuffle_outputs[id(dep)]
        runs = []
        transfers = []
        for node, buckets in outputs:
            bucket = buckets[index]
            runs.append(bucket)
            size = estimate_size(bucket)
            if size and node is not self.node:
                transfers.append(self.ctx.network.transfer(
                    node, self.node, size))
        if transfers:
            yield AllOf(self.ctx.env, transfers)
        return runs


class _ParallelRDD(RDD):
    """Driver-provided data split into partitions."""

    def __init__(self, ctx, data: list, n_partitions: int):
        super().__init__(ctx, n_partitions)
        share = -(-len(data) // n_partitions) if data else 1
        self.slices = [
            data[i * share:(i + 1) * share] for i in range(n_partitions)
        ]

    def compute(self, index: int, task):
        # Driver data is shipped to the executor.
        size = estimate_size(self.slices[index])
        if size:
            yield self.ctx.network.transfer(
                self.ctx.driver_node, task.node, size)
        return list(self.slices[index])


class _TextFileRDD(RDD):
    """One partition per storage block; records are whole text lines.

    Uses the same boundary rule as the MapReduce TextInputFormat: a
    partition owns every line that *starts* inside its block, peeking at
    the previous block's last byte and reading into following blocks to
    complete its final line.
    """

    def __init__(self, ctx, path: str):
        # Facade-neutral sync metadata (listdir/get_blocks): works over
        # native HDFS and the PFS connector alike.
        storage = ctx.storage
        partitions = []  # (file_blocks, position within file)
        for file_path in (storage.listdir(path) or [path]):
            file_blocks = storage.get_blocks(file_path)
            for i in range(len(file_blocks)):
                partitions.append((file_blocks, i))
        if not partitions:
            raise SparkLikeError(f"no input at {path!r}")
        super().__init__(ctx, len(partitions))
        self.partitions = partitions

    def partition_locations(self, index: int) -> list[str]:
        _blocks, i = self.partitions[index]
        return list(_blocks[i].locations)

    def compute(self, index: int, task):
        blocks, i = self.partitions[index]
        client = self.ctx.storage.client(task.node)
        data = yield self.ctx.env.process(client.read_block(blocks[i]))

        head = 0
        if i > 0:
            prev = blocks[i - 1]
            last = yield self.ctx.env.process(
                client.read_block(prev, prev.length - 1, 1))
            if last != b"\n":
                newline = data.find(b"\n")
                if newline < 0:
                    return []  # mid-line of one huge record
                head = newline + 1

        tail = data
        if i + 1 < len(blocks) and not data.endswith(b"\n"):
            extra = b""
            for nxt in blocks[i + 1:]:
                piece = yield self.ctx.env.process(
                    client.read_block(nxt, 0, min(1024, nxt.length)))
                newline = piece.find(b"\n")
                if newline >= 0:
                    extra += piece[:newline]
                    break
                extra += piece
            tail = data + extra
        return tail[head:].splitlines()


class _SciDPRDD(RDD):
    """One partition per SciDP dummy block: the PFS-direct source.

    Records are ``((source_path, variable, start), ndarray)`` — the same
    shape SciDPInputFormat feeds the MapReduce engine.
    """

    def __init__(self, ctx, pfs_path: str,
                 variables: Optional[list[str]] = None):
        if ctx.scidp is None:
            raise SparkLikeError("context has no SciDP runtime attached")
        proc = ctx.env.process(
            ctx.scidp.map_input(pfs_path, variables=variables))
        ctx.env.run()
        entries = proc.value
        self.blocks = [
            (virtual_path, block)
            for virtual_path, blocks in entries for block in blocks
        ]
        if not self.blocks:
            raise SparkLikeError(f"no scientific input at {pfs_path!r}")
        super().__init__(ctx, len(self.blocks))

    def compute(self, index: int, task):
        _virtual_path, block = self.blocks[index]
        reader = PFSReader(self.ctx.scidp.pfs_client(task.node))
        data = yield self.ctx.env.process(
            reader.read_block(block.virtual))
        vb = block.virtual
        if vb.hyperslab is None:
            key = (vb.source_path, vb.offset)
        else:
            key = (vb.source_path, vb.hyperslab["variable"],
                   tuple(vb.hyperslab["start"]))
        return [(key, data)]


class Context:
    """The Spark-like driver: sources, scheduling, executors."""

    def __init__(self, env, nodes, storage, network, scidp=None,
                 executor_cores: int = 4,
                 record_cost: float = 1e-7,
                 task_startup: float = 0.01):
        if not nodes:
            raise SparkLikeError("need at least one executor node")
        self.env = env
        self.nodes = list(nodes)
        self.storage = storage
        self.network = network
        self.scidp = scidp
        self.executor_cores = executor_cores
        self.record_cost = record_cost
        self.task_startup = task_startup
        self.driver_node = self.nodes[0]
        self.default_parallelism = len(self.nodes) * 2
        self._rdd_seq = 0
        self._stage_seq = 0
        #: id(ShuffleDependency) -> [(node, buckets)] map-side outputs
        self._shuffle_outputs: dict[int, list] = {}
        #: (rdd id, partition index) -> (node, records) for cached RDDs
        self._rdd_cache: dict[tuple[int, int], tuple] = {}
        #: simple job metrics for tests/benches
        self.metrics: dict[str, Any] = {"stages": 0, "tasks": 0}

    def _next_rdd_id(self) -> int:
        self._rdd_seq += 1
        return self._rdd_seq

    # -- sources ------------------------------------------------------------
    def parallelize(self, data: list,
                    n_partitions: Optional[int] = None) -> RDD:
        return _ParallelRDD(self, list(data),
                            n_partitions or self.default_parallelism)

    def text_file(self, path: str) -> RDD:
        return _TextFileRDD(self, path)

    def scidp_variable(self, pfs_path: str,
                       variables: Optional[list[str]] = None) -> RDD:
        """RDD over SciDP dummy blocks: scientific data on the PFS,
        processed directly — the §VII extension."""
        return _SciDPRDD(self, pfs_path, variables)

    # -- scheduling -----------------------------------------------------------
    def _stages_for(self, rdd: RDD) -> list[ShuffleDependency]:
        """Shuffle dependencies below ``rdd``, deepest first."""
        deps: list[ShuffleDependency] = []

        def walk(r: Optional[RDD]):
            if r is None:
                return
            if r.shuffle_dep is not None:
                walk(r.shuffle_dep.parent)
                deps.append(r.shuffle_dep)
            else:
                walk(r.parent)

        walk(rdd)
        return deps

    def _run_stage(self, rdd: RDD, shuffle_into=None):
        """Run one stage over all of ``rdd``'s partitions. DES process.

        With ``shuffle_into`` (a ShuffleDependency), each task hash-
        partitions its records and registers map-side outputs; otherwise
        partition results are returned (result stage).
        """
        self._stage_seq += 1
        stage_id = self._stage_seq
        self.metrics["stages"] += 1
        pending = list(range(rdd.n_partitions))
        results: dict[int, list] = {}

        def pick(node_name: str) -> Optional[int]:
            for pos, index in enumerate(pending):
                if node_name in rdd.partition_locations(index):
                    return pending.pop(pos)
            return pending.pop(0) if pending else None

        def executor(node):
            while True:
                index = pick(node.name)
                if index is None:
                    return
                self.metrics["tasks"] += 1
                task = TaskContext(self, node, stage_id, index)
                yield self.env.timeout(self.task_startup)
                records = yield self.env.process(
                    rdd.iterator(index, task))
                for _phase, seconds in sorted(
                        task.take_charges().items()):
                    yield self.env.timeout(seconds)
                if shuffle_into is not None:
                    buckets = shuffle_into_rdd.map_side_partition(records)
                    # Shuffle write: buffered to local disk like Spark.
                    size = estimate_size(records)
                    if size:
                        yield node.disk.write(size)
                    self._shuffle_outputs[id(shuffle_into)].append(
                        (node, buckets))
                else:
                    results[index] = (node, records)

        shuffle_into_rdd = None
        if shuffle_into is not None:
            self._shuffle_outputs[id(shuffle_into)] = []
            # The child _ShuffledRDD holds the partitioning logic.
            shuffle_into_rdd = shuffle_into.child

        workers = []
        for node in self.nodes:
            for _core in range(self.executor_cores):
                workers.append(self.env.process(executor(node)))
        yield AllOf(self.env, workers)
        return results

    def _run_job(self, final: RDD) -> list:
        """Execute the lineage and collect at the driver (blocking)."""
        deps = self._stages_for(final)

        def driver():
            for dep in deps:
                if id(dep) in self._shuffle_outputs:
                    continue  # shuffle outputs cached from a prior action
                yield self.env.process(
                    self._run_stage(dep.parent, shuffle_into=dep))
            results = yield self.env.process(self._run_stage(final))
            # Results travel back to the driver.
            transfers = []
            for _index, (node, records) in results.items():
                size = estimate_size(records)
                if size:
                    transfers.append(self.network.transfer(
                        node, self.driver_node, size))
            if transfers:
                yield AllOf(self.env, transfers)
            return results

        proc = self.env.process(driver())
        self.env.run()
        results = proc.value
        out: list = []
        for index in sorted(results):
            out.extend(results[index][1])
        return out
