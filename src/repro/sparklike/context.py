"""The Spark-like driver: context knobs, sources, actions, recovery.

The v2 context records lineage only; actions go through the DAG
scheduler (:mod:`repro.sparklike.scheduler`). Every knob beyond the
frozen v1 surface defaults OFF so a default-constructed context
reproduces the legacy engine's event trace exactly (pinned at 1e-9 by
the twin-world tests):

``fusion=True``
    fuse narrow map/filter/flat_map chains into one per-partition pass
    (interior ops charge ``fused_interior_share`` of the record cost).
``cache_capacity=<bytes>``
    bound the per-node block store; LRU eviction, with
    "memory_and_disk" blocks spilling to shared storage.
``shuffle_parallel_copies=<k>``
    bound reducer fetch fan-out through a FanoutWindow instead of the
    all-at-once barrier.

Storage is reached only through the :mod:`repro.io` plane: sources and
spills resolve URLs via a :class:`~repro.io.registry.StorageRegistry`
(the attached SciDP runtime's registry when present), and the SciDP
source reads dummy blocks through :meth:`SciDP.pfs_reader` rather than
importing storage internals — enforced by the layering lint.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.io.registry import StorageRegistry, join_url
from repro.mapreduce.shuffle import estimate_size
from repro.obs import metrics_of
from repro.sparklike import dag
from repro.sparklike.cache import BlockStore
from repro.sparklike.rdd import RDD, ShuffleDependency, SparkLikeError
from repro.sparklike.scheduler import DAGScheduler

__all__ = ["Context"]


class _ParallelRDD(RDD):
    """Driver-provided data split into partitions."""

    def __init__(self, ctx, data: list, n_partitions: int):
        super().__init__(ctx, n_partitions)
        share = -(-len(data) // n_partitions) if data else 1
        self.slices = [
            data[i * share:(i + 1) * share] for i in range(n_partitions)
        ]

    def compute(self, index: int, task):
        # Driver data is shipped to the executor.
        size = estimate_size(self.slices[index])
        if size:
            yield self.ctx.network.transfer(
                self.ctx.driver_node, task.node, size)
        return list(self.slices[index])


class _TextFileRDD(RDD):
    """One partition per storage block; records are whole text lines.

    Uses the same boundary rule as the MapReduce TextInputFormat: a
    partition owns every line that *starts* inside its block, peeking at
    the previous block's last byte and reading into following blocks to
    complete its final line.
    """

    def __init__(self, ctx, url: str):
        # Resolve through the storage registry: scheme-less paths hit
        # the default backend, so plain HDFS paths keep working.
        facade, path = ctx.registry.resolve(url)
        self.facade = facade
        partitions = []  # (file_blocks, position within file)
        for file_path in (facade.listdir(path) or [path]):
            file_blocks = facade.get_blocks(file_path)
            for i in range(len(file_blocks)):
                partitions.append((file_blocks, i))
        if not partitions:
            raise SparkLikeError(f"no input at {url!r}")
        super().__init__(ctx, len(partitions))
        self.partitions = partitions

    def partition_locations(self, index: int) -> list[str]:
        _blocks, i = self.partitions[index]
        return list(_blocks[i].locations)

    def compute(self, index: int, task):
        blocks, i = self.partitions[index]
        client = self.facade.client(task.node)
        data = yield self.ctx.env.process(client.read_block(blocks[i]))

        head = 0
        if i > 0:
            prev = blocks[i - 1]
            last = yield self.ctx.env.process(
                client.read_block(prev, prev.length - 1, 1))
            if last != b"\n":
                newline = data.find(b"\n")
                if newline < 0:
                    return []  # mid-line of one huge record
                head = newline + 1

        tail = data
        if i + 1 < len(blocks) and not data.endswith(b"\n"):
            extra = b""
            for nxt in blocks[i + 1:]:
                piece = yield self.ctx.env.process(
                    client.read_block(nxt, 0, min(1024, nxt.length)))
                newline = piece.find(b"\n")
                if newline >= 0:
                    extra += piece[:newline]
                    break
                extra += piece
            tail = data + extra
        return tail[head:].splitlines()


class _SciDPRDD(RDD):
    """One partition per SciDP dummy block: the PFS-direct source.

    Records are ``((source_path, variable, start), ndarray)`` — the same
    shape SciDPInputFormat feeds the MapReduce engine.
    """

    def __init__(self, ctx, pfs_path: str,
                 variables: Optional[list[str]] = None):
        if ctx.scidp is None:
            raise SparkLikeError("context has no SciDP runtime attached")
        proc = ctx.env.process(
            ctx.scidp.map_input(pfs_path, variables=variables))
        ctx.env.run()
        entries = proc.value
        self.blocks = [
            (virtual_path, block)
            for virtual_path, blocks in entries for block in blocks
        ]
        if not self.blocks:
            raise SparkLikeError(f"no scientific input at {pfs_path!r}")
        super().__init__(ctx, len(self.blocks))

    def compute(self, index: int, task):
        _virtual_path, block = self.blocks[index]
        reader = self.ctx.scidp.pfs_reader(task.node)
        data = yield self.ctx.env.process(
            reader.read_block(block.virtual))
        vb = block.virtual
        if vb.hyperslab is None:
            key = (vb.source_path, vb.offset)
        else:
            key = (vb.source_path, vb.hyperslab["variable"],
                   tuple(vb.hyperslab["start"]))
        return [(key, data)]


class Context:
    """The Spark-like driver: sources, scheduling, executors."""

    def __init__(self, env, nodes, storage, network, scidp=None,
                 executor_cores: int = 4,
                 record_cost: float = 1e-7,
                 task_startup: float = 0.01,
                 fusion: bool = False,
                 fused_interior_share: float = 0.5,
                 cache_capacity: Optional[int] = None,
                 shuffle_parallel_copies: int = 0):
        if not nodes:
            raise SparkLikeError("need at least one executor node")
        self.env = env
        self.nodes = list(nodes)
        self.storage = storage
        self.network = network
        self.scidp = scidp
        self.executor_cores = executor_cores
        self.record_cost = record_cost
        self.task_startup = task_startup
        self.fusion = fusion
        self.fused_interior_share = fused_interior_share
        self.shuffle_parallel_copies = shuffle_parallel_copies
        self.driver_node = self.nodes[0]
        self.default_parallelism = len(self.nodes) * 2
        #: unified URL resolution — the SciDP runtime's registry when
        #: one is attached, else a fresh one over the HDFS facade
        if scidp is not None:
            self.registry = scidp.storage
        else:
            self.registry = StorageRegistry(default_scheme="hdfs")
            self.registry.register("hdfs", storage)
        #: spill target for memory_and_disk evictions: the PFS when a
        #: SciDP runtime provides one, else HDFS
        self.spill_base = join_url(
            scidp.pfs_scheme if scidp is not None else "hdfs",
            "/_sparklike/spill")
        self.block_store = BlockStore(self, capacity_bytes=cache_capacity)
        #: names of executors lost to :meth:`fail_node`
        self.lost_nodes: set[str] = set()
        #: id(ShuffleDependency) -> ShuffleState (map-output registry)
        self._shuffle_states: dict[int, object] = {}
        self._active_run = None
        self._rdd_seq = 0
        self._stage_seq = 0
        #: simple job metrics for tests/benches
        self.metrics: dict[str, Any] = {"stages": 0, "tasks": 0}
        #: one JobHistory per action, newest last
        self.histories: list = []
        self.last_history = None
        self._scheduler = DAGScheduler(self)

    def _next_rdd_id(self) -> int:
        self._rdd_seq += 1
        return self._rdd_seq

    # -- sources ------------------------------------------------------------
    def parallelize(self, data: list,
                    n_partitions: Optional[int] = None) -> RDD:
        return _ParallelRDD(self, list(data),
                            n_partitions or self.default_parallelism)

    def text_file(self, path: str) -> RDD:
        return _TextFileRDD(self, path)

    def scidp_variable(self, pfs_path: str,
                       variables: Optional[list[str]] = None) -> RDD:
        """RDD over SciDP dummy blocks: scientific data on the PFS,
        processed directly — the §VII extension."""
        return _SciDPRDD(self, pfs_path, variables)

    # -- scheduling -----------------------------------------------------------
    def _stages_for(self, rdd: RDD) -> list[ShuffleDependency]:
        """Shuffle dependencies below ``rdd``, deepest first, each
        exactly once — diamond lineage (one dependency reachable along
        several paths, e.g. through ``union``) is deduplicated."""
        return dag.shuffle_deps(rdd)

    def _run_job(self, final: RDD) -> list:
        """Execute the lineage and collect at the driver (blocking)."""
        results = self._scheduler.run_action(final)
        out: list = []
        for index in sorted(results):
            out.extend(results[index][1])
        return out

    def _take(self, final: RDD, n: int) -> list:
        """Evaluate partitions incrementally: partition 0 first, then
        geometrically growing batches, stopping once ``n`` records are
        in hand — never running partitions the answer doesn't need."""
        if n == 0:
            return []
        out: list = []
        cursor = 0
        batch = 1
        while cursor < final.n_partitions and len(out) < n:
            indices = list(range(
                cursor, min(cursor + batch, final.n_partitions)))
            results = self._scheduler.run_action(
                final, indices=indices, label="take")
            for index in indices:
                out.extend(results[index][1])
            cursor += len(indices)
            batch *= 4
        return out[:n]

    # -- failure injection ---------------------------------------------------
    def fail_node(self, name: str) -> None:
        """Simulate losing executor ``name`` mid-run.

        Running tasks on the node are interrupted and requeued; its
        cached blocks and map outputs are invalidated, so later stages
        recompute exactly the lost partitions — transitively through the
        lineage — while reusing cached ancestors on surviving nodes.
        """
        if all(node.name != name for node in self.nodes):
            raise SparkLikeError(f"unknown node {name!r}")
        if name in self.lost_nodes:
            return
        self.lost_nodes.add(name)
        self.metrics["executors_lost"] = \
            self.metrics.get("executors_lost", 0) + 1
        registry = metrics_of(self.env)
        if registry is not None:
            registry.counter("sparklike.executors_lost").inc()
        self.block_store.invalidate_node(name)
        for state in self._shuffle_states.values():
            state.invalidate_node(name)
        if self._active_run is not None:
            self._active_run.on_node_lost(name)
