"""DAG analysis: stage cutting, diamond deduplication, fusion chains.

Actions hand their final RDD here; the lineage walk cuts the graph at
:class:`~repro.sparklike.rdd.ShuffleDependency` boundaries into stages,
deepest first. The walk is memoised on RDD *and* dependency identity,
so diamond lineage (one RDD reachable through both sides of a
``union``) schedules each shuffle stage exactly once — the bug the
eager engine's chain walk could not express, because it had no
multi-parent operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Stage", "build_stages", "consumes_shuffle", "fused_chain",
           "shuffle_deps"]


def shuffle_deps(final) -> list:
    """Every shuffle dependency below ``final``, deepest first, each
    exactly once (diamond lineage deduplicated)."""
    deps: list = []
    seen_rdds: set[int] = set()
    seen_deps: set[int] = set()

    def walk(r) -> None:
        if r is None or id(r) in seen_rdds:
            return
        seen_rdds.add(id(r))
        if r.shuffle_dep is not None:
            walk(r.shuffle_dep.parent)
            if id(r.shuffle_dep) not in seen_deps:
                seen_deps.add(id(r.shuffle_dep))
                deps.append(r.shuffle_dep)
        else:
            for parent in r.parents:
                walk(parent)

    walk(final)
    return deps


def consumes_shuffle(final) -> bool:
    """True when ``final``'s stage starts from shuffled data — i.e. the
    narrow lineage above the stage boundary reaches a ShuffleDependency
    without crossing another stage."""
    seen: set[int] = set()
    stack = [final]
    while stack:
        r = stack.pop()
        if id(r) in seen:
            continue
        seen.add(id(r))
        if r.shuffle_dep is not None:
            return True
        stack.extend(r.parents)
    return False


def fused_chain(rdd) -> list:
    """The narrow operator chain ending at ``rdd``, boundary first.

    Walks single-parent narrow transformations downward until a fusion
    boundary: a source, a shuffle, a union, or a persisted RDD (which
    must materialise to be stored). Returns ``[boundary, op1, ... opk]``
    where ``rdd`` is ``opk``."""
    chain = [rdd]
    fn = getattr(rdd, "fn", None)
    if fn is None:
        return chain
    base = rdd.parent
    while (getattr(base, "fn", None) is not None
           and base.storage_level is None):
        chain.append(base)
        base = base.parent
    chain.append(base)
    chain.reverse()
    return chain


@dataclass
class Stage:
    """One schedulable stage: a terminal RDD plus the shuffle dependency
    it produces (None for the result stage) and the ones it consumes."""

    id: int
    rdd: object
    shuffle_dep: Optional[object] = None       # the dep this stage feeds
    parents: list = field(default_factory=list)  # deps this stage reads
    kind: str = "map"                          # "map" | "reduce"

    @property
    def n_partitions(self) -> int:
        return self.rdd.n_partitions

    def describe(self) -> str:
        role = (f"shuffle-map -> dep@{id(self.shuffle_dep):#x}"
                if self.shuffle_dep is not None else "result")
        return (f"stage {self.id} [{self.kind}] "
                f"{type(self.rdd).__name__} x{self.n_partitions} "
                f"({role})")


def _immediate_deps(rdd) -> list:
    """Shuffle dependencies this stage reads directly (no crossing)."""
    deps, seen = [], set()
    stack = [rdd]
    while stack:
        r = stack.pop()
        if id(r) in seen:
            continue
        seen.add(id(r))
        if r.shuffle_dep is not None:
            deps.append(r.shuffle_dep)
        else:
            stack.extend(r.parents)
    return deps


def build_stages(final) -> list[Stage]:
    """Cut ``final``'s lineage into stages, execution order (deepest
    shuffle stage first, result stage last)."""
    stages = []
    for pos, dep in enumerate(shuffle_deps(final), start=1):
        stages.append(Stage(
            id=pos, rdd=dep.parent, shuffle_dep=dep,
            parents=_immediate_deps(dep.parent),
            kind="reduce" if consumes_shuffle(dep.parent) else "map"))
    stages.append(Stage(
        id=len(stages) + 1, rdd=final, shuffle_dep=None,
        parents=_immediate_deps(final),
        kind="reduce" if consumes_shuffle(final) else "map"))
    return stages
