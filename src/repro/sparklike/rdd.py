"""RDD lineage: lazy transformations, shuffle boundaries, actions.

Transformations only record lineage (narrow parents or a
:class:`ShuffleDependency`); actions hand the final RDD to the
context's DAG scheduler (:mod:`repro.sparklike.scheduler`), which cuts
the graph into stages and tracks partition states. Narrow chains can be
fused into a single per-partition pass (``Context(fusion=True)``), and
``cache()``/``persist()`` route through the byte-accounted block store
(:mod:`repro.sparklike.cache`) with optional spill to shared storage.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mapreduce.shuffle import (
    group_sorted,
    hash_partition,
    sort_run,
)
from repro.sparklike.cache import MEMORY_AND_DISK, MEMORY_ONLY

__all__ = ["RDD", "ShuffleDependency", "SparkLikeError"]


class SparkLikeError(Exception):
    """Engine-level errors."""


class ShuffleDependency:
    """A wide dependency: the child stage needs a hash repartition of the
    parent's output."""

    def __init__(self, parent: "RDD", n_partitions: int):
        self.parent = parent
        self.n_partitions = n_partitions
        #: the _ShuffledRDD that owns the partitioning logic (set by it)
        self.child: Optional["RDD"] = None


class RDD:
    """A lazy, partitioned dataset.

    Subclasses implement :meth:`compute` — a DES process yielding the
    records of one partition — and :meth:`partition_locations` for
    locality. ``parents`` lists every narrow parent (more than one for
    :meth:`union`); ``parent`` keeps the single-parent shorthand.
    """

    def __init__(self, ctx, n_partitions: int,
                 shuffle_dep: Optional[ShuffleDependency] = None,
                 parent: Optional["RDD"] = None,
                 parents: Optional[list["RDD"]] = None):
        self.ctx = ctx
        self.n_partitions = n_partitions
        self.shuffle_dep = shuffle_dep
        if parents is None:
            parents = [parent] if parent is not None else []
        self.parents = parents
        self.parent = parents[0] if parents else None
        self._id = ctx._next_rdd_id()
        #: None (not persisted) or a storage level from sparklike.cache
        self.storage_level: Optional[str] = None

    # -- to be provided by subclasses -------------------------------------
    def compute(self, index: int, task):
        """DES process returning the partition's record list."""
        raise NotImplementedError  # pragma: no cover

    # -- caching -----------------------------------------------------------
    @property
    def _cached(self) -> bool:
        return self.storage_level is not None

    def cache(self) -> "RDD":
        """Persist computed partitions in executor memory: later actions
        reuse them instead of recomputing, paying only a transfer when
        the partition lives on another node."""
        return self.persist(MEMORY_ONLY)

    def persist(self, level: str = MEMORY_ONLY) -> "RDD":
        """Persist at ``level`` ("memory" or "memory_and_disk"). With a
        bounded ``Context(cache_capacity=...)``, memory-only blocks are
        dropped under pressure (recomputed on demand) while
        memory-and-disk blocks spill to shared storage through the write
        planner and reload from there."""
        if level not in (MEMORY_ONLY, MEMORY_AND_DISK):
            raise SparkLikeError(f"unknown storage level {level!r}")
        self.storage_level = level
        return self

    def unpersist(self) -> "RDD":
        self.storage_level = None
        self.ctx.block_store.drop_rdd(self._id)
        return self

    def iterator(self, index: int, task):
        """Cache-aware access to one partition. DES process.

        Every consumer (child RDDs, the stage runner) goes through here,
        so caching an intermediate RDD short-circuits the whole lineage
        below it.
        """
        ctx = self.ctx
        if self.storage_level is not None:
            store = ctx.block_store
            key = (self._id, index)
            hit = store.get(key)
            if hit is not None:
                node, records = hit
                ctx.metrics["cache_hits"] = \
                    ctx.metrics.get("cache_hits", 0) + 1
                if node is not task.node:
                    size = store.nbytes(key)
                    if size:
                        yield ctx.network.transfer(node, task.node, size)
                return records
            if store.has_spilled(key):
                ctx.metrics["cache_hits"] = \
                    ctx.metrics.get("cache_hits", 0) + 1
                records = yield from store.load_spilled(key, task)
                return records
        records = yield ctx.env.process(self.compute(index, task))
        if self.storage_level is not None:
            yield from ctx.block_store.put(
                (self._id, index), task, records, self.storage_level)
        return records

    def partition_locations(self, index: int) -> list[str]:
        """Preferred executor nodes for this partition."""
        if self.parent is not None:
            return self.parent.partition_locations(index)
        return []

    # -- narrow transformations --------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [fn(r) for r in records])

    def flat_map(self, fn: Callable[[Any], Any]) -> "RDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [o for r in records for o in fn(r)])

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [r for r in records
                                         if predicate(r)])

    def map_partitions(self,
                       fn: Callable[[Any, list], list]) -> "RDD":
        """``fn(task, records) -> records``. ``task`` exposes
        ``charge(seconds, phase)`` for simulated compute accounting."""
        return _MapPartitionsRDD(self, fn)

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda r: (fn(r), r))

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs partition-wise (narrow, no shuffle).

        This is the multi-parent lineage op: an RDD reachable through
        both sides of a union forms diamond lineage, which the stage
        walk deduplicates."""
        if other.ctx is not self.ctx:
            raise SparkLikeError("union across contexts")
        return _UnionRDD(self.ctx, [self, other])

    # -- wide transformations ----------------------------------------------
    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      n_partitions: Optional[int] = None) -> "RDD":
        """Combine values per key with ``fn`` (map-side combining, then a
        shuffle, then a final merge — like Spark's reduceByKey)."""
        return _ShuffledRDD(self, n_partitions, combiner=fn)

    def group_by_key(self, n_partitions: Optional[int] = None) -> "RDD":
        return _ShuffledRDD(self, n_partitions, combiner=None)

    # -- actions -------------------------------------------------------------
    def collect(self) -> list:
        """Run the job and gather every record at the driver."""
        return self.ctx._run_job(self)

    def count(self) -> int:
        counted = _MapPartitionsRDD(
            self, lambda task, records: [len(records)])
        return sum(counted.collect())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        partials = _MapPartitionsRDD(
            self, lambda task, records: (
                [_fold(records, fn)] if records else []))
        values = partials.collect()
        if not values:
            raise SparkLikeError("reduce of an empty RDD")
        return _fold(values, fn)

    def take(self, n: int) -> list:
        """First ``n`` records in partition order, evaluating partitions
        incrementally: one partition first, then geometrically growing
        batches, stopping as soon as ``n`` records are gathered."""
        if n < 0:
            raise SparkLikeError("take(n) needs n >= 0")
        return self.ctx._take(self, n)

    def first(self) -> Any:
        out = self.take(1)
        if not out:
            raise SparkLikeError("first() of an empty RDD")
        return out[0]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} id={self._id} "
                f"partitions={self.n_partitions}>")


def _fold(values, fn):
    it = iter(values)
    acc = next(it)
    for value in it:
        acc = fn(acc, value)
    return acc


class _MapPartitionsRDD(RDD):
    """Narrow transformation, pipelined inside the parent's task.

    With fusion off (the default, matching the frozen v1 engine) each
    operator runs in its own nested task process and charges the full
    per-record cost. With ``Context(fusion=True)`` the whole narrow
    chain down to the nearest boundary (source, shuffle, cached RDD, or
    union) runs as one pass: interior operators stream records without
    materialising an intermediate buffer, so they charge only the
    compute share of the per-record cost; the final operator still pays
    full price for materialising the stage's output.
    """

    def __init__(self, parent: RDD, fn: Callable):
        super().__init__(parent.ctx, parent.n_partitions, parent=parent)
        self.fn = fn

    def compute(self, index: int, task):
        ctx = self.ctx
        if not ctx.fusion:
            records = yield ctx.env.process(
                self.parent.iterator(index, task))
            out = self.fn(task, records)
            task.charge(len(records) * ctx.record_cost, "compute")
            return out
        # Fused pass: gather the narrow chain ending here.
        fns = [self.fn]
        base = self.parent
        while (type(base) is _MapPartitionsRDD
               and base.storage_level is None):
            fns.append(base.fn)
            base = base.parent
        fns.reverse()
        records = yield ctx.env.process(base.iterator(index, task))
        cost = ctx.record_cost
        last = len(fns) - 1
        for pos, fn in enumerate(fns):
            out = fn(task, records)
            share = 1.0 if pos == last else ctx.fused_interior_share
            task.charge(len(records) * cost * share, "compute")
            records = out
        return records


class _UnionRDD(RDD):
    """Partition-wise concatenation of several parents (narrow)."""

    def __init__(self, ctx, parents: list[RDD]):
        total = sum(p.n_partitions for p in parents)
        super().__init__(ctx, total, parents=list(parents))
        #: partition index -> (parent, index within parent)
        self._slots = [
            (p, i) for p in parents for i in range(p.n_partitions)
        ]

    def partition_locations(self, index: int) -> list[str]:
        parent, sub = self._slots[index]
        return parent.partition_locations(sub)

    def compute(self, index: int, task):
        parent, sub = self._slots[index]
        records = yield self.ctx.env.process(parent.iterator(sub, task))
        return list(records)


class _ShuffledRDD(RDD):
    """Wide transformation: introduces a stage boundary."""

    def __init__(self, parent: RDD, n_partitions: Optional[int],
                 combiner: Optional[Callable]):
        n = n_partitions or parent.ctx.default_parallelism
        super().__init__(parent.ctx, n,
                         shuffle_dep=ShuffleDependency(parent, n))
        self.shuffle_dep.child = self
        self.combiner = combiner

    def partition_locations(self, index: int) -> list[str]:
        return []  # reducer-side partitions have no locality

    def map_side_partition(self, records: list) -> list[list]:
        """Hash-partition (and optionally combine) one map partition."""
        buckets: list[list] = [[] for _ in range(self.n_partitions)]
        for key, value in records:
            buckets[hash_partition(key, self.n_partitions)].append(
                (key, value))
        if self.combiner is not None:
            for i, bucket in enumerate(buckets):
                combined = []
                for key, values in group_sorted(sort_run(bucket)):
                    combined.append((key, _fold(values, self.combiner)))
                buckets[i] = combined
        return buckets

    def merge(self, runs: list[list]) -> list:
        merged = sort_run([kv for run in runs for kv in run])
        out = []
        for key, values in group_sorted(merged):
            if self.combiner is not None:
                out.append((key, _fold(values, self.combiner)))
            else:
                out.append((key, values))
        return out

    def compute(self, index: int, task):
        """Fetch this partition's shuffle bucket from every map output."""
        runs = yield self.ctx.env.process(
            task.fetch_shuffle(self.shuffle_dep, index))
        out = self.merge(runs)
        task.charge(sum(len(r) for r in runs) * self.ctx.record_cost,
                    "merge")
        return out
