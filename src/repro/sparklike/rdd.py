"""RDD lineage: lazy transformations, shuffle boundaries, actions."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mapreduce.shuffle import (
    estimate_size,
    group_sorted,
    hash_partition,
    sort_run,
)

__all__ = ["RDD", "ShuffleDependency", "SparkLikeError"]


class SparkLikeError(Exception):
    """Engine-level errors."""


class ShuffleDependency:
    """A wide dependency: the child stage needs a hash repartition of the
    parent's output."""

    def __init__(self, parent: "RDD", n_partitions: int):
        self.parent = parent
        self.n_partitions = n_partitions
        #: the _ShuffledRDD that owns the partitioning logic (set by it)
        self.child: Optional["RDD"] = None


class RDD:
    """A lazy, partitioned dataset.

    Subclasses implement :meth:`compute` — a DES process yielding the
    records of one partition — and :meth:`partition_locations` for
    locality. Transformations build lineage; actions hand the final RDD
    to the context's DAG scheduler.
    """

    def __init__(self, ctx, n_partitions: int,
                 shuffle_dep: Optional[ShuffleDependency] = None,
                 parent: Optional["RDD"] = None):
        self.ctx = ctx
        self.n_partitions = n_partitions
        self.shuffle_dep = shuffle_dep
        self.parent = parent
        self._id = ctx._next_rdd_id()
        self._cached = False

    # -- to be provided by subclasses -------------------------------------
    def compute(self, index: int, task):
        """DES process returning the partition's record list."""
        raise NotImplementedError  # pragma: no cover

    # -- caching -----------------------------------------------------------
    def cache(self) -> "RDD":
        """Persist computed partitions in executor memory, like Spark's
        ``cache()``: later actions reuse them instead of recomputing,
        paying only a transfer when the partition lives on another
        node."""
        self._cached = True
        return self

    def iterator(self, index: int, task):
        """Cache-aware access to one partition. DES process.

        Every consumer (child RDDs, the stage runner) goes through here,
        so caching an intermediate RDD short-circuits the whole lineage
        below it.
        """
        if self._cached:
            hit = self.ctx._rdd_cache.get((self._id, index))
            if hit is not None:
                node, records = hit
                self.ctx.metrics["cache_hits"] = \
                    self.ctx.metrics.get("cache_hits", 0) + 1
                if node is not task.node:
                    size = estimate_size(records)
                    if size:
                        yield self.ctx.network.transfer(
                            node, task.node, size)
                return records
        records = yield self.ctx.env.process(self.compute(index, task))
        if self._cached:
            self.ctx._rdd_cache[(self._id, index)] = (task.node, records)
        return records

    def partition_locations(self, index: int) -> list[str]:
        """Preferred executor nodes for this partition."""
        if self.parent is not None:
            return self.parent.partition_locations(index)
        return []

    # -- narrow transformations --------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [fn(r) for r in records])

    def flat_map(self, fn: Callable[[Any], Any]) -> "RDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [o for r in records for o in fn(r)])

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return _MapPartitionsRDD(
            self, lambda task, records: [r for r in records
                                         if predicate(r)])

    def map_partitions(self,
                       fn: Callable[[Any, list], list]) -> "RDD":
        """``fn(task, records) -> records``. ``task`` exposes
        ``charge(seconds, phase)`` for simulated compute accounting."""
        return _MapPartitionsRDD(self, fn)

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda r: (fn(r), r))

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    # -- wide transformations -------------------------------------------------
    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      n_partitions: Optional[int] = None) -> "RDD":
        """Combine values per key with ``fn`` (map-side combining, then a
        shuffle, then a final merge — like Spark's reduceByKey)."""
        return _ShuffledRDD(self, n_partitions, combiner=fn)

    def group_by_key(self, n_partitions: Optional[int] = None) -> "RDD":
        return _ShuffledRDD(self, n_partitions, combiner=None)

    # -- actions -----------------------------------------------------------------
    def collect(self) -> list:
        """Run the job and gather every record at the driver."""
        return self.ctx._run_job(self)

    def count(self) -> int:
        counted = _MapPartitionsRDD(
            self, lambda task, records: [len(records)])
        return sum(counted.collect())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        partials = _MapPartitionsRDD(
            self, lambda task, records: (
                [_fold(records, fn)] if records else []))
        values = partials.collect()
        if not values:
            raise SparkLikeError("reduce of an empty RDD")
        return _fold(values, fn)

    def take(self, n: int) -> list:
        if n < 0:
            raise SparkLikeError("take(n) needs n >= 0")
        return self.collect()[:n]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} id={self._id} "
                f"partitions={self.n_partitions}>")


def _fold(values, fn):
    it = iter(values)
    acc = next(it)
    for value in it:
        acc = fn(acc, value)
    return acc


class _MapPartitionsRDD(RDD):
    """Narrow transformation, pipelined inside the parent's task."""

    def __init__(self, parent: RDD, fn: Callable):
        super().__init__(parent.ctx, parent.n_partitions, parent=parent)
        self.fn = fn

    def compute(self, index: int, task):
        records = yield self.ctx.env.process(
            self.parent.iterator(index, task))
        out = self.fn(task, records)
        task.charge(len(records) * self.ctx.record_cost, "compute")
        return out


class _ShuffledRDD(RDD):
    """Wide transformation: introduces a stage boundary."""

    def __init__(self, parent: RDD, n_partitions: Optional[int],
                 combiner: Optional[Callable]):
        n = n_partitions or parent.ctx.default_parallelism
        super().__init__(parent.ctx, n,
                         shuffle_dep=ShuffleDependency(parent, n))
        self.shuffle_dep.child = self
        self.combiner = combiner

    def partition_locations(self, index: int) -> list[str]:
        return []  # reducer-side partitions have no locality

    def map_side_partition(self, records: list) -> list[list]:
        """Hash-partition (and optionally combine) one map partition."""
        buckets: list[list] = [[] for _ in range(self.n_partitions)]
        for key, value in records:
            buckets[hash_partition(key, self.n_partitions)].append(
                (key, value))
        if self.combiner is not None:
            for i, bucket in enumerate(buckets):
                combined = []
                for key, values in group_sorted(sort_run(bucket)):
                    combined.append((key, _fold(values, self.combiner)))
                buckets[i] = combined
        return buckets

    def merge(self, runs: list[list]) -> list:
        merged = sort_run([kv for run in runs for kv in run])
        out = []
        for key, values in group_sorted(merged):
            if self.combiner is not None:
                out.append((key, _fold(values, self.combiner)))
            else:
                out.append((key, values))
        return out

    def compute(self, index: int, task):
        """Fetch this partition's shuffle bucket from every map output."""
        runs = yield self.ctx.env.process(
            task.fetch_shuffle(self.shuffle_dep, index))
        out = self.merge(runs)
        task.charge(sum(len(r) for r in runs) * self.ctx.record_cost,
                    "merge")
        return out
