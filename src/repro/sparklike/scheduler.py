"""The DAG scheduler: stage submission, partition states, executors,
shuffle registry, and lineage-based recovery.

Stages run as waves of executor workers (``nodes x executor_cores``,
locality-aware pick — the exact loop of the frozen v1 engine, so
default-knob timings match it at 1e-9). Each stage tracks its
partitions through ``pending -> running -> done``; map outputs are
published through :class:`~repro.mapreduce.task.MapOutputFeed` keyed by
shuffle dependency, and reducers fetch them with the legacy barrier
shape by default or through a bounded
:class:`~repro.sim.FanoutWindow` when
``Context(shuffle_parallel_copies=k)`` is set.

Recovery (:meth:`Context.fail_node`) interrupts the lost node's running
tasks, requeues their partitions plus any completed work whose output
lived there, and invalidates its cache blocks and map outputs. Before
every retry wave the scheduler re-ensures upstream shuffle data, so
recomputation flows transitively down the lineage — but only for the
missing partition indices, reusing cached ancestors on surviving nodes.

Instrumentation rides :mod:`repro.obs`: per-action ``job`` spans,
per-task ``task.map``/``task.reduce`` spans with ``task.phase``
children on per-slot tracks (``report``/``critpath`` work out of the
box), job histories with one :class:`~repro.obs.TaskAttempt` per
launch, and counters/latency histograms when a metrics registry is
attached. All of it is pure Python against the simulated clock — it
never shifts timings.
"""

from __future__ import annotations

from typing import Optional

from repro.mapreduce.shuffle import estimate_size
from repro.mapreduce.task import MapOutput, MapOutputFeed
from repro.obs import JobHistory, TaskAttempt, metrics_of, tracer_of
from repro.sim import AllOf, FanoutWindow, Interrupt
from repro.sparklike import dag
from repro.sparklike.rdd import ShuffleDependency, SparkLikeError

__all__ = ["DAGScheduler", "ShuffleFetchFailed", "ShuffleState",
           "TaskContext"]

#: partition states tracked per stage run
PENDING, RUNNING, DONE = "pending", "running", "done"


class ShuffleFetchFailed(SparkLikeError):
    """A reduce task found its map outputs incomplete (a node died after
    the map stage ran). The stage requeues the task and the next wave
    regenerates the missing outputs first — the FetchFailed path."""


class ShuffleState:
    """Map-output registry for one shuffle dependency.

    Winning map tasks :meth:`commit` their partitioned output; the
    board is a :class:`MapOutputFeed` (fetchers iterate
    ``feed.outputs`` in commit order) plus an index so recovery can
    tell exactly which map partitions died with a node.
    """

    def __init__(self, env, dep: ShuffleDependency):
        self.dep = dep
        self.feed = MapOutputFeed(env, dep.parent.n_partitions)
        #: map partition index -> MapOutput
        self.by_index: dict[int, MapOutput] = {}

    @property
    def complete(self) -> bool:
        return len(self.by_index) >= self.dep.parent.n_partitions

    def commit(self, index: int, output: MapOutput) -> None:
        self.by_index[index] = output
        self.feed.commit(output)

    def missing(self) -> list[int]:
        return [i for i in range(self.dep.parent.n_partitions)
                if i not in self.by_index]

    def invalidate_node(self, name: str) -> list[int]:
        lost = [i for i, out in self.by_index.items()
                if out.node.name == name]
        for index in lost:
            del self.by_index[index]
        if lost:
            self.feed.outputs[:] = [out for out in self.feed.outputs
                                    if out.node.name != name]
        return lost


class _Phase:
    """Timed task phase: records a (name, start, end) span on the task
    and mirrors it as a ``task.phase`` tracer child span."""

    __slots__ = ("_task", "_name", "_start", "_handle")

    def __init__(self, task: "TaskContext", name: str):
        self._task = task
        self._name = name

    def __enter__(self) -> "_Phase":
        task = self._task
        self._start = task.ctx.env.now
        self._handle = task.tracer.span(
            self._name, cat="task.phase", track=task.track)
        self._handle.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        task = self._task
        task.spans.append((self._name, self._start, task.ctx.env.now))
        self._handle.__exit__(*exc)


class TaskContext:
    """What RDD compute chains see inside one executor task."""

    def __init__(self, ctx, node, stage_id: int, index: int,
                 track: Optional[str] = None):
        self.ctx = ctx
        self.node = node
        self.stage_id = stage_id
        self.index = index
        self.track = track or node.name
        self.tracer = tracer_of(ctx.env)
        #: (phase name, start, end) spans, filed into the job history
        self.spans: list[tuple[str, float, float]] = []
        self._charges: dict[str, float] = {}

    def charge(self, seconds: float, phase: str = "compute") -> None:
        if seconds < 0:
            raise SparkLikeError("charge must be >= 0")
        self._charges[phase] = self._charges.get(phase, 0.0) + seconds

    def take_charges(self) -> dict[str, float]:
        charges, self._charges = self._charges, {}
        return charges

    def phase(self, name: str) -> _Phase:
        """Time a task phase: ``with task.phase("spill"): yield ...``."""
        return _Phase(self, name)

    def fetch_shuffle(self, dep: ShuffleDependency, index: int):
        """Pull bucket ``index`` from every map output. DES process.

        Default (``shuffle_parallel_copies=0``): start every remote
        transfer and barrier on the set — the frozen v1 event shape.
        With ``shuffle_parallel_copies=k``: at most ``k`` copies in
        flight through a bounded FanoutWindow."""
        ctx = self.ctx
        state = ctx._shuffle_states.get(id(dep))
        if state is None:
            raise SparkLikeError("shuffle outputs missing; stage not run")
        if not state.complete:
            raise ShuffleFetchFailed(
                f"shuffle dep@{id(dep):#x}: "
                f"{len(state.missing())} map outputs missing")
        runs = []
        copies = ctx.shuffle_parallel_copies
        if copies <= 0:
            transfers = []
            for out in state.feed.outputs:
                runs.append(out.partitions[index])
                size = out.sizes[index]
                if size and out.node is not self.node:
                    transfers.append(ctx.network.transfer(
                        out.node, self.node, size))
            if transfers:
                yield AllOf(ctx.env, transfers)
            return runs
        window = FanoutWindow(ctx.env, max_inflight=copies)
        for out in state.feed.outputs:
            runs.append(out.partitions[index])
            size = out.sizes[index]
            if size and out.node is not self.node:
                window.submit(
                    lambda src=out.node, n=size:
                    ctx.network.transfer(src, self.node, n))
        window.close()
        yield from window.drain()
        return runs


class _StageRun:
    """Partition-state tracking and executor loop for one stage."""

    def __init__(self, ctx, rdd, shuffle_into, stage_id: int, kind: str,
                 want: list[int], history: Optional[JobHistory]):
        self.ctx = ctx
        self.rdd = rdd
        self.shuffle_into = shuffle_into
        self.child = shuffle_into.child if shuffle_into is not None \
            else None
        self.stage_id = stage_id
        self.kind = kind
        self.history = history
        self.want = list(want)
        self.pending = list(want)
        #: index -> (node, worker process, attempt) while running
        self.running: dict[int, tuple] = {}
        self.done: set[int] = set()
        #: result stages: index -> (node, records)
        self.results: dict[int, tuple] = {}
        self.state = {index: PENDING for index in self.want}
        self._attempts: dict[int, int] = {}

    def remaining(self) -> list[int]:
        return [i for i in self.want if i not in self.done]

    def pick(self, node_name: str) -> Optional[int]:
        pending = self.pending
        for pos, index in enumerate(pending):
            if node_name in self.rdd.partition_locations(index):
                return pending.pop(pos)
        return pending.pop(0) if pending else None

    def on_node_lost(self, name: str) -> list[int]:
        """Interrupt the dead node's running tasks and requeue completed
        work whose output lived there. Returns the requeued done
        indices (interrupted tasks requeue themselves)."""
        ctx = self.ctx
        for _index, (node, proc, _attempt) in list(self.running.items()):
            if node.name == name and proc.is_alive:
                proc.interrupt("executor lost")
        requeued = []
        if self.shuffle_into is not None:
            state = ctx._shuffle_states.get(id(self.shuffle_into))
            for index in list(self.done):
                if state is None or index not in state.by_index:
                    self._requeue(index)
                    requeued.append(index)
        else:
            for index, (node, _records) in list(self.results.items()):
                if node.name == name:
                    del self.results[index]
                    self._requeue(index)
                    requeued.append(index)
        return requeued

    def _requeue(self, index: int) -> None:
        self.done.discard(index)
        if index not in self.pending:
            self.pending.append(index)
        self.state[index] = PENDING

    def executor(self, node, slot: int):
        """One executor core: pick -> run -> record, until drained."""
        ctx = self.ctx
        env = ctx.env
        tracer = tracer_of(env)
        registry = metrics_of(env)
        track = f"{node.name}.s{slot}"
        me = env.active_process
        while True:
            if node.name in ctx.lost_nodes:
                return
            index = self.pick(node.name)
            if index is None:
                return
            ctx.metrics["tasks"] += 1
            seq = self._attempts.get(index, 0)
            self._attempts[index] = seq + 1
            task = TaskContext(ctx, node, self.stage_id, index,
                               track=track)
            locations = self.rdd.partition_locations(index)
            attempt = TaskAttempt(
                attempt_id=f"s{self.stage_id}_p{index}_a{seq}",
                kind=self.kind, node=node.name, start=env.now,
                split=f"rdd{self.rdd._id}#{index}",
                partition=index if self.kind == "reduce" else None,
                locality=("node_local" if node.name in locations
                          else ("remote" if locations else "any")))
            if self.history is not None:
                self.history.record(attempt)
            self.running[index] = (node, me, attempt)
            self.state[index] = RUNNING
            started = env.now
            span = tracer.span(
                self.kind, cat=f"task.{self.kind}", track=track,
                task_id=attempt.attempt_id, node=node.name)
            try:
                with span:
                    yield env.timeout(ctx.task_startup)
                    with task.phase("read" if self.kind == "map"
                                    else "shuffle"):
                        records = yield env.process(
                            self.rdd.iterator(index, task))
                    for phase, seconds in sorted(
                            task.take_charges().items()):
                        with task.phase(phase):
                            yield env.timeout(seconds)
                    if self.shuffle_into is not None:
                        buckets = self.child.map_side_partition(records)
                        # Shuffle write: buffered to local disk.
                        size = estimate_size(records)
                        if size:
                            with task.phase("spill"):
                                yield node.disk.write(size)
                        ctx._shuffle_states[id(self.shuffle_into)].commit(
                            index, MapOutput(
                                task_id=attempt.attempt_id, node=node,
                                partitions=buckets,
                                sizes=[estimate_size(b)
                                       for b in buckets]))
                    else:
                        self.results[index] = (node, records)
            except (Interrupt, ShuffleFetchFailed) as exc:
                attempt.end = env.now
                if isinstance(exc, Interrupt):
                    attempt.outcome = "killed"
                    attempt.error = "executor lost"
                else:
                    attempt.outcome = "failed"
                    attempt.error = str(exc)
                    ctx.metrics["fetch_failures"] = \
                        ctx.metrics.get("fetch_failures", 0) + 1
                attempt.spans = list(task.spans)
                entry = self.running.get(index)
                if entry is not None and entry[1] is me:
                    del self.running[index]
                if index not in self.done:
                    self._requeue(index)
                ctx.metrics["tasks_retried"] = \
                    ctx.metrics.get("tasks_retried", 0) + 1
                if registry is not None:
                    registry.counter("sparklike.tasks_retried").inc()
                return
            attempt.end = env.now
            attempt.outcome = "succeeded"
            attempt.spans = list(task.spans)
            del self.running[index]
            self.done.add(index)
            self.state[index] = DONE
            if registry is not None:
                registry.counter("sparklike.tasks").inc()
                registry.latency("sparklike.task.duration").observe(
                    env.now - started)


class DAGScheduler:
    """Cuts actions into stages and drives them to completion."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._job_seq = 0

    def run_action(self, final, indices: Optional[list[int]] = None,
                   label: str = "collect") -> dict[int, tuple]:
        """Run the lineage below ``final`` and the (possibly partial)
        result stage; blocking. Returns ``{index: (node, records)}``."""
        ctx = self.ctx
        env = ctx.env
        registry = metrics_of(env)
        if registry is not None:
            registry.watch_cache(ctx.block_store.stats, "sparklike.cache")
        self._job_seq += 1
        job_name = f"sparklike-{label}-{self._job_seq}"
        history = JobHistory(job_name, env.now)
        ctx.histories.append(history)
        ctx.last_history = history
        deps = ctx._stages_for(final)
        tracer = tracer_of(env)

        def driver():
            with tracer.span(job_name, cat="job", track="driver"):
                for dep in deps:
                    yield from self._ensure_shuffle(dep, history)
                results = yield env.process(self._run_stage(
                    final, indices=indices, history=history))
                # Results travel back to the driver.
                transfers = []
                for _index, (node, records) in results.items():
                    size = estimate_size(records)
                    if size:
                        transfers.append(ctx.network.transfer(
                            node, ctx.driver_node, size))
                if transfers:
                    yield AllOf(env, transfers)
            history.finish(env.now)
            return results

        proc = env.process(driver())
        env.run()
        return proc.value

    def _ensure_shuffle(self, dep: ShuffleDependency, history):
        """Materialise a shuffle dependency's missing map outputs (a
        complete one is a no-op — outputs are cached across actions and
        survive until a node loss invalidates them)."""
        ctx = self.ctx
        state = ctx._shuffle_states.get(id(dep))
        if state is None:
            state = ShuffleState(ctx.env, dep)
            ctx._shuffle_states[id(dep)] = state
            missing = list(range(dep.parent.n_partitions))
        else:
            missing = state.missing()
        if not missing:
            return
        yield ctx.env.process(self._run_stage(
            dep.parent, shuffle_into=dep, indices=missing,
            history=history))

    def _run_stage(self, rdd, shuffle_into=None,
                   indices: Optional[list[int]] = None, history=None):
        """Run one stage over ``indices`` (default: every partition) of
        ``rdd``. DES process. Retries in waves until every wanted
        partition is done, re-ensuring upstream shuffle data between
        waves after an executor loss."""
        ctx = self.ctx
        env = ctx.env
        ctx._stage_seq += 1
        stage_id = ctx._stage_seq
        ctx.metrics["stages"] += 1
        registry = metrics_of(env)
        if registry is not None:
            registry.counter("sparklike.stages").inc()
        kind = "reduce" if dag.consumes_shuffle(rdd) else "map"
        want = list(indices) if indices is not None \
            else list(range(rdd.n_partitions))
        run = _StageRun(ctx, rdd, shuffle_into, stage_id, kind, want,
                        history)
        started = env.now
        previous = ctx._active_run
        ctx._active_run = run
        tracer = tracer_of(env)
        try:
            with tracer.span(f"stage-{stage_id}", cat="stage",
                             track="driver", kind=kind,
                             partitions=len(want)):
                first_wave = True
                while run.remaining():
                    if not first_wave:
                        # Retry wave: lost map outputs upstream must be
                        # recomputed (transitively) before our tasks
                        # can fetch again.
                        for dep in dag.shuffle_deps(rdd):
                            yield from self._ensure_shuffle(dep, history)
                        ctx.metrics["retry_waves"] = \
                            ctx.metrics.get("retry_waves", 0) + 1
                    first_wave = False
                    live = [node for node in ctx.nodes
                            if node.name not in ctx.lost_nodes]
                    if not live:
                        raise SparkLikeError(
                            f"stage {stage_id}: all executors lost")
                    workers = []
                    for node in live:
                        for slot in range(ctx.executor_cores):
                            workers.append(env.process(
                                run.executor(node, slot)))
                    yield AllOf(env, workers)
        finally:
            ctx._active_run = previous
        if registry is not None:
            registry.latency("sparklike.stage.duration").observe(
                env.now - started)
        return run.results
