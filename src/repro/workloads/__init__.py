"""Evaluation workloads and solution drivers.

- :mod:`repro.workloads.nuwrf` — synthetic NU-WRF dataset generator
  matching the paper's data model (§IV-A, §V-A).
- :mod:`repro.workloads.terasort` / :mod:`~repro.workloads.grep` /
  :mod:`~repro.workloads.dfsio` — the Fig. 2 Hadoop benchmarks.
- :mod:`repro.workloads.pipeline` — the Img-only / Anlys phases
  (plotting, animation, SQL analysis) shared by all solutions.
- :mod:`repro.workloads.solutions` — the five data paths of Table I:
  Naive, Vanilla Hadoop, PortHadoop, SciHadoop, SciDP.
"""

from repro.workloads.nuwrf import NUWRFConfig, generate_nuwrf

__all__ = [
    "NUWRFConfig",
    "generate_nuwrf",
]
