"""TestDFSIO (Fig. 2 workload): per-task file write and read throughput.

As in Hadoop's TestDFSIO, a control file lists one target file per map
task; write tasks stream ``bytes_per_file`` to the storage under test,
read tasks stream it back. Results report aggregate simulated
throughput.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce import JobConf, JobRunner, TextInputFormat

__all__ = ["run_dfsio_read", "run_dfsio_write"]


def _control_file(storage, path: str, n_files: int,
                  bytes_per_file: int) -> list[bytes]:
    lines = [f"/dfsio/part-{i:04d} {bytes_per_file}".encode()
             for i in range(n_files)]
    storage.store_file_sync(path, b"\n".join(lines) + b"\n")
    return lines


def _payload(bytes_per_file: int, index: int) -> bytes:
    rng = np.random.default_rng(1000 + index)
    return rng.integers(0, 256, size=bytes_per_file,
                        dtype=np.uint8).tobytes()


def run_dfsio_write(env, nodes, storage, network, n_files: int,
                    bytes_per_file: int,
                    control_path: str = "/dfsio-control-write",
                    **job_knobs):
    """DES process returning (JobResult, elapsed, aggregate_bytes_per_sec).

    Extra keyword arguments become :class:`JobConf` fields (e.g.
    ``write_behind=True``), so bench configs can flip job knobs without
    a bespoke wrapper.
    """
    _control_file(storage, control_path, n_files, bytes_per_file)
    job = JobConf(
        name="dfsio-write",
        mapper=_IOMapper(storage, mode="write"),
        input_format=TextInputFormat(),
        n_reducers=0,
        input_paths=[control_path],
        map_slots_per_node=2,
        **job_knobs,
    )
    t0 = env.now
    runner = JobRunner(env, nodes, storage, network, job)
    result = yield env.process(runner.run())
    elapsed = env.now - t0
    total = n_files * bytes_per_file
    return result, elapsed, total / elapsed if elapsed > 0 else 0.0


def run_dfsio_read(env, nodes, storage, network, n_files: int,
                   bytes_per_file: int,
                   control_path: str = "/dfsio-control-read",
                   **job_knobs):
    """DES process returning (JobResult, elapsed, aggregate_bytes_per_sec).

    Requires a prior :func:`run_dfsio_write` against the same storage.
    Extra keyword arguments become :class:`JobConf` fields.
    """
    _control_file(storage, control_path, n_files, bytes_per_file)
    job = JobConf(
        name="dfsio-read",
        mapper=_IOMapper(storage, mode="read"),
        input_format=TextInputFormat(),
        n_reducers=0,
        input_paths=[control_path],
        map_slots_per_node=2,
        **job_knobs,
    )
    t0 = env.now
    runner = JobRunner(env, nodes, storage, network, job)
    result = yield env.process(runner.run())
    elapsed = env.now - t0
    total = n_files * bytes_per_file
    return result, elapsed, total / elapsed if elapsed > 0 else 0.0


class _IOMapper:
    """Map function object whose real I/O goes through the task's storage
    client. The engine charges simulated time when the task context's
    deferred I/O list is drained (see MapTask support for ``io_actions``).
    """

    def __init__(self, storage, mode: str):
        self.storage = storage
        self.mode = mode

    def __call__(self, ctx, _offset, line):
        if not line.strip():
            return
        path, size = line.rsplit(b" ", 1)
        index = int(path.rsplit(b"-", 1)[-1])
        if self.mode == "write":
            data = _payload(int(size), index)
            ctx.defer_io("write", path.decode(), data)
            ctx.emit(b"written", len(data))
        else:
            ctx.defer_io("read", path.decode(), int(size))
            ctx.emit(b"read", int(size))
