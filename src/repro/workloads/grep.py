"""Hadoop Grep (Fig. 2 workload): count lines matching a pattern."""

from __future__ import annotations

import re

from repro import costs
from repro.mapreduce import JobConf, JobRunner, TextInputFormat

__all__ = ["generate_text", "run_grep"]

#: regex scan cost per byte of input (compiled DFA scan)
GREP_SEC_PER_BYTE = 1.0e-9

_WORDS = [b"the", b"cloud", b"storm", b"rain", b"model", b"wind",
          b"data", b"node", b"flux", b"cell"]


def generate_text(storage, path: str, n_lines: int, seed: int = 11) -> bytes:
    """Pre-load a synthetic corpus; returns the bytes."""
    import numpy as np
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(n_lines):
        k = rng.integers(4, 9)
        lines.append(b" ".join(
            _WORDS[i] for i in rng.integers(0, len(_WORDS), size=k)))
    data = b"\n".join(lines) + b"\n"
    storage.store_file_sync(path, data)
    return data


def run_grep(env, nodes, storage, network, input_path: str,
             pattern: bytes = b"storm", output_path: str = "/grep-out",
             diskless_spill: bool = False):
    """Run grep over ``storage``. DES process returning
    ((JobResult, match_count), elapsed_seconds)."""
    regex = re.compile(pattern)

    def grep_mapper(ctx, _offset, line):
        hits = len(regex.findall(line))
        if hits:
            ctx.emit(pattern, hits)
        ctx.charge(len(line) * GREP_SEC_PER_BYTE * costs.get_scale(),
                   "scan")

    def sum_reducer(ctx, key, values):
        ctx.emit(key, sum(values))

    job = JobConf(
        name="grep",
        mapper=grep_mapper,
        reducer=sum_reducer,
        combiner=sum_reducer,
        input_format=TextInputFormat(),
        n_reducers=1,
        input_paths=[input_path],
        output_path=output_path,
        diskless_spill=diskless_spill,
    )
    t0 = env.now
    runner = JobRunner(env, nodes, storage, network, job)
    result = yield env.process(runner.run())
    matches = sum(v for recs in result.outputs.values()
                  for _k, v in recs)
    return (result, matches), env.now - t0
