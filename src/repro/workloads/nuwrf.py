"""Synthetic NU-WRF output generator.

§IV-A/§V-A data model: each timestamp is one netCDF file with 23
single-precision variables of shape altitude × longitude × latitude
(paper low-res: 50×1250×1250 ⇒ 298 MB raw, ~91 MB chunked+compressed:
ratio ≈ 3.27). "The synthetic data sets follow the same dimensions,
chunking and compression ratio as the real data set." We reproduce the
structure at a configurable grid: smooth physical-looking fields,
mantissa-quantised so zlib lands near the paper's ~3.3× ratio, chunked
one z-level per chunk (the "data grid" granularity §III-B mentions).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.formats import Dataset, scinc

__all__ = ["NUWRF_VARIABLES", "NUWRFConfig", "generate_nuwrf",
           "synthesize_timestep"]

#: The 23 NU-WRF single-precision variables (§IV-A). QR (rain mixing
#: ratio / rainfall) is the paper's demonstration variable.
NUWRF_VARIABLES = [
    "QR", "QC", "QV", "QI", "QS", "QG",           # hydrometeors
    "T", "P", "PB", "U", "V", "W", "PH", "PHB",   # dynamics
    "RAINC", "RAINNC", "TSLB", "SMOIS", "SST",    # surface
    "HGT", "T2", "Q2", "PSFC",                    # diagnostics
]
assert len(NUWRF_VARIABLES) == 23


@dataclass
class NUWRFConfig:
    """Generation parameters.

    ``shape`` is (altitude, longitude, latitude); the paper's low-res run
    is (50, 1250, 1250). ``mantissa_bits`` controls compressibility —
    4 kept bits plus partially sparse hydrometeor fields land zlib level
    4 at the paper's ~3.27× per-file ratio (298 MB → ~91 MB/variable).
    """

    shape: tuple[int, int, int] = (8, 48, 48)
    variables: list[str] = field(
        default_factory=lambda: list(NUWRF_VARIABLES))
    timesteps: int = 4
    seed: int = 20180710  # CLUSTER 2018 vintage
    mantissa_bits: int = 4
    compression_level: int = 4
    #: chunking: one z-level per chunk, like the NCCS configuration
    chunk_levels: int = 1
    #: record per-chunk min/max/count zone maps in the headers (grows the
    #: header, shifting data_start — keep off for the golden-pinned
    #: figure worlds; the SQL pushdown bench turns it on)
    chunk_stats: bool = False

    @property
    def raw_bytes_per_variable(self) -> int:
        z, y, x = self.shape
        return z * y * x * 4

    @property
    def raw_bytes_per_file(self) -> int:
        return self.raw_bytes_per_variable * len(self.variables)

    def file_name(self, step: int) -> str:
        """Paper-style name: one output file per simulated timestamp."""
        hour = 18 + step  # the paper's example starts at plot_18_00_00
        return f"plot_{hour:02d}_{(step * 7) % 60:02d}_00.nc"


def _quantize(field_data: np.ndarray, keep_bits: int) -> np.ndarray:
    """Zero low mantissa bits of float32 values (lossy, compression aid —
    exactly what netCDF users do before deflate)."""
    if keep_bits >= 23:
        return field_data.astype(np.float32)
    mask = np.uint32(0xFFFFFFFF) << np.uint32(23 - keep_bits)
    bits = field_data.astype(np.float32).view(np.uint32)
    return (bits & mask).view(np.float32)


def _smooth_field(rng: np.random.Generator,
                  shape: tuple[int, int, int],
                  step: int) -> np.ndarray:
    """A spatially smooth, temporally drifting field: a few random Fourier
    modes plus a vertical profile — looks like weather, compresses like
    weather."""
    z, y, x = shape
    zz = np.linspace(0, 1, z, dtype=np.float32)[:, None, None]
    yy = np.linspace(0, 2 * np.pi, y, dtype=np.float32)[None, :, None]
    xx = np.linspace(0, 2 * np.pi, x, dtype=np.float32)[None, None, :]
    out = np.zeros(shape, dtype=np.float32)
    for _mode in range(4):
        ky, kx = rng.integers(1, 4, size=2)
        phase = rng.random() * 2 * np.pi + 0.1 * step
        amp = rng.random()
        out += amp * np.sin(ky * yy + phase) * np.cos(kx * xx - phase) \
            * (1.0 - 0.5 * zz)
    out += rng.normal(0, 0.02, size=shape).astype(np.float32)
    return out


def synthesize_timestep(config: NUWRFConfig, step: int) -> Dataset:
    """Build one timestamp's Dataset with all configured variables."""
    z, _y, _x = config.shape
    ds = Dataset(attrs={
        "model": "NU-WRF (synthetic)",
        "timestep": step,
        "resolution": "x".join(str(s) for s in config.shape),
    })
    for v, name in enumerate(config.variables):
        rng = np.random.default_rng(
            config.seed + 7919 * v + 104729 * step)
        data = _smooth_field(rng, config.shape, step)
        if name.startswith("Q") or name.startswith("RAIN"):
            # Hydrometeors are partially sparse: rain covers part of the
            # domain (zero elsewhere). Together with the mantissa
            # quantisation this puts the per-file deflate ratio at the
            # paper's ~3.27x while keeping every individual variable in
            # a realistic 2.7-5x band (the paper reports the per-file
            # average: 298 MB -> ~91 MB per variable "on average").
            data = np.maximum(data, 0)
        data = _quantize(data, config.mantissa_bits)
        ds.create_variable(
            name, ("altitude", "longitude", "latitude"), data,
            chunk_shape=(config.chunk_levels,) + config.shape[1:],
            attrs={"units": "kg m-2" if name.startswith("Q") else "si"})
    return ds


def generate_nuwrf(pfs, config: NUWRFConfig,
                   directory: str = "/nuwrf") -> dict:
    """Write the synthetic run onto the PFS (zero simulated time — this
    data is the precondition produced by the MPI simulation phase).

    Returns a manifest: file paths, raw/stored sizes, compression ratio.
    """
    manifest = {
        "directory": directory,
        "files": [],
        "raw_bytes": 0,
        "stored_bytes": 0,
    }
    for step in range(config.timesteps):
        ds = synthesize_timestep(config, step)
        buf = io.BytesIO()
        scinc.write(buf, ds, compression_level=config.compression_level,
                    stats=config.chunk_stats)
        payload = buf.getvalue()
        path = f"{directory}/{config.file_name(step)}"
        pfs.store_file(path, payload)
        manifest["files"].append(path)
        manifest["raw_bytes"] += config.raw_bytes_per_file
        manifest["stored_bytes"] += len(payload)
    manifest["compression_ratio"] = (
        manifest["raw_bytes"] / manifest["stored_bytes"]
        if manifest["stored_bytes"] else 0.0)
    return manifest
